//! Problem definition, query context, and result types.

use std::borrow::Cow;

use pcs_graph::core::CoreDecomposition;
use pcs_graph::{Graph, VertexId};
use pcs_index::IndexRef;
use pcs_ptree::{PTree, ProfilesRef, QuerySpace, Taxonomy};

use crate::advanced::FindStrategy;
use crate::Result;

/// Errors surfaced by PCS queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PcsError {
    /// The query vertex does not exist in the graph.
    QueryVertexOutOfRange {
        /// Offending vertex id.
        vertex: VertexId,
        /// Vertices in the graph.
        n: usize,
    },
    /// The number of profiles differs from the number of vertices.
    ProfileCountMismatch {
        /// Vertices in the graph.
        vertices: usize,
        /// Profiles supplied.
        profiles: usize,
    },
    /// An index-based algorithm was requested but the context holds no
    /// CP-tree (call [`QueryContext::with_index`] first).
    IndexRequired(&'static str),
    /// An index error bubbled up during construction.
    Index(pcs_index::IndexError),
}

impl std::fmt::Display for PcsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcsError::QueryVertexOutOfRange { vertex, n } => {
                write!(f, "query vertex {vertex} out of range for graph with {n} vertices")
            }
            PcsError::ProfileCountMismatch { vertices, profiles } => {
                write!(f, "graph has {vertices} vertices but {profiles} profiles were supplied")
            }
            PcsError::IndexRequired(a) => {
                write!(f, "algorithm {a} requires a CP-tree index; call with_index()")
            }
            PcsError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for PcsError {}

impl From<pcs_index::IndexError> for PcsError {
    fn from(e: pcs_index::IndexError) -> Self {
        PcsError::Index(e)
    }
}

/// Which PCS algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Pick automatically: [`Algorithm::AdvP`] when a CP-tree index is
    /// available, [`Algorithm::Basic`] otherwise. Resolved by
    /// [`Algorithm::resolve`] before dispatch, so it never reaches the
    /// algorithm implementations.
    Auto,
    /// Algorithm 1: index-free bottom-up enumeration.
    Basic,
    /// Algorithm 3: index-based incremental enumeration.
    Incre,
    /// Algorithm 8 seeded by `find-I` (Algorithm 5).
    AdvI,
    /// Algorithm 8 seeded by `find-D` (Algorithm 6).
    AdvD,
    /// Algorithm 8 seeded by `find-P` (Algorithm 7).
    AdvP,
}

impl Algorithm {
    /// The five concrete algorithms, in the paper's order
    /// ([`Algorithm::Auto`] is a dispatch policy, not a sixth
    /// algorithm, so it is deliberately absent).
    pub const ALL: [Algorithm; 5] =
        [Algorithm::Basic, Algorithm::Incre, Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::Basic => "basic",
            Algorithm::Incre => "incre",
            Algorithm::AdvI => "adv-I",
            Algorithm::AdvD => "adv-D",
            Algorithm::AdvP => "adv-P",
        }
    }

    /// True when the algorithm needs a CP-tree index. `Auto` reports
    /// `false` because it degrades to `Basic` when no index exists.
    pub fn needs_index(self) -> bool {
        !matches!(self, Algorithm::Basic | Algorithm::Auto)
    }

    /// Collapses [`Algorithm::Auto`] onto a concrete algorithm:
    /// `AdvP` when `has_index`, `Basic` otherwise. Concrete variants
    /// pass through unchanged.
    pub fn resolve(self, has_index: bool) -> Algorithm {
        match self {
            Algorithm::Auto if has_index => Algorithm::AdvP,
            Algorithm::Auto => Algorithm::Basic,
            other => other,
        }
    }
}

/// One profiled community: the paper's `Gk[T]` with its theme subtree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfiledCommunity {
    /// The maximal common subtree `M(Gq)` of all member P-trees.
    pub subtree: PTree,
    /// Sorted member vertices.
    pub vertices: Vec<VertexId>,
}

impl ProfiledCommunity {
    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Communities always contain at least the query vertex.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Instrumentation collected during a query (drives the paper's
/// search-effort discussion and Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Subtree candidates generated.
    pub subtrees_generated: u64,
    /// Community verifications executed (localized k-core peels).
    pub verifications: u64,
    /// Verifications answered from the memo instead of re-peeling.
    pub memo_hits: u64,
    /// Candidates found feasible.
    pub feasible: u64,
    /// Vertices scanned while seeding candidate sets (slice filters and
    /// base intersections) — the pre-peel cost.
    pub seed_scanned: u64,
    /// Vertices handed to the localized k-core peel.
    pub peel_candidates: u64,
    /// Size of the query's P-tree, `|T(q)|`.
    pub query_tree_size: u32,
}

/// The result of one PCS query.
#[derive(Clone, Debug)]
pub struct PcsOutcome {
    /// All profiled communities (one per maximal feasible subtree),
    /// sorted by theme subtree for determinism.
    pub communities: Vec<ProfiledCommunity>,
    /// Search-effort instrumentation.
    pub stats: QueryStats,
}

impl PcsOutcome {
    /// Maximal-common-subtree sizes of all communities.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        self.communities.iter().map(|c| c.subtree.len()).collect()
    }
}

/// Everything a query needs: the profiled graph plus (optionally) its
/// CP-tree index and the precomputed global core decomposition.
pub struct QueryContext<'a> {
    /// The host graph.
    pub graph: &'a Graph,
    /// The GP-tree.
    pub tax: &'a Taxonomy,
    /// Per-vertex P-trees (`profiles[v] = T(v)`), behind a view that is
    /// either a resident slice or a file-backed source faulting ranges
    /// in on first touch (see [`pcs_ptree::ProfilesRef`]).
    pub profiles: ProfilesRef<'a>,
    /// Optional CP-tree index (required by every algorithm but
    /// `basic`) — either shape: the monolithic [`pcs_index::CpTree`]
    /// or the serving engine's [`pcs_index::ShardedCpIndex`], behind
    /// one `Copy` [`IndexRef`] handle.
    pub index: Option<IndexRef<'a>>,
    /// Core numbers of the whole graph (used by `basic`'s `Gk`).
    /// Owned when computed by [`QueryContext::new`]; borrowed when an
    /// engine shares one precomputed decomposition across queries.
    pub cores: Cow<'a, CoreDecomposition>,
}

impl<'a> QueryContext<'a> {
    /// Creates a context without an index (only `basic` will run).
    pub fn new(
        graph: &'a Graph,
        tax: &'a Taxonomy,
        profiles: impl Into<ProfilesRef<'a>>,
    ) -> Result<Self> {
        let profiles = profiles.into();
        Self::check_profiles(graph, profiles)?;
        Ok(QueryContext {
            graph,
            tax,
            profiles,
            index: None,
            cores: Cow::Owned(CoreDecomposition::new(graph)),
        })
    }

    /// Assembles a context from already-validated, already-computed
    /// parts without recomputing the core decomposition. This is the
    /// cheap per-query constructor the owned engine facade uses; most
    /// applications want `pcs_engine::PcsEngine` instead of calling it
    /// directly.
    ///
    /// All parts must describe the **same version** of the profiled
    /// graph: the engine guarantees this by borrowing every argument
    /// from one immutable epoch snapshot, so a context assembled here
    /// stays internally consistent even while updates publish newer
    /// epochs concurrently. Hand-assembled mixes of differently-aged
    /// graphs, profiles, cores, or indexes are undefined behaviour of
    /// the algorithm layer (wrong answers, not memory unsafety).
    pub fn from_parts(
        graph: &'a Graph,
        tax: &'a Taxonomy,
        profiles: impl Into<ProfilesRef<'a>>,
        index: Option<IndexRef<'a>>,
        cores: &'a CoreDecomposition,
    ) -> Result<Self> {
        let profiles = profiles.into();
        Self::check_profiles(graph, profiles)?;
        Ok(QueryContext { graph, tax, profiles, index, cores: Cow::Borrowed(cores) })
    }

    fn check_profiles(graph: &Graph, profiles: ProfilesRef<'_>) -> Result<()> {
        if graph.num_vertices() != profiles.len() {
            return Err(PcsError::ProfileCountMismatch {
                vertices: graph.num_vertices(),
                profiles: profiles.len(),
            });
        }
        Ok(())
    }

    /// Attaches a prebuilt index — either the monolithic `&CpTree` or
    /// a `&ShardedCpIndex` (both convert into [`IndexRef`]).
    pub fn with_index(mut self, index: impl Into<IndexRef<'a>>) -> Self {
        self.index = Some(index.into());
        self
    }

    /// Builds the query search space for vertex `q` (its P-tree frozen
    /// in DFS preorder).
    pub fn space_for(&self, q: VertexId) -> Result<QuerySpace> {
        if q as usize >= self.graph.num_vertices() {
            return Err(PcsError::QueryVertexOutOfRange {
                vertex: q,
                n: self.graph.num_vertices(),
            });
        }
        // `incre`/advanced restore T(q) through the index headMap (the
        // paper's line "restore T(q) using I.headMap"); without an index
        // the profile array is borrowed directly (no copy — the
        // index-less path of every query on an `IndexMode::Disabled`
        // engine). Both yield the same tree.
        let restored;
        let tq = match self.index {
            Some(idx) => {
                restored = idx.restore_ptree(self.tax, q);
                &restored
            }
            // A lazy source that fails to fault `q`'s range in yields
            // `None`; reporting the vertex as unanswerable here is safe
            // (never a wrong community), and the engine layer replaces
            // this with the source's typed error before the caller
            // sees it.
            None => match self.profiles.get(q as usize) {
                Some(p) => p,
                None => {
                    return Err(PcsError::QueryVertexOutOfRange {
                        vertex: q,
                        n: self.graph.num_vertices(),
                    })
                }
            },
        };
        QuerySpace::new(self.tax, tq).map_err(|_| PcsError::QueryVertexOutOfRange {
            vertex: q,
            n: self.graph.num_vertices(),
        })
    }

    /// Runs one PCS query with the chosen algorithm.
    /// [`Algorithm::Auto`] resolves against the attached index first.
    pub fn query(&self, q: VertexId, k: u32, algorithm: Algorithm) -> Result<PcsOutcome> {
        let mut scratch = crate::verify::QueryScratch::new(self.graph.num_vertices());
        self.query_with_scratch(q, k, algorithm, &mut scratch)
    }

    /// Runs one PCS query on pooled [`crate::verify::QueryScratch`]:
    /// identical answers to [`QueryContext::query`], but every
    /// per-query working buffer (peel state, profile masks, candidate
    /// seeds) is reused across calls. This is the engine's serving hot
    /// path; one-shot callers can stay on `query`.
    pub fn query_with_scratch(
        &self,
        q: VertexId,
        k: u32,
        algorithm: Algorithm,
        scratch: &mut crate::verify::QueryScratch,
    ) -> Result<PcsOutcome> {
        let algorithm = algorithm.resolve(self.index.is_some());
        if algorithm.needs_index() && self.index.is_none() {
            return Err(PcsError::IndexRequired(algorithm.name()));
        }
        match algorithm {
            Algorithm::Auto => unreachable!("Auto resolves to a concrete algorithm above"),
            Algorithm::Basic => crate::basic::query_scratch(self, q, k, scratch),
            Algorithm::Incre => crate::incre::query_scratch(self, q, k, scratch),
            Algorithm::AdvI => {
                crate::advanced::query_scratch(self, q, k, FindStrategy::Incremental, scratch)
            }
            Algorithm::AdvD => {
                crate::advanced::query_scratch(self, q, k, FindStrategy::Decremental, scratch)
            }
            Algorithm::AdvP => {
                crate::advanced::query_scratch(self, q, k, FindStrategy::Path, scratch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_ptree::Taxonomy;

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::ALL.len(), 5);
        assert_eq!(Algorithm::Basic.name(), "basic");
        assert!(!Algorithm::Basic.needs_index());
        for a in [Algorithm::Incre, Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
            assert!(a.needs_index());
        }
    }

    #[test]
    fn context_validates_profile_count() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let tax = Taxonomy::new("r");
        let profiles = vec![PTree::root_only()];
        assert!(matches!(
            QueryContext::new(&g, &tax, &profiles),
            Err(PcsError::ProfileCountMismatch { vertices: 2, profiles: 1 })
        ));
    }

    #[test]
    fn index_required_error() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let tax = Taxonomy::new("r");
        let profiles = vec![PTree::root_only(), PTree::root_only()];
        let ctx = QueryContext::new(&g, &tax, &profiles).unwrap();
        assert!(matches!(ctx.query(0, 1, Algorithm::Incre), Err(PcsError::IndexRequired("incre"))));
    }

    #[test]
    fn out_of_range_query_vertex() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let tax = Taxonomy::new("r");
        let profiles = vec![PTree::root_only(), PTree::root_only()];
        let ctx = QueryContext::new(&g, &tax, &profiles).unwrap();
        assert!(matches!(
            ctx.query(9, 1, Algorithm::Basic),
            Err(PcsError::QueryVertexOutOfRange { vertex: 9, n: 2 })
        ));
    }

    #[test]
    fn error_display_strings() {
        let e = PcsError::IndexRequired("adv-P");
        assert!(e.to_string().contains("adv-P"));
        let e = PcsError::QueryVertexOutOfRange { vertex: 3, n: 2 };
        assert!(e.to_string().contains('3'));
    }
}
