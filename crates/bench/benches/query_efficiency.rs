//! Criterion bench: PCS query algorithms (Fig. 14(a-d) companion).
//!
//! Per-query latency of all five algorithms on the ACMDL-like dataset
//! at k = 6, over a fixed batch of query vertices. The expected shape
//! matches the paper: `basic` orders of magnitude slower than `incre`,
//! `adv-D`/`adv-P` fastest.

use criterion::{criterion_group, criterion_main, Criterion};
use pcs_core::{Algorithm, QueryContext};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_index::CpTree;

fn bench_query_efficiency(c: &mut Criterion) {
    let cfg = SuiteConfig { scale: 0.01, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Acmdl, cfg);
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let (queries, _) = sample_query_vertices(&ds, 6, 10, 0x14);

    let mut group = c.benchmark_group("fig14_query_efficiency");
    group.sample_size(10);
    for algo in Algorithm::ALL {
        group.bench_function(algo.name(), |b| {
            b.iter(|| {
                for &q in &queries {
                    let out = ctx.query(q, 6, algo).unwrap();
                    criterion::black_box(out.communities.len());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_efficiency);
criterion_main!(benches);
