//! P-trees: vertex profiles as ancestor-closed taxonomy subsets.
//!
//! Because every vertex's profile is an induced rooted subtree of the
//! one shared GP-tree, a P-tree is fully described by *which* taxonomy
//! nodes it contains — an ancestor-closed id set including the root.
//! Storing that set sorted gives:
//!
//! * subtree inclusion (Definition 3) = sorted-subset test,
//! * intersection of two P-trees = sorted merge (closure is preserved:
//!   if `x ≠ root` is in both trees, so is `parent(x)`),
//! * the maximal common subtree `M(G)` of a community (Definition 4) =
//!   an intersection fold, which is exactly how the PCS verification and
//!   metrics compute it.

use crate::taxonomy::{LabelId, Taxonomy};
use crate::{PTreeError, Result};

/// Amortized bulk P-tree validation: the same contract as
/// [`PTree::from_closed_sorted`], but over many profiles with one
/// reusable stamp array instead of per-node binary searches — O(len)
/// per profile. Snapshot loaders validate hundreds of thousands of
/// profile nodes on the warm-start path; this keeps that linear.
#[derive(Debug)]
pub struct ProfileLoader {
    /// `stamp[label] == tick` ⇔ label seen in the current profile.
    stamp: Vec<u32>,
    tick: u32,
}

impl ProfileLoader {
    /// A loader for profiles over `tax`.
    pub fn new(tax: &Taxonomy) -> Self {
        ProfileLoader { stamp: vec![u32::MAX; tax.len()], tick: 0 }
    }

    /// Validates that `nodes` is strictly ascending, in range, rooted,
    /// and ancestor-closed, then wraps it without copying. Equivalent
    /// to [`PTree::from_closed_sorted`] (including its error cases).
    pub fn ptree(&mut self, tax: &Taxonomy, nodes: Vec<LabelId>) -> Result<PTree> {
        if nodes.first() != Some(&Taxonomy::ROOT) {
            return Err(PTreeError::TaxonomyMismatch);
        }
        if self.tick == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = u32::MAX);
            self.tick = 0;
        }
        let tick = self.tick;
        self.tick += 1;
        let mut prev = Taxonomy::ROOT;
        for (i, &id) in nodes.iter().enumerate() {
            if id as usize >= tax.len() {
                return Err(PTreeError::UnknownLabel(id));
            }
            if i > 0 {
                if id <= prev {
                    return Err(PTreeError::TaxonomyMismatch);
                }
                // `parent(id) < id` and the list is ascending, so a
                // present parent is already stamped.
                if self.stamp[tax.parent(id) as usize] != tick {
                    return Err(PTreeError::TaxonomyMismatch);
                }
            }
            self.stamp[id as usize] = tick;
            prev = id;
        }
        Ok(PTree::from_validated(nodes))
    }
}

/// An induced rooted subtree of a [`Taxonomy`] (Definition 2/3).
///
/// Invariant: `nodes` is sorted, deduplicated, ancestor-closed, and
/// contains [`Taxonomy::ROOT`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PTree {
    nodes: Vec<LabelId>,
}

impl PTree {
    /// The trivial P-tree containing only the taxonomy root.
    pub fn root_only() -> Self {
        PTree { nodes: vec![Taxonomy::ROOT] }
    }

    /// Crate-private constructor for node lists whose sortedness and
    /// ancestor closure are guaranteed by the caller (see
    /// [`crate::QuerySpace::to_ptree`]).
    pub(crate) fn new_unchecked(nodes: Vec<LabelId>) -> Self {
        debug_assert_eq!(nodes.first(), Some(&Taxonomy::ROOT));
        PTree { nodes }
    }

    /// Builds a P-tree from any iterator of labels by closing it upward:
    /// every ancestor of a supplied label (and the root) is included.
    pub fn from_labels<I: IntoIterator<Item = LabelId>>(tax: &Taxonomy, labels: I) -> Result<Self> {
        let mut nodes = vec![Taxonomy::ROOT];
        for l in labels {
            if l as usize >= tax.len() {
                return Err(PTreeError::UnknownLabel(l));
            }
            nodes.extend(tax.ancestors_inclusive(l));
        }
        nodes.sort_unstable();
        nodes.dedup();
        Ok(PTree { nodes })
    }

    /// Wraps an id list that is already sorted, deduped, and
    /// ancestor-closed. Returns [`PTreeError::TaxonomyMismatch`] if not.
    pub fn from_closed_sorted(tax: &Taxonomy, nodes: Vec<LabelId>) -> Result<Self> {
        if !tax.is_ancestor_closed(&nodes) {
            return Err(PTreeError::TaxonomyMismatch);
        }
        Ok(PTree { nodes })
    }

    /// Crate-internal constructor for [`ProfileLoader`].
    pub(crate) fn from_validated(nodes: Vec<LabelId>) -> Self {
        PTree { nodes }
    }

    /// Test-only corruption hook: wraps an arbitrary node list with
    /// **no** validation, so the `debug-invariants` mutation tests can
    /// plant non-ancestor-closed profiles and assert that
    /// `verify_deep` catches them. Never use outside those tests.
    #[cfg(feature = "debug-invariants")]
    pub fn from_nodes_unchecked_for_test(nodes: Vec<LabelId>) -> Self {
        PTree { nodes }
    }

    /// The sorted node ids.
    #[inline]
    pub fn nodes(&self) -> &[LabelId] {
        &self.nodes
    }

    /// Number of labels, root included (`|T(v)|` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A P-tree always contains the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: LabelId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// Subtree inclusion `self ⊆ other` (Definition 3). Edge containment
    /// is implied by node containment because both trees inherit their
    /// edges from the same taxonomy.
    pub fn is_subtree_of(&self, other: &PTree) -> bool {
        if self.nodes.len() > other.nodes.len() {
            return false;
        }
        let mut it = other.nodes.iter();
        'outer: for &x in &self.nodes {
            for &y in it.by_ref() {
                match y.cmp(&x) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The common subtree of two P-trees (sorted intersection).
    pub fn intersect(&self, other: &PTree) -> PTree {
        let mut out = Vec::with_capacity(self.nodes.len().min(other.nodes.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() && j < other.nodes.len() {
            match self.nodes[i].cmp(&other.nodes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.nodes[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PTree { nodes: out }
    }

    /// The maximal common subtree `M(G)` of a non-empty collection
    /// (Definition 4): the intersection fold of all trees.
    pub fn intersect_all<'a, I: IntoIterator<Item = &'a PTree>>(trees: I) -> Option<PTree> {
        let mut it = trees.into_iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, t| acc.intersect(t)))
    }

    /// The union of two P-trees as a P-tree (needed by the CPS metric's
    /// `|Ti ∪ Tj|` denominator).
    pub fn union(&self, other: &PTree) -> PTree {
        let mut out = Vec::with_capacity(self.nodes.len() + other.nodes.len());
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() || j < other.nodes.len() {
            let a = self.nodes.get(i);
            let b = other.nodes.get(j);
            match (a, b) {
                (Some(&x), Some(&y)) if x == y => {
                    out.push(x);
                    i += 1;
                    j += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    out.push(x);
                    i += 1;
                }
                (Some(_), Some(&y)) => {
                    out.push(y);
                    j += 1;
                }
                (Some(&x), None) => {
                    out.push(x);
                    i += 1;
                }
                (None, Some(&y)) => {
                    out.push(y);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        PTree { nodes: out }
    }

    /// Leaf labels of this P-tree: members none of whose taxonomy
    /// children are members. (These feed the CP-tree `headMap`.)
    pub fn leaves(&self, tax: &Taxonomy) -> Vec<LabelId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&id| tax.children(id).iter().all(|&c| !self.contains(c)))
            .collect()
    }

    /// Members at taxonomy depth `d` (used by the LDR metric's
    /// per-level label counts).
    pub fn nodes_at_depth(&self, tax: &Taxonomy, d: u32) -> Vec<LabelId> {
        self.nodes.iter().copied().filter(|&id| tax.depth(id) == d).collect()
    }

    /// Height of this P-tree = max taxonomy depth among members.
    pub fn height(&self, tax: &Taxonomy) -> u32 {
        self.nodes.iter().map(|&id| tax.depth(id)).max().unwrap_or(0)
    }

    /// Pretty-prints the tree with indentation, e.g. for the case-study
    /// harness.
    pub fn render(&self, tax: &Taxonomy) -> String {
        let mut out = String::new();
        self.render_rec(tax, Taxonomy::ROOT, 0, &mut out);
        out
    }

    fn render_rec(&self, tax: &Taxonomy, id: LabelId, indent: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "{}{}", "  ".repeat(indent), tax.label(id));
        for &c in tax.children(id) {
            if self.contains(c) {
                self.render_rec(tax, c, indent + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 CCS fragment and the P-trees of vertices A..H.
    pub(crate) fn figure1() -> (Taxonomy, Vec<PTree>) {
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        // Vertex profiles from Fig. 1(a) (A..H = indices 0..7):
        //   A: CM(ML,AI), IS(DMS), HW     B: CM(ML,AI)
        //   C: CM(ML,AI), IS              D: CM(ML,AI), IS(DMS), HW
        //   E: IS(DMS), HW                F: IS, HW
        //   G: HW, CM                     H: IS, HW
        let trees = vec![
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (t, trees)
    }

    #[test]
    fn closure_adds_ancestors() {
        let (t, _) = figure1();
        let ml = t.id_of("ML").unwrap();
        let p = PTree::from_labels(&t, [ml]).unwrap();
        assert_eq!(p.len(), 3); // r, CM, ML
        assert!(p.contains(t.id_of("CM").unwrap()));
        assert!(p.contains(Taxonomy::ROOT));
    }

    #[test]
    fn from_closed_sorted_validates() {
        let (t, _) = figure1();
        let ml = t.id_of("ML").unwrap();
        let cm = t.id_of("CM").unwrap();
        assert!(PTree::from_closed_sorted(&t, vec![0, cm, ml]).is_ok());
        assert_eq!(
            PTree::from_closed_sorted(&t, vec![0, ml]).unwrap_err(),
            PTreeError::TaxonomyMismatch
        );
    }

    #[test]
    fn unknown_label_rejected() {
        let (t, _) = figure1();
        assert_eq!(PTree::from_labels(&t, [999]).unwrap_err(), PTreeError::UnknownLabel(999));
    }

    #[test]
    fn subtree_inclusion() {
        let (t, trees) = figure1();
        let b = &trees[1]; // r,CM,ML,AI
        let a = &trees[0]; // r,CM,IS,HW,ML,AI,DMS
        assert!(b.is_subtree_of(a));
        assert!(!a.is_subtree_of(b));
        assert!(PTree::root_only().is_subtree_of(b));
        assert!(b.is_subtree_of(b));
        let e = &trees[4]; // r,IS,HW,DMS
        assert!(!b.is_subtree_of(e));
        let _ = t;
    }

    #[test]
    fn intersection_matches_paper_example() {
        let (t, trees) = figure1();
        // Fig. 2(c): common subtree of {A, D, E} is r -> IS(DMS), HW.
        let m = PTree::intersect_all([&trees[0], &trees[3], &trees[4]]).unwrap();
        let expect =
            PTree::from_labels(&t, [t.id_of("DMS").unwrap(), t.id_of("HW").unwrap()]).unwrap();
        assert_eq!(m, expect);
        // Fig. 2(b): common subtree of {B, C, D} is r -> CM(ML, AI).
        let m2 = PTree::intersect_all([&trees[1], &trees[2], &trees[3]]).unwrap();
        let expect2 =
            PTree::from_labels(&t, [t.id_of("ML").unwrap(), t.id_of("AI").unwrap()]).unwrap();
        assert_eq!(m2, expect2);
    }

    #[test]
    fn intersect_all_empty_input() {
        assert!(PTree::intersect_all([]).is_none());
    }

    #[test]
    fn union_counts() {
        let (t, trees) = figure1();
        let b = &trees[1];
        let e = &trees[4];
        let u = b.union(e);
        // r,CM,ML,AI + r,IS,HW,DMS = 7 labels.
        assert_eq!(u.len(), 7);
        assert!(b.is_subtree_of(&u) && e.is_subtree_of(&u));
        let _ = t;
    }

    #[test]
    fn leaves_and_depths() {
        let (t, trees) = figure1();
        let a = &trees[0];
        let mut leaves = a.leaves(&t);
        leaves.sort_unstable();
        let mut expect = vec![
            t.id_of("ML").unwrap(),
            t.id_of("AI").unwrap(),
            t.id_of("DMS").unwrap(),
            t.id_of("HW").unwrap(),
        ];
        expect.sort_unstable();
        assert_eq!(leaves, expect);
        assert_eq!(a.nodes_at_depth(&t, 1).len(), 3); // CM, IS, HW
        assert_eq!(a.height(&t), 2);
        assert_eq!(PTree::root_only().height(&t), 0);
        assert_eq!(PTree::root_only().leaves(&t), vec![Taxonomy::ROOT]);
    }

    #[test]
    fn render_is_indented() {
        let (t, trees) = figure1();
        let r = trees[1].render(&t);
        assert!(r.contains("r\n"));
        assert!(r.contains("  CM\n"));
        assert!(r.contains("    ML\n"));
    }

    #[test]
    fn intersection_preserves_closure() {
        let (t, trees) = figure1();
        for a in &trees {
            for b in &trees {
                let i = a.intersect(b);
                assert!(t.is_ancestor_closed(i.nodes()), "{a:?} ∩ {b:?}");
                assert!(i.is_subtree_of(a) && i.is_subtree_of(b));
            }
        }
    }
}
