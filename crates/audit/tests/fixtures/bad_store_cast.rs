// Fixture: a narrowing `as` cast, which the store codec must replace
// with a checked conversion surfacing StoreError::Corrupt.

fn narrow(len: usize) -> u32 {
    len as u32
}
