//! Table 2: datasets used in the experiments.
//!
//! Prints the statistics of the four synthetic suite datasets at the
//! chosen scale next to the paper's full-size numbers, so the
//! calibration (d̂, P̂, |GP-tree|) can be checked at a glance.

use pcs_bench::{header, parse_args, row};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::SuiteDataset;

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    println!("Table 2 — datasets (scale {:.3} of paper sizes)\n", args.scale);
    header(&["dataset", "vertices", "edges", "d̂", "P̂", "|GP-tree|", "paper d̂", "paper P̂"]);
    for which in SuiteDataset::ALL {
        let ds = build(which, cfg);
        let (name, v, e, d, p, gp) = ds.table2_row();
        row(&[
            name,
            v.to_string(),
            e.to_string(),
            format!("{d:.2}"),
            format!("{p:.2}"),
            gp.to_string(),
            format!("{:.2}", which.paper_avg_degree()),
            format!("{:.2}", which.paper_avg_ptree()),
        ]);
    }
    println!(
        "\nPaper sizes: ACMDL 107,656 / Flickr 581,099 / PubMed 716,459 / DBLP 977,288 vertices."
    );
}
