//! # pcs-engine — the owned, serving-ready PCS facade
//!
//! Community search is an *online, repeated-query* workload: one
//! profiled graph is loaded (and indexed) once, then answers many
//! queries. The paper-layer [`QueryContext`](pcs_core::QueryContext)
//! is a borrowed bundle tied to its inputs' lifetimes — perfect for
//! reproduction runs, impossible to store in a server handler. This
//! crate provides the owned counterpart:
//!
//! * [`PcsEngine`] — owns graph + taxonomy + profiles, is
//!   `Send + Sync`, and caches the CP-tree index and core
//!   decomposition behind [`std::sync::OnceLock`].
//! * [`EngineBuilder`] — validates everything once at build time.
//! * [`QueryRequest`] / [`QueryResponse`] — an extensible
//!   request/response pair replacing positional arguments, with
//!   wall-clock timing and index-usage metadata on every answer.
//! * [`Error`] — one `#[non_exhaustive]` [`std::error::Error`]
//!   wrapping query, index, and validation failures.
//!
//! ```
//! use pcs_engine::{PcsEngine, QueryRequest};
//! use pcs_graph::Graph;
//! use pcs_ptree::{PTree, Taxonomy};
//!
//! let mut tax = Taxonomy::new("r");
//! let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
//! let profiles: Vec<PTree> =
//!     (0..3).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect();
//!
//! let engine = PcsEngine::builder()
//!     .graph(g)
//!     .taxonomy(tax)
//!     .profiles(profiles)
//!     .build()
//!     .unwrap();
//!
//! // Algorithm::Auto picks adv-P (the index is built lazily here).
//! let resp = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
//! assert_eq!(resp.communities().len(), 1);
//! assert_eq!(resp.communities()[0].vertices, vec![0, 1, 2]);
//! assert!(resp.index_used);
//! ```

mod engine;
mod error;
mod request;

pub use engine::{EngineBuilder, IndexMode, PcsEngine};
pub use error::{BuildError, Error, Result};
pub use request::{QueryRequest, QueryResponse};

// The facade re-exports the algorithm selector so callers need only
// this crate for the common path.
pub use pcs_core::Algorithm;
