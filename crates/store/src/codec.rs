//! Section encodings: engine state ⇄ flat little-endian payloads.
//!
//! Every section is a sequence of length-prefixed flat arrays — the
//! load path is *validate-then-bulk-copy*: checksums (the container's
//! job) prove the bytes are what the writer produced, structural
//! validation (each component's `from_*` constructor) proves the arrays
//! describe a legal value, and the arrays themselves are adopted
//! wholesale rather than decoded element by element.
//!
//! | id | section | contents |
//! |---|---|---|
//! | 1 | `META` | epoch, vertex/edge/label counts (cross-checked) |
//! | 2 | `GRAPH` | CSR offsets (u64) + neighbor array (u32) |
//! | 3 | `TAXONOMY` | parent array + length-prefixed label names |
//! | 4 | `PROFILES` | per-vertex node counts + flat label array |
//! | 5 | `CORES` | per-vertex core numbers (optional section) |
//! | 6 | `INDEX` | headMap + per-label CL-tree flat arenas (optional) |

use crate::format::{
    Result, SectionReader, SectionWriter, SnapshotFile, SnapshotSlices, StoreError,
};
use pcs_graph::{Graph, VertexId};
use pcs_index::{ClTreeFlat, CpNodeFlat, CpTree, CpTreeFlat};
use pcs_ptree::{PTree, ProfileLoader, Taxonomy};

/// Well-known section ids (see the module table).
pub mod section {
    /// Epoch and cross-checked counts.
    pub const META: u32 = 1;
    /// The CSR graph.
    pub const GRAPH: u32 = 2;
    /// The GP-tree.
    pub const TAXONOMY: u32 = 3;
    /// Per-vertex P-trees.
    pub const PROFILES: u32 = 4;
    /// Core numbers (optional).
    pub const CORES: u32 = 5;
    /// The CP-tree index (optional).
    pub const INDEX: u32 = 6;
}

/// A fully decoded snapshot: everything an engine needs to warm-start.
#[derive(Debug)]
pub struct SnapshotContents {
    /// The epoch the source engine was at when saved.
    pub epoch: u64,
    /// The host graph (structurally validated on decode).
    pub graph: Graph,
    /// The GP-tree.
    pub tax: Taxonomy,
    /// Per-vertex P-trees.
    pub profiles: Vec<PTree>,
    /// Core numbers, when the source snapshot had them computed.
    pub cores: Option<Vec<u32>>,
    /// The CP-tree index, when the source snapshot had one built.
    pub index: Option<CpTree>,
}

fn corrupt(section: u32, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { section, detail: detail.into() }
}

/// Serializes one engine snapshot into a [`SnapshotFile`].
///
/// `cores` and `index` are optional: pass whatever the source snapshot
/// has already materialized. The writer guarantees the sections agree
/// with each other — [`decode_snapshot`] re-checks the cheap
/// consistency subset on the way back in.
pub fn encode_snapshot(
    epoch: u64,
    graph: &Graph,
    tax: &Taxonomy,
    profiles: &[PTree],
    cores: Option<&[u32]>,
    index: Option<&CpTree>,
) -> SnapshotFile {
    let mut file = SnapshotFile::new();
    // Narrow (two-byte) id width whenever every id-like value fits:
    // vertex ids, label ids, and everything bounded by them (core
    // levels, arena offsets, CL-node ids). `u16::MAX` stays reserved
    // as the widened `u32::MAX` sentinel.
    let narrow = graph.num_vertices() < u16::MAX as usize && tax.len() < u16::MAX as usize;

    let mut meta = SectionWriter::new();
    meta.put_u64(epoch);
    meta.put_u64(graph.num_vertices() as u64);
    meta.put_u64(graph.num_edges() as u64);
    meta.put_u64(tax.len() as u64);
    meta.put_u64(narrow as u64);
    file.push_section(section::META, meta.finish());

    let mut g = SectionWriter::new();
    g.put_u64(graph.num_vertices() as u64);
    g.put_usize_slice_as_u64(graph.csr_offsets());
    g.put_u64(graph.csr_neighbors().len() as u64);
    g.put_id_slice(graph.csr_neighbors(), narrow);
    file.push_section(section::GRAPH, g.finish());

    let mut t = SectionWriter::new();
    t.put_u64(tax.len() as u64);
    t.put_id_slice(tax.parents(), narrow);
    for name in tax.label_names() {
        t.put_u32(name.len() as u32);
        t.put_bytes(name.as_bytes());
    }
    file.push_section(section::TAXONOMY, t.finish());

    let mut p = SectionWriter::new();
    p.put_u64(profiles.len() as u64);
    for profile in profiles {
        p.put_u32(profile.nodes().len() as u32);
    }
    let total: usize = profiles.iter().map(|pr| pr.nodes().len()).sum();
    p.put_u64(total as u64);
    for profile in profiles {
        p.put_id_slice(profile.nodes(), narrow);
    }
    file.push_section(section::PROFILES, p.finish());

    if let Some(core) = cores {
        let mut c = SectionWriter::new();
        c.put_u64(core.len() as u64);
        c.put_id_slice(core, narrow);
        file.push_section(section::CORES, c.finish());
    }

    if let Some(idx) = index {
        file.push_section(section::INDEX, encode_index(idx, tax.len(), narrow));
    }
    file
}

/// Serializes the index one label at a time: only a single label's
/// CL-tree is flattened at any moment, so saving never holds a second
/// copy of the whole index in memory.
fn encode_index(idx: &CpTree, num_labels: usize, narrow: bool) -> Vec<u8> {
    let n = idx.num_vertices();
    let mut w = SectionWriter::new();
    w.put_u64(n as u64);
    w.put_u64(num_labels as u64);
    for v in 0..n as VertexId {
        w.put_u32(idx.head(v).len() as u32);
    }
    let total: usize = (0..n as VertexId).map(|v| idx.head(v).len()).sum();
    w.put_u64(total as u64);
    for v in 0..n as VertexId {
        w.put_id_slice(idx.head(v), narrow);
    }
    w.put_u64(idx.num_populated_labels() as u64);
    for label in 0..num_labels as u32 {
        let Some(node) = idx.node(label) else {
            continue;
        };
        w.put_u32(node.label);
        let cl = node.cl.to_flat();
        w.put_u64(cl.core.len() as u64);
        w.put_id_slice(&cl.core, narrow);
        w.put_id_slice(&cl.parent, narrow);
        w.put_id_slice(&cl.sub_off, narrow);
        w.put_id_slice(&cl.sub_len, narrow);
        w.put_id_slice(&cl.own_len, narrow);
        w.put_u64(cl.arena.len() as u64);
        w.put_id_slice(&cl.arena, narrow);
        w.put_id_slice(&cl.members, narrow);
        w.put_id_slice(&cl.node_of, narrow);
        w.put_id_slice(&cl.arena_pos, narrow);
    }
    w.finish()
}

/// Anything the codec can pull sections out of: the owned
/// [`SnapshotFile`] or the zero-copy [`SnapshotSlices`] view.
pub trait SectionSource {
    /// The payload of section `id`, if present.
    fn section(&self, id: u32) -> Option<&[u8]>;
}

impl SectionSource for SnapshotFile {
    fn section(&self, id: u32) -> Option<&[u8]> {
        SnapshotFile::section(self, id)
    }
}

impl SectionSource for SnapshotSlices<'_> {
    fn section(&self, id: u32) -> Option<&[u8]> {
        SnapshotSlices::section(self, id)
    }
}

/// One-call warm-start path: container-validate `bytes` without
/// copying payloads, then [`decode_snapshot`].
pub fn decode_snapshot_bytes(bytes: &[u8]) -> Result<SnapshotContents> {
    decode_snapshot_bytes_with(bytes, true)
}

/// [`decode_snapshot_bytes`] with the index decode made optional:
/// replicas that will drop the index anyway (`IndexMode::Disabled`)
/// pass `want_index = false` and skip decoding/validating the INDEX
/// section — the dominant share of a warm snapshot — entirely. The
/// container still checksums every section either way.
pub fn decode_snapshot_bytes_with(bytes: &[u8], want_index: bool) -> Result<SnapshotContents> {
    decode_snapshot_with(&SnapshotSlices::from_bytes(bytes)?, want_index)
}

/// Decodes (and cross-validates) a snapshot file back into engine
/// parts.
///
/// Validation layers, cheapest first: the container already proved
/// byte integrity via checksums; this function proves *structure*
/// (graph CSR invariants, taxonomy shape, P-tree closure, CL-tree
/// arena invariants) and *cross-section agreement* (counts line up,
/// core numbers fit their degrees, and the index `headMap` restores
/// exactly the profile section's P-trees). Anything that fails maps to
/// a typed [`StoreError`] — a decoded snapshot is safe to serve from.
pub fn decode_snapshot(file: &impl SectionSource) -> Result<SnapshotContents> {
    decode_snapshot_with(file, true)
}

/// [`decode_snapshot`] with the index decode made optional (see
/// [`decode_snapshot_bytes_with`]). With `want_index = false` the
/// INDEX section is left untouched and `contents.index` is `None`.
pub fn decode_snapshot_with(
    file: &impl SectionSource,
    want_index: bool,
) -> Result<SnapshotContents> {
    let require = |id: u32| file.section(id).ok_or(StoreError::MissingSection { section: id });

    let mut meta = SectionReader::new(require(section::META)?, section::META);
    let epoch = meta.u64()?;
    let meta_n = meta.usize64()?;
    let meta_m = meta.usize64()?;
    let meta_labels = meta.usize64()?;
    let narrow = match meta.u64()? {
        0 => false,
        1 => true,
        other => return Err(corrupt(section::META, format!("unknown flags {other}"))),
    };
    if narrow && (meta_n >= u16::MAX as usize || meta_labels >= u16::MAX as usize) {
        return Err(corrupt(section::META, "narrow id width cannot hold the declared counts"));
    }
    meta.finish()?;

    let mut g = SectionReader::new(require(section::GRAPH)?, section::GRAPH);
    let n = g.usize64()?;
    if n != meta_n {
        return Err(corrupt(section::GRAPH, "vertex count disagrees with META"));
    }
    let offsets = g.usize_vec_from_u64(
        n.checked_add(1).ok_or_else(|| corrupt(section::GRAPH, "vertex count overflows"))?,
    )?;
    let nbr_len = g.usize64()?;
    let neighbors: Vec<VertexId> = g.id_vec(nbr_len, narrow)?;
    g.finish()?;
    let graph =
        Graph::from_csr(offsets, neighbors).map_err(|e| corrupt(section::GRAPH, e.to_string()))?;
    if graph.num_edges() != meta_m {
        return Err(corrupt(section::GRAPH, "edge count disagrees with META"));
    }

    let mut t = SectionReader::new(require(section::TAXONOMY)?, section::TAXONOMY);
    let labels_len = t.usize64()?;
    if labels_len != meta_labels {
        return Err(corrupt(section::TAXONOMY, "label count disagrees with META"));
    }
    let parents = t.id_vec(labels_len, narrow)?;
    let mut names = Vec::with_capacity(labels_len);
    for _ in 0..labels_len {
        let len = t.u32()? as usize;
        let raw = t.bytes(len)?;
        names.push(
            String::from_utf8(raw.to_vec())
                .map_err(|_| corrupt(section::TAXONOMY, "label name is not UTF-8"))?,
        );
    }
    t.finish()?;
    let tax = Taxonomy::from_parts(names, parents)
        .map_err(|e| corrupt(section::TAXONOMY, e.to_string()))?;

    let mut p = SectionReader::new(require(section::PROFILES)?, section::PROFILES);
    let profile_count = p.usize64()?;
    if profile_count != n {
        return Err(corrupt(section::PROFILES, "profile count disagrees with the graph"));
    }
    let lens = p.u32_vec(profile_count)?;
    let total = p.usize64()?;
    if lens.iter().map(|&l| l as u64).sum::<u64>() != total as u64 {
        return Err(corrupt(section::PROFILES, "per-profile lengths disagree with the total"));
    }
    let flat = p.id_vec(total, narrow)?;
    p.finish()?;
    let mut profiles = Vec::with_capacity(profile_count);
    let mut loader = ProfileLoader::new(&tax);
    let mut at = 0usize;
    for (v, &len) in lens.iter().enumerate() {
        let nodes = flat[at..at + len as usize].to_vec();
        at += len as usize;
        profiles.push(loader.ptree(&tax, nodes).map_err(|_| {
            corrupt(section::PROFILES, format!("profile of vertex {v} is not a valid P-tree"))
        })?);
    }

    let cores = match file.section(section::CORES) {
        None => None,
        Some(payload) => {
            let mut c = SectionReader::new(payload, section::CORES);
            let count = c.usize64()?;
            if count != n {
                return Err(corrupt(section::CORES, "core count disagrees with the graph"));
            }
            let core = c.id_vec(count, narrow)?;
            c.finish()?;
            // A vertex's core number can never exceed its degree — the
            // cheap sanity bound that catches a cores section paired
            // with the wrong graph.
            for (v, &k) in core.iter().enumerate() {
                if k as usize > graph.degree(v as VertexId) {
                    return Err(corrupt(
                        section::CORES,
                        format!("core number {k} of vertex {v} exceeds its degree"),
                    ));
                }
            }
            Some(core)
        }
    };

    let index = match file.section(section::INDEX).filter(|_| want_index) {
        None => None,
        Some(payload) => {
            let flat = decode_index(payload, n, tax.len(), narrow)?;
            let idx =
                CpTree::from_flat(flat).map_err(|e| corrupt(section::INDEX, e.to_string()))?;
            // The headMap must restore exactly the profiles section's
            // P-trees — the cross-section pin that an index actually
            // belongs to this snapshot. Restoration is upward closure,
            // so `closure(head(v)) == T(v)` iff every head is in T(v)
            // (closure ⊆ T(v) follows, T(v) being ancestor-closed) and
            // the closure's size equals |T(v)|. Counted with one
            // reusable stamp array: no per-vertex allocation or sort.
            let mut stamp = vec![u32::MAX; tax.len()];
            for v in 0..n as VertexId {
                let profile = &profiles[v as usize];
                let heads = idx.head(v);
                let mut closure_size = 0usize;
                for &h in heads {
                    if !profile.contains(h) {
                        return Err(corrupt(
                            section::INDEX,
                            format!("headMap of vertex {v} escapes its profile"),
                        ));
                    }
                    let mut cur = h;
                    while stamp[cur as usize] != v {
                        stamp[cur as usize] = v;
                        closure_size += 1;
                        if cur == Taxonomy::ROOT {
                            break;
                        }
                        cur = tax.parent(cur);
                    }
                }
                if closure_size != profile.len() {
                    return Err(corrupt(
                        section::INDEX,
                        format!("headMap of vertex {v} does not restore its profile"),
                    ));
                }
            }
            Some(idx)
        }
    };

    Ok(SnapshotContents { epoch, graph, tax, profiles, cores, index })
}

fn decode_index(payload: &[u8], n: usize, num_labels: usize, narrow: bool) -> Result<CpTreeFlat> {
    let mut r = SectionReader::new(payload, section::INDEX);
    let idx_n = r.usize64()?;
    let idx_labels = r.usize64()?;
    if idx_n != n || idx_labels != num_labels {
        return Err(corrupt(section::INDEX, "index dimensions disagree with graph/taxonomy"));
    }
    let head_lens = r.u32_vec(idx_n)?;
    let total = r.usize64()?;
    if head_lens.iter().map(|&l| l as u64).sum::<u64>() != total as u64 {
        return Err(corrupt(section::INDEX, "headMap lengths disagree with the total"));
    }
    let flat_heads = r.id_vec(total, narrow)?;
    let mut head_map = Vec::with_capacity(idx_n);
    let mut at = 0usize;
    for &len in &head_lens {
        head_map.push(flat_heads[at..at + len as usize].to_vec());
        at += len as usize;
    }
    let node_count = r.usize64()?;
    let mut nodes = Vec::with_capacity(node_count.min(idx_labels));
    for _ in 0..node_count {
        let label = r.u32()?;
        let cl_nodes = r.usize64()?;
        let cl = ClTreeFlat {
            core: r.id_vec(cl_nodes, narrow)?,
            parent: r.id_vec(cl_nodes, narrow)?,
            sub_off: r.id_vec(cl_nodes, narrow)?,
            sub_len: r.id_vec(cl_nodes, narrow)?,
            own_len: r.id_vec(cl_nodes, narrow)?,
            arena: Vec::new(),
            members: Vec::new(),
            node_of: Vec::new(),
            arena_pos: Vec::new(),
        };
        let members = r.usize64()?;
        let cl = ClTreeFlat {
            arena: r.id_vec(members, narrow)?,
            members: r.id_vec(members, narrow)?,
            node_of: r.id_vec(members, narrow)?,
            arena_pos: r.id_vec(members, narrow)?,
            ..cl
        };
        nodes.push(CpNodeFlat { label, cl });
    }
    r.finish()?;
    Ok(CpTreeFlat { n: idx_n, num_labels: idx_labels, nodes, head_map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::core::CoreDecomposition;

    fn tiny() -> (Graph, Taxonomy, Vec<PTree>) {
        let mut tax = Taxonomy::new("r");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let b = tax.add_child(a, "b").unwrap();
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let profiles = vec![
            PTree::from_labels(&tax, [a]).unwrap(),
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [a, b]).unwrap(),
            PTree::root_only(),
            PTree::root_only(), // isolated vertex 4
        ];
        (g, tax, profiles)
    }

    #[test]
    fn full_round_trip_through_bytes() {
        let (g, tax, profiles) = tiny();
        let cores = CoreDecomposition::new(&g);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        let file =
            encode_snapshot(42, &g, &tax, &profiles, Some(cores.core_numbers()), Some(&index));
        let back = SnapshotFile::from_bytes(&file.to_bytes()).expect("container validates");
        let contents = decode_snapshot(&back).expect("decodes");
        assert_eq!(contents.epoch, 42);
        assert_eq!(&contents.graph, &g);
        assert_eq!(contents.tax.label_names(), tax.label_names());
        assert_eq!(contents.tax.parents(), tax.parents());
        assert_eq!(contents.profiles, profiles);
        assert_eq!(contents.cores.as_deref(), Some(cores.core_numbers()));
        let idx = contents.index.expect("index section present");
        assert_eq!(idx.to_flat(), index.to_flat());
    }

    /// Graphs too large for two-byte ids take the wide path; both
    /// widths must round-trip.
    #[test]
    fn wide_mode_round_trips() {
        let n = u16::MAX as usize + 10;
        let mut tax = Taxonomy::new("r");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let edges: Vec<(u32, u32)> = (0..200u32).map(|i| (i, u16::MAX as u32 + i % 10)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut profiles = vec![PTree::root_only(); n];
        profiles[n - 1] = PTree::from_labels(&tax, [a]).unwrap();
        let cores = CoreDecomposition::new(&g);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        let file =
            encode_snapshot(7, &g, &tax, &profiles, Some(cores.core_numbers()), Some(&index));
        let contents =
            decode_snapshot(&SnapshotFile::from_bytes(&file.to_bytes()).unwrap()).unwrap();
        assert_eq!(&contents.graph, &g);
        assert_eq!(contents.profiles, profiles);
        assert_eq!(contents.index.unwrap().to_flat(), index.to_flat());
    }

    #[test]
    fn optional_sections_really_optional() {
        let (g, tax, profiles) = tiny();
        let file = encode_snapshot(0, &g, &tax, &profiles, None, None);
        let contents = decode_snapshot(&file).unwrap();
        assert!(contents.cores.is_none());
        assert!(contents.index.is_none());
    }

    #[test]
    fn index_decode_can_be_skipped() {
        let (g, tax, profiles) = tiny();
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        let file = encode_snapshot(0, &g, &tax, &profiles, None, Some(&index));
        let contents = decode_snapshot_with(&file, false).unwrap();
        assert!(contents.index.is_none(), "INDEX section present but not wanted");
        assert_eq!(&contents.graph, &g, "the rest of the snapshot still decodes");
    }

    #[test]
    fn missing_required_section_is_typed() {
        let (g, tax, profiles) = tiny();
        let full = encode_snapshot(0, &g, &tax, &profiles, None, None);
        for drop_id in [section::META, section::GRAPH, section::TAXONOMY, section::PROFILES] {
            let mut partial = SnapshotFile::new();
            for id in full.section_ids() {
                if id != drop_id {
                    partial.push_section(id, full.section(id).unwrap().to_vec());
                }
            }
            assert_eq!(
                decode_snapshot(&partial).unwrap_err(),
                StoreError::MissingSection { section: drop_id }
            );
        }
    }

    #[test]
    fn cross_section_disagreement_is_corrupt() {
        let (g, tax, profiles) = tiny();
        // Cores from a *different* (denser) graph exceed degrees here.
        let other = Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        .unwrap();
        let wrong_cores = CoreDecomposition::new(&other);
        let file = encode_snapshot(0, &g, &tax, &profiles, Some(wrong_cores.core_numbers()), None);
        assert!(matches!(
            decode_snapshot(&file).unwrap_err(),
            StoreError::Corrupt { section: section::CORES, .. }
        ));
    }
}
