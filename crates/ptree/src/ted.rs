//! Tree edit distance (Zhang–Shasha) for ordered labeled trees.
//!
//! The paper's CPS metric (Eq. 2) scores community cohesiveness by the
//! pairwise tree edit distance between member P-trees. We implement the
//! classic Zhang–Shasha dynamic program over postorder positions and
//! keyroots with unit costs (insert = delete = 1, relabel = 1 when the
//! labels differ, 0 otherwise).
//!
//! For two P-trees of the *same* taxonomy, the node-set symmetric
//! difference (delete one side's extras, insert the other's) is an easy
//! *upper bound* on TED — relabel operations can beat it when the trees
//! diverge structurally — and the two coincide whenever one tree is a
//! subtree of the other. Both facts are property-tested below; the
//! metrics crate uses the exact Zhang–Shasha distance.

use crate::ptree::PTree;
use crate::taxonomy::Taxonomy;

/// An ordered, labeled, rooted tree in the form Zhang–Shasha consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderedTree {
    /// Label of each node; indices are arbitrary handles.
    labels: Vec<u32>,
    /// Children (ordered) of each node.
    children: Vec<Vec<usize>>,
    root: usize,
}

impl OrderedTree {
    /// Builds a tree from parallel label/children arrays.
    ///
    /// Panics if `root` or any child index is out of range.
    pub fn new(labels: Vec<u32>, children: Vec<Vec<usize>>, root: usize) -> Self {
        assert_eq!(labels.len(), children.len());
        assert!(root < labels.len());
        for c in children.iter().flatten() {
            assert!(*c < labels.len(), "child index out of range");
        }
        OrderedTree { labels, children, root }
    }

    /// Converts a [`PTree`] (children ordered by ascending label id, the
    /// taxonomy's insertion order).
    pub fn from_ptree(tax: &Taxonomy, p: &PTree) -> Self {
        let ids = p.nodes();
        let index_of = |id: u32| ids.binary_search(&id).unwrap();
        let labels: Vec<u32> = ids.to_vec();
        let children: Vec<Vec<usize>> = ids
            .iter()
            .map(|&id| {
                tax.children(id).iter().copied().filter(|&c| p.contains(c)).map(index_of).collect()
            })
            .collect();
        OrderedTree::new(labels, children, index_of(Taxonomy::ROOT))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Trees here always have at least a root.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Postorder traversal: returns (postorder labels, leftmost-leaf
    /// index `l(i)` per postorder position).
    fn postorder(&self) -> (Vec<u32>, Vec<usize>) {
        let n = self.len();
        let mut order_labels = Vec::with_capacity(n);
        let mut lml = Vec::with_capacity(n);
        // Recursive postorder carrying the leftmost-leaf of each
        // subtree. Returns l(v): the postorder index of v's leftmost
        // leaf (v's own index when v is a leaf).
        fn rec(
            t: &OrderedTree,
            v: usize,
            order_labels: &mut Vec<u32>,
            lml: &mut Vec<usize>,
        ) -> usize {
            let mut leftmost = usize::MAX;
            for &c in &t.children[v] {
                let l = rec(t, c, order_labels, lml);
                if leftmost == usize::MAX {
                    leftmost = l;
                }
            }
            let idx = order_labels.len();
            if leftmost == usize::MAX {
                leftmost = idx;
            }
            order_labels.push(t.labels[v]);
            lml.push(leftmost);
            leftmost
        }
        rec(self, self.root, &mut order_labels, &mut lml);
        (order_labels, lml)
    }
}

/// Zhang–Shasha tree edit distance with unit costs.
pub fn tree_edit_distance(a: &OrderedTree, b: &OrderedTree) -> usize {
    let (la, l1) = a.postorder();
    let (lb, l2) = b.postorder();
    let (n, m) = (la.len(), lb.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Keyroots: nodes with no left sibling in the postorder/leftmost
    // structure; equivalently the highest node for each distinct l().
    let keyroots = |lml: &[usize]| -> Vec<usize> {
        let mut last: std::collections::BTreeMap<usize, usize> = Default::default();
        for (i, &l) in lml.iter().enumerate() {
            last.insert(l, i);
        }
        let mut ks: Vec<usize> = last.into_values().collect();
        ks.sort_unstable();
        ks
    };
    let k1 = keyroots(&l1);
    let k2 = keyroots(&l2);

    let mut td = vec![vec![0usize; m]; n]; // treedist between subtrees rooted at (i, j)
    let mut fd = vec![vec![0usize; m + 1]; n + 1]; // forest distance scratch

    for &i in &k1 {
        for &j in &k2 {
            // Forest distance over postorder ranges l1[i]..=i, l2[j]..=j.
            let (li, lj) = (l1[i], l2[j]);
            fd[li][lj] = 0;
            for x in li..=i {
                fd[x + 1][lj] = fd[x][lj] + 1;
            }
            for y in lj..=j {
                fd[li][y + 1] = fd[li][y] + 1;
            }
            for x in li..=i {
                for y in lj..=j {
                    if l1[x] == li && l2[y] == lj {
                        let relabel = usize::from(la[x] != lb[y]);
                        fd[x + 1][y + 1] =
                            (fd[x][y + 1] + 1).min(fd[x + 1][y] + 1).min(fd[x][y] + relabel);
                        td[x][y] = fd[x + 1][y + 1];
                    } else {
                        fd[x + 1][y + 1] = (fd[x][y + 1] + 1)
                            .min(fd[x + 1][y] + 1)
                            .min(fd[l1[x]][l2[y]] + td[x][y]);
                    }
                }
            }
        }
    }
    td[n - 1][m - 1]
}

/// Size of the node-set symmetric difference of two P-trees of one
/// taxonomy. This is an upper bound on [`tree_edit_distance`] (delete
/// `a \ b`, insert `b \ a`), and exactly equals it when one tree is a
/// subtree of the other.
pub fn symmetric_difference_distance(a: &PTree, b: &PTree) -> usize {
    let (mut i, mut j, mut diff) = (0usize, 0usize, 0usize);
    let (an, bn) = (a.nodes(), b.nodes());
    while i < an.len() && j < bn.len() {
        match an[i].cmp(&bn[j]) {
            std::cmp::Ordering::Less => {
                diff += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    diff + (an.len() - i) + (bn.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_tree(label: u32) -> OrderedTree {
        OrderedTree::new(vec![label], vec![vec![]], 0)
    }

    #[test]
    fn identical_trees_distance_zero() {
        let t = OrderedTree::new(vec![0, 1, 2], vec![vec![1, 2], vec![], vec![]], 0);
        assert_eq!(tree_edit_distance(&t, &t), 0);
    }

    #[test]
    fn single_relabel() {
        let a = leaf_tree(1);
        let b = leaf_tree(2);
        assert_eq!(tree_edit_distance(&a, &b), 1);
        assert_eq!(tree_edit_distance(&a, &a), 0);
    }

    #[test]
    fn insert_delete_chain() {
        // root(0) vs root(0)->child(1): one insertion.
        let a = leaf_tree(0);
        let b = OrderedTree::new(vec![0, 1], vec![vec![1], vec![]], 0);
        assert_eq!(tree_edit_distance(&a, &b), 1);
        assert_eq!(tree_edit_distance(&b, &a), 1);
    }

    #[test]
    fn classic_zhang_shasha_example() {
        // Textbook example: f(d(a c(b)) e) vs f(c(d(a b)) e) => distance 2.
        // Labels: f=0 d=1 a=2 c=3 b=4 e=5.
        let t1 = OrderedTree::new(
            vec![0, 1, 2, 3, 4, 5],
            vec![vec![1, 5], vec![2, 3], vec![], vec![4], vec![], vec![]],
            0,
        );
        let t2 = OrderedTree::new(
            vec![0, 3, 1, 2, 4, 5],
            vec![vec![1, 5], vec![2], vec![3, 4], vec![], vec![], vec![]],
            0,
        );
        assert_eq!(tree_edit_distance(&t1, &t2), 2);
    }

    #[test]
    fn distance_is_symmetric_and_triangleish() {
        let t1 = OrderedTree::new(vec![0, 1, 2], vec![vec![1, 2], vec![], vec![]], 0);
        let t2 = OrderedTree::new(vec![0, 1], vec![vec![1], vec![]], 0);
        let t3 = leaf_tree(0);
        let d12 = tree_edit_distance(&t1, &t2);
        let d21 = tree_edit_distance(&t2, &t1);
        assert_eq!(d12, d21);
        let d13 = tree_edit_distance(&t1, &t3);
        let d23 = tree_edit_distance(&t2, &t3);
        assert!(d13 <= d12 + d23);
    }

    #[test]
    fn ted_matches_symdiff_for_nested_ptrees() {
        use crate::taxonomy::Taxonomy;
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let c = t.add_child(a, "c").unwrap();
        let d = t.add_child(a, "d").unwrap();
        let e = t.add_child(b, "e").unwrap();
        let full = PTree::from_labels(&t, [c, d, e]).unwrap();
        let nested = [
            PTree::root_only(),
            PTree::from_labels(&t, [a]).unwrap(),
            PTree::from_labels(&t, [c]).unwrap(),
            PTree::from_labels(&t, [c, d]).unwrap(),
            full.clone(),
        ];
        for x in &nested {
            assert!(x.is_subtree_of(&full));
            let general = tree_edit_distance(
                &OrderedTree::from_ptree(&t, x),
                &OrderedTree::from_ptree(&t, &full),
            );
            assert_eq!(general, symmetric_difference_distance(x, &full));
            assert_eq!(general, full.len() - x.len());
        }
    }

    #[test]
    fn relabel_can_beat_symdiff() {
        // A = r->a->{c,d}, B = r->b->e: the optimal mapping relabels
        // a→b and c→e and deletes d (cost 3), while the symmetric
        // difference is 5.
        use crate::taxonomy::Taxonomy;
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let c = t.add_child(a, "c").unwrap();
        let d = t.add_child(a, "d").unwrap();
        let e = t.add_child(b, "e").unwrap();
        let ta = PTree::from_labels(&t, [c, d]).unwrap();
        let tb = PTree::from_labels(&t, [e]).unwrap();
        let general = tree_edit_distance(
            &OrderedTree::from_ptree(&t, &ta),
            &OrderedTree::from_ptree(&t, &tb),
        );
        assert_eq!(general, 3);
        assert_eq!(symmetric_difference_distance(&ta, &tb), 5);
    }

    #[test]
    fn random_ptrees_symdiff_upper_bounds_ted() {
        use crate::taxonomy::Taxonomy;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        let mut tax = Taxonomy::new("r");
        let mut ids = vec![0u32];
        for i in 1..15 {
            let parent = ids[rng.gen_range(0..ids.len())];
            ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
        }
        for _ in 0..40 {
            let pick = |rng: &mut SmallRng| {
                let ls: Vec<u32> = ids.iter().copied().filter(|_| rng.gen_bool(0.4)).collect();
                PTree::from_labels(&tax, ls).unwrap()
            };
            let x = pick(&mut rng);
            let y = pick(&mut rng);
            let general = tree_edit_distance(
                &OrderedTree::from_ptree(&tax, &x),
                &OrderedTree::from_ptree(&tax, &y),
            );
            let bound = symmetric_difference_distance(&x, &y);
            assert!(general <= bound, "ted {general} > symdiff {bound}");
            // Size difference is a lower bound.
            assert!(general >= x.len().abs_diff(y.len()));
            // Symmetry.
            let rev = tree_edit_distance(
                &OrderedTree::from_ptree(&tax, &y),
                &OrderedTree::from_ptree(&tax, &x),
            );
            assert_eq!(general, rev);
        }
    }

    #[test]
    #[should_panic(expected = "child index out of range")]
    fn ordered_tree_validates_children() {
        OrderedTree::new(vec![0], vec![vec![5]], 0);
    }
}
