//! Scalability tour: index once, query five ways.
//!
//! Generates an ACMDL-like profiled graph, builds the CP-tree index
//! (timed, sequential vs parallel), then runs the same PCS queries with
//! all five algorithms and prints the speed hierarchy the paper's
//! Fig. 14 reports (`basic ≪ incre < adv-I < adv-D ≈ adv-P`).
//!
//! Run with: `cargo run --release --example scalability_tour`

use std::time::Instant;

use pcs::prelude::*;

fn main() {
    let cfg = SuiteConfig { scale: 0.03, ..SuiteConfig::default() };
    let ds = pcs::datasets::suite::build(SuiteDataset::Acmdl, cfg);
    println!(
        "dataset: {} — {} vertices, {} edges",
        ds.name,
        ds.graph.num_vertices(),
        ds.graph.num_edges()
    );

    // --- Index construction ------------------------------------------------
    let t0 = Instant::now();
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).expect("consistent dataset");
    let seq = t0.elapsed();
    let t0 = Instant::now();
    let _par = CpTree::build_with_threads(&ds.graph, &ds.tax, &ds.profiles, 8)
        .expect("consistent dataset");
    let par = t0.elapsed();
    println!(
        "CP-tree build: {:.1} ms sequential, {:.1} ms with 8 threads ({} labels populated, ~{:.1} MiB)",
        seq.as_secs_f64() * 1e3,
        par.as_secs_f64() * 1e3,
        index.num_populated_labels(),
        index.memory_bytes() as f64 / (1024.0 * 1024.0)
    );

    // --- Queries -----------------------------------------------------------
    let (queries, level) = pcs::datasets::sample_query_vertices(&ds, 6, 20, 7);
    println!("\n{} query vertices from the {}-core; k = 6\n", queries.len(), level);
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles)
        .expect("consistent dataset")
        .with_index(&index);

    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>12}",
        "method", "total (ms)", "verifications", "candidates", "communities"
    );
    for algo in Algorithm::ALL {
        let t0 = Instant::now();
        let mut verifications = 0u64;
        let mut generated = 0u64;
        let mut communities = 0usize;
        for &q in &queries {
            let out = ctx.query(q, 6, algo).expect("query in range");
            verifications += out.stats.verifications;
            generated += out.stats.subtrees_generated;
            communities += out.communities.len();
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<8} {:>12.2} {:>14} {:>14} {:>12}",
            algo.name(),
            ms,
            verifications,
            generated,
            communities
        );
    }
    println!("\nExpected ordering (paper Fig. 14): basic slowest by orders of magnitude,");
    println!("incre in the middle, adv-D / adv-P fastest.");
}
