//! # pcs-metrics — community quality metrics
//!
//! The four quality indices of the paper's effectiveness evaluation
//! (Section 5.2/5.3), plus F1 against ground-truth circles:
//!
//! * [`cps`] — **Community Pairwise Similarity** (Eq. 2): average
//!   TED-based similarity between member P-trees, over all vertex pairs
//!   of all communities. Higher = more cohesive.
//! * [`ldr`] — **Level-Diversity Ratio** (Eq. 3): per-taxonomy-level
//!   unique-label coverage of a method's shared trees relative to
//!   PCS's. Lower = the method is less diverse than PCS.
//! * [`cpf`] — **Community P-tree Frequency** (Eq. 4): how frequently
//!   the query's P-tree nodes occur among community members (document-
//!   frequency style). Higher = better cohesiveness.
//! * [`f1`] — F1-score of a found community against ground-truth
//!   circles (Fig. 11 / Table 4).

#![deny(unsafe_code)]

pub mod cpf;
pub mod cps;
pub mod f1;
pub mod ldr;

pub use cpf::cpf;
pub use cps::{cps, pairwise_similarity};
pub use f1::{best_f1, f1_score};
pub use ldr::ldr;
