//! The workspace's central correctness property: all five PCS query
//! algorithms return exactly the same community set, and every returned
//! community satisfies Problem 1 of the paper.

use pcs::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A reproducible random profiled graph driven by a single seed.
fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Taxonomy of 6..=16 labels.
    let labels = rng.gen_range(6..=16usize);
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..labels {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    // Graph of 8..=26 vertices with density 0.15..0.35.
    let n = rng.gen_range(8..=26usize);
    let p = rng.gen_range(0.15..0.35);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    // Profiles: each vertex picks 0..=6 random labels (closed upward).
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=6usize);
            let picks: Vec<LabelId> =
                (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles)
}

/// Checks Problem 1 for one outcome.
fn check_problem1(
    g: &Graph,
    profiles: &[PTree],
    q: VertexId,
    k: u32,
    communities: &[ProfiledCommunity],
) {
    for c in communities {
        // Connectivity and membership.
        assert!(c.vertices.binary_search(&q).is_ok(), "q missing");
        assert!(
            pcs::graph::components::is_connected_subset(g, &c.vertices),
            "community disconnected"
        );
        // Structure cohesiveness.
        for &v in &c.vertices {
            let deg = g.neighbors(v).iter().filter(|u| c.vertices.binary_search(u).is_ok()).count();
            assert!(deg >= k as usize, "degree bound violated");
        }
        // The reported subtree is the true maximal common subtree.
        let m = PTree::intersect_all(c.vertices.iter().map(|&v| &profiles[v as usize]))
            .expect("non-empty community");
        assert_eq!(m, c.subtree, "reported theme is not M(Gq)");
        // Every member's profile contains the theme.
        for &v in &c.vertices {
            assert!(c.subtree.is_subtree_of(&profiles[v as usize]));
        }
    }
    // Profile cohesiveness: themes pairwise incomparable.
    for a in communities {
        for b in communities {
            if a.subtree != b.subtree {
                assert!(
                    !a.subtree.is_subtree_of(&b.subtree),
                    "theme {:?} subsumed by {:?}",
                    a.subtree,
                    b.subtree
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_return_identical_communities(seed in 0u64..10_000) {
        let (g, tax, profiles) = random_instance(seed);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        let plain = QueryContext::new(&g, &tax, &profiles).unwrap();
        let indexed = QueryContext::new(&g, &tax, &profiles).unwrap().with_index(&index);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        let q = rng.gen_range(0..g.num_vertices() as u32);
        let k = rng.gen_range(0..4u32);

        let reference = plain.query(q, k, Algorithm::Basic).unwrap().communities;
        check_problem1(&g, &profiles, q, k, &reference);
        for algo in [Algorithm::Incre, Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
            let got = indexed.query(q, k, algo).unwrap().communities;
            prop_assert_eq!(
                &reference, &got,
                "algorithm {} disagrees with basic (seed {}, q {}, k {})",
                algo.name(), seed, q, k
            );
        }
    }

    /// The central property extends to *mutated* graphs: after a
    /// random update batch flows through the engine's incremental
    /// maintenance, all five algorithms still return the same
    /// communities, and those communities satisfy Problem 1 on the
    /// post-update graph.
    #[test]
    fn all_algorithms_agree_after_mutation(seed in 0u64..10_000) {
        let (g, tax, profiles) = random_instance(seed);
        let n = g.num_vertices() as u32;
        let engine = PcsEngine::builder()
            .graph(g)
            .taxonomy(tax)
            .profiles(profiles)
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0d1f);
        let mut batch = UpdateBatch::new();
        for _ in 0..rng.gen_range(2..10usize) {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            if rng.gen_bool(0.6) {
                batch = batch.add_edge(a, b);
            } else {
                batch = batch.remove_edge(a, b);
            }
        }
        engine.apply(&batch).unwrap();
        let snap = engine.snapshot();
        let q = rng.gen_range(0..n);
        let k = rng.gen_range(0..4u32);
        let reference = engine
            .query(&QueryRequest::vertex(q).k(k).algorithm(Algorithm::Basic))
            .unwrap();
        check_problem1(snap.graph(), snap.profiles(), q, k, &reference.outcome.communities);
        for algo in [Algorithm::Incre, Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
            let got = engine.query(&QueryRequest::vertex(q).k(k).algorithm(algo)).unwrap();
            prop_assert_eq!(
                &reference.outcome.communities, &got.outcome.communities,
                "algorithm {} disagrees with basic after mutation (seed {}, q {}, k {})",
                algo.name(), seed, q, k
            );
        }
    }

    #[test]
    fn maximal_structure_property(seed in 0u64..3_000) {
        // No strict superset of a returned community is a connected
        // k-core with the same theme: adding any adjacent vertex whose
        // profile contains the theme must break something.
        let (g, tax, profiles) = random_instance(seed);
        let ctx = QueryContext::new(&g, &tax, &profiles).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let q = rng.gen_range(0..g.num_vertices() as u32);
        let k = rng.gen_range(1..3u32);
        let out = ctx.query(q, k, Algorithm::Basic).unwrap();
        for c in &out.communities {
            // Gk[theme] recomputed from scratch must equal the community.
            let cands: Vec<VertexId> = g
                .vertices()
                .filter(|&v| c.subtree.is_subtree_of(&profiles[v as usize]))
                .collect();
            let mut sc = pcs::graph::core::SubsetCore::new(g.num_vertices());
            let full = sc.kcore_component_within(&g, &cands, q, k).unwrap();
            prop_assert_eq!(&full, &c.vertices);
        }
    }
}

#[test]
fn agreement_on_dataset_generator_output() {
    // Beyond uniform-random graphs: the community-structured generator.
    let tax = pcs::datasets::taxonomy::random_taxonomy(120, 5, 8, 3);
    let spec = DatasetSpec::small("agree", 260, 17);
    let ds = pcs::datasets::gen::generate(&spec, tax);
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let plain = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let indexed = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let (queries, level) = pcs::datasets::sample_query_vertices(&ds, 5, 8, 5);
    assert!(!queries.is_empty());
    for &q in &queries {
        let reference = plain.query(q, level, Algorithm::Basic).unwrap().communities;
        check_problem1(&ds.graph, &ds.profiles, q, level, &reference);
        assert!(!reference.is_empty(), "queries come from the {level}-core");
        for algo in [Algorithm::Incre, Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
            let got = indexed.query(q, level, algo).unwrap().communities;
            assert_eq!(reference, got, "q={q} algo={}", algo.name());
        }
    }
}
