//! Case study: organizing a seminar around a renowned expert
//! (the paper's Section 5.2 "Jim Gray" study, Figs. 7-8).
//!
//! A hub author in a synthetic ACMDL-like collaboration network wants
//! to invite groups of researchers who (a) collaborate tightly (k-core)
//! and (b) share research themes. PCS surfaces *several* differently-
//! themed circles; ACQ — which only counts flat shared keywords —
//! collapses to the single largest-keyword-overlap group and misses the
//! alternatives.
//!
//! Run with: `cargo run --release --example seminar_planner`

use pcs::prelude::*;

fn main() {
    // A small ACMDL-like collaboration network.
    let cfg = SuiteConfig { scale: 0.02, ..SuiteConfig::default() };
    let ds = pcs::datasets::suite::build(SuiteDataset::Acmdl, cfg);
    println!(
        "collaboration network: {} authors, {} co-authorships, d̂ = {:.2}, P̂ = {:.2}",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        ds.graph.avg_degree(),
        ds.avg_ptree_size()
    );

    // Hand the dataset to the owned engine; Algorithm::Auto will route
    // the query through adv-P on the lazily built CP-tree index.
    let engine = PcsEngine::builder()
        .graph(ds.graph)
        .taxonomy(ds.tax)
        .profiles(ds.profiles)
        .build()
        .expect("dataset is consistent");
    let snap = engine.snapshot();
    let (g, tax, profiles) = (snap.graph(), engine.taxonomy(), snap.profiles());

    // The "renowned expert": a high-degree vertex with a rich profile,
    // like Jim Gray in the paper.
    let expert = g
        .vertices()
        .max_by_key(|&v| (profiles[v as usize].len(), g.degree(v)))
        .expect("non-empty graph");
    println!(
        "renowned expert: author #{expert} (degree {}, profile of {} CCS subjects)\n",
        g.degree(expert),
        profiles[expert as usize].len()
    );

    let k = 4; // the paper's case-study setting
    let resp = engine.query(&QueryRequest::vertex(expert).k(k)).expect("query in range");
    println!(
        "PCS (k = {k}, {} in {:.1?}) proposes {} seminar circles:",
        resp.algorithm.name(),
        resp.elapsed,
        resp.communities().len()
    );
    for (i, c) in resp.communities().iter().enumerate().take(6) {
        println!(
            "  circle #{}: {} researchers, theme of {} subjects (height {}):",
            i + 1,
            c.vertices.len(),
            c.subtree.len(),
            c.subtree.height(tax),
        );
        for line in c.subtree.render(tax).lines().take(8) {
            println!("      {line}");
        }
    }
    if resp.communities().len() > 6 {
        println!("  … and {} more.", resp.communities().len() - 6);
    }

    let acq = acq_query(g, tax, profiles, expert, k);
    println!(
        "\nACQ proposes {} circle(s) (all maximizing the same flat keyword count of {}).",
        acq.communities.len(),
        acq.keyword_count
    );
    println!(
        "PCS surfaces {} distinct themes vs ACQ's {} — the organizer can now choose.",
        resp.communities().len(),
        acq.communities.len()
    );
}
