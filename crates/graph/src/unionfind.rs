//! Union-find (disjoint set union) with path halving and union by size.
//!
//! The CL-tree construction of Fang et al. (adopted in the PCS paper's
//! CP-tree index) processes vertices in descending core-number order and
//! merges their components with a union-find; the inverse-Ackermann
//! amortized cost is what gives the index its O(m·α(n)) build time.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x` (with path halving).
    #[inline]
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`; returns the new root, or
    /// `None` if they were already in the same set.
    pub fn union(&mut self, a: u32, b: u32) -> Option<u32> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        Some(big)
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(6);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(uf.same(0, 1));
        assert!(uf.same(2, 3));
        assert!(!uf.same(1, 2));
        uf.union(1, 3);
        assert!(uf.same(0, 2));
        assert_eq!(uf.set_size(0), 4);
        assert_eq!(uf.set_size(4), 1);
        assert_eq!(uf.len(), 6);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_same_set_returns_none() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(1, 0).is_none());
    }

    #[test]
    fn chain_find_compresses() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.set_size(42), 100);
    }
}
