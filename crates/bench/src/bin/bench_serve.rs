//! Serving-layer benchmark: a live `pcs-serve` server under a
//! closed-loop zipfian load, reported as `BENCH_serve.json`.
//!
//! The harness builds the DBLP-like suite dataset, generates a mixed
//! read/write workload with [`serve_traffic`] (zipfian vertex
//! popularity, `apply` writes interleaved), then replays it **twice in
//! the same process** — once against a cache-disabled engine, once
//! against an engine with the epoch-keyed result cache on — and
//! reports both runs plus their in-run qps ratio. Per the repo's
//! bench-variance policy, the ratio is the headline (two runs, same
//! container, same workload bytes); the absolute qps are context.
//! Latency percentiles (p50/p99/p999), the server's own counters
//! (shed, batches, dedup, cache, coalesced applies) ride along in the
//! bench-snapshot JSON conventions.
//!
//! ```text
//! cargo run -p pcs-bench --release --bin bench_serve             # full run, writes ./BENCH_serve.json
//! cargo run -p pcs-bench --release --bin bench_serve -- --quick  # CI smoke: tiny run into target/,
//!                                                                # asserts zero 5xx, zero failures,
//!                                                                # and a nonzero in-run cache hit rate
//! ```
//!
//! `--quick` doubles as the CI gate: besides shrinking the run it
//! *asserts* that every request completed without a 5xx — a stalled or
//! panicking server fails the step rather than writing bad numbers —
//! and that the zipfian replay actually hit the result cache.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::updates::StreamOp;
use pcs_datasets::{serve_traffic, ServeOp, SuiteDataset, TrafficSpec};
use pcs_engine::{CacheMode, CacheStatsSnapshot, IndexMode, PcsEngine};
use pcs_serve::{run_load, LoadConfig, LoadOp, LoadReport, PcsServer, ServeConfig, StatsSnapshot};

struct Config {
    quick: bool,
    out_dir: PathBuf,
    scale: f64,
    requests: usize,
    concurrency: usize,
    workers: usize,
    zipf_s: f64,
    write_fraction: f64,
    k: u32,
    seed: u64,
}

impl Config {
    fn parse() -> Config {
        let mut cfg = Config {
            quick: false,
            out_dir: PathBuf::from("."),
            scale: 0.01,
            requests: 2_000,
            concurrency: 4,
            workers: 2,
            zipf_s: 1.1,
            write_fraction: 0.05,
            k: 6,
            seed: 0x5e41e,
        };
        let mut out_dir_given = false;
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut take =
                |what: &str| args.next().unwrap_or_else(|| panic!("{flag} takes {what}"));
            match flag.as_str() {
                "--quick" => cfg.quick = true,
                "--requests" => {
                    cfg.requests = take("a count").parse().expect("--requests takes a count")
                }
                "--concurrency" => {
                    cfg.concurrency = take("a count").parse().expect("--concurrency takes a count")
                }
                "--workers" => {
                    cfg.workers = take("a count").parse().expect("--workers takes a count")
                }
                "--zipf" => cfg.zipf_s = take("a skew").parse().expect("--zipf takes a float"),
                "--write-fraction" => {
                    cfg.write_fraction =
                        take("a fraction").parse().expect("--write-fraction takes a float")
                }
                "--out-dir" => {
                    cfg.out_dir = PathBuf::from(take("a path"));
                    out_dir_given = true;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --quick --requests <n> --concurrency <n> --workers <n> \
                         --zipf <s> --write-fraction <f> --out-dir <dir>"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        if cfg.quick {
            cfg.scale = 0.002;
            cfg.requests = cfg.requests.min(300);
            cfg.concurrency = cfg.concurrency.min(3);
            if !out_dir_given {
                cfg.out_dir = PathBuf::from("target");
            }
        }
        cfg
    }
}

/// Renders one dataset-level op to the wire-level replay op.
fn to_load_op(op: &ServeOp) -> LoadOp {
    match op {
        ServeOp::Query { vertex, k } => LoadOp::Query { vertex: *vertex, k: *k },
        ServeOp::Update(StreamOp::AddEdge(a, b)) => LoadOp::Apply(format!("add {a} {b}\n")),
        ServeOp::Update(StreamOp::RemoveEdge(a, b)) => LoadOp::Apply(format!("remove {a} {b}\n")),
        ServeOp::Update(StreamOp::SetProfile(v, p)) => {
            let mut line = format!("profile {v}");
            for l in p.nodes() {
                let _ = write!(line, " {l}");
            }
            line.push('\n');
            LoadOp::Apply(line)
        }
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn write_snapshot(path: &Path, cfg: &Config, results: &str) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pcs-bench-snapshot/v2\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"dataset\": \"DBLP-like\", \"scale\": {}, \"k\": {}, \
         \"requests\": {}, \"concurrency\": {}, \"workers\": {}, \"zipf_s\": {}, \
         \"write_fraction\": {}, \"quick\": {}}},",
        cfg.scale,
        cfg.k,
        cfg.requests,
        cfg.concurrency,
        cfg.workers,
        cfg.zipf_s,
        cfg.write_fraction,
        cfg.quick
    );
    let _ = writeln!(out, "  \"results\": {results},");
    let _ = writeln!(out, "  \"baseline\": null");
    out.push_str("}\n");
    std::fs::create_dir_all(path.parent().unwrap_or(Path::new("."))).expect("create out dir");
    std::fs::write(path, out).expect("write snapshot file");
    println!("wrote {}", path.display());
}

/// One full server lifecycle: build an engine with `cache`, serve the
/// whole replay, shut down. Returns the load report, the server's
/// final counters, and the engine's cache counters.
fn run_phase(
    cfg: &Config,
    ds: &pcs_datasets::ProfiledDataset,
    ops: &[LoadOp],
    cache: CacheMode,
    label: &str,
) -> (LoadReport, StatsSnapshot, CacheStatsSnapshot) {
    // Eager index + incremental patching: the serving configuration.
    // (Lazy mode would drop shards on every write and make each read
    // re-materialize them — correct, but not what a server deploys.)
    let engine = Arc::new(
        PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Eager)
            .result_cache(cache)
            .build()
            .expect("suite dataset builds"),
    );
    let server_cfg = ServeConfig {
        workers: cfg.workers,
        max_connections: (cfg.concurrency * 4).max(16),
        ..ServeConfig::default()
    };
    let server =
        PcsServer::start(Arc::clone(&engine), "127.0.0.1:0", server_cfg).expect("server starts");
    println!("[{label}] serving on {}", server.local_addr());

    let load_cfg = LoadConfig {
        concurrency: cfg.concurrency,
        read_timeout: Duration::from_secs(30),
        ..LoadConfig::default()
    };
    let report = run_load(server.local_addr(), ops, &load_cfg);
    let stats = server.shutdown();
    let cache_stats = engine.cache_stats();

    println!(
        "[{label}] load: {} ok, {} 4xx, {} 5xx, {} shed-retries, {} failed in {:.2}s → {:.0} qps",
        report.ok,
        report.http_4xx,
        report.http_5xx,
        report.shed_retries,
        report.failed,
        report.elapsed.as_secs_f64(),
        report.qps
    );
    println!(
        "[{label}] read latency us: p50 {} p99 {} p999 {} (n={}); write p50 {} (n={})",
        report.read_latency.p50,
        report.read_latency.p99,
        report.read_latency.p999,
        report.read_latency.samples,
        report.write_latency.p50,
        report.write_latency.samples
    );
    println!(
        "[{label}] server: {} requests over {} connections; {} batches carried {} queries, \
         dedup saved {}, cache answered {}, {} apply groups coalesced {}",
        stats.requests,
        stats.accepted,
        stats.batches,
        stats.batched_requests,
        stats.dedup_saved,
        stats.cache_answered,
        stats.apply_groups,
        stats.apply_coalesced,
    );
    println!(
        "[{label}] cache: {} hits, {} misses, {} evictions (hit rate {:.3})",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.evictions,
        cache_stats.hit_rate()
    );
    (report, stats, cache_stats)
}

/// The quick-gate assertions every phase must satisfy.
fn assert_phase_healthy(label: &str, report: &LoadReport, stats: &StatsSnapshot) {
    assert_eq!(report.http_5xx, 0, "[{label}] server answered 5xx under the smoke load");
    assert_eq!(stats.http_5xx, 0, "[{label}] server counted 5xx responses");
    assert_eq!(stats.internal_errors, 0, "[{label}] server hit internal errors");
    assert_eq!(report.failed, 0, "[{label}] load generator abandoned ops");
    assert_eq!(report.ok + report.http_4xx, report.total, "[{label}] requests went missing");
    assert!(report.read_latency.samples > 0, "[{label}] no read latencies recorded");
}

fn main() {
    let cfg = Config::parse();
    let suite = SuiteConfig { scale: cfg.scale, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Dblp, suite);
    println!(
        "dataset: {} vertices, {} edges (DBLP-like @ scale {})",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        cfg.scale
    );

    // The workload: zipfian reads over the k-core hot set, writes from
    // the update-stream generator, all deterministic in the seed.
    let spec = TrafficSpec {
        requests: cfg.requests,
        zipf_s: cfg.zipf_s,
        write_fraction: cfg.write_fraction,
        k: cfg.k,
        ..TrafficSpec::new(cfg.requests, cfg.seed)
    };
    let ops: Vec<LoadOp> = serve_traffic(&ds, &spec).iter().map(to_load_op).collect();
    let reads = ops.iter().filter(|o| matches!(o, LoadOp::Query { .. })).count();
    println!("workload: {} ops ({} reads, {} writes)", ops.len(), reads, ops.len() - reads);

    // Two identical replays in one process: cache off first (so any
    // page-cache/JIT-ish warmup favors the *baseline*, keeping the
    // reported ratio conservative), then the cached run.
    let (report_off, stats_off, _) = run_phase(&cfg, &ds, &ops, CacheMode::Off, "cache-off");
    let (report, stats, cache_stats) = run_phase(&cfg, &ds, &ops, CacheMode::Wholesale, "cached");
    let cache_qps_ratio = report.qps / report_off.qps.max(1e-9);
    println!(
        "in-run ratio: cached {:.0} qps / cache-off {:.0} qps = {:.2}x (hit rate {:.3})",
        report.qps,
        report_off.qps,
        cache_qps_ratio,
        cache_stats.hit_rate()
    );

    if cfg.quick {
        // The CI gate: a wedged, shedding-forever, or erroring server
        // fails the step here instead of writing useless numbers — and
        // a zipfian replay that never hits the cache means the serving
        // cache path is dead wiring.
        assert_phase_healthy("cache-off", &report_off, &stats_off);
        assert_phase_healthy("cached", &report, &stats);
        assert!(cache_stats.hits > 0, "zipfian replay produced zero cache hits");
        assert!(stats.cache_answered > 0, "the batcher never answered from the cache");
        assert_eq!(
            stats_off.cache_hits + stats_off.cache_misses,
            0,
            "the cache-off engine must not touch cache counters"
        );
        println!(
            "--quick gate: ok ({} requests × 2 phases, zero 5xx, {} cache hits)",
            report.total, cache_stats.hits
        );
    }

    let mut results = String::from("{");
    let mut first = true;
    let mut put = |key: &str, value: String| {
        if !first {
            results.push_str(", ");
        }
        first = false;
        let _ = write!(results, "{}: {value}", json_str(key));
    };
    put("qps", format!("{:.2}", report.qps));
    put("elapsed_s", format!("{:.3}", report.elapsed.as_secs_f64()));
    put("ok", report.ok.to_string());
    put("http_4xx", report.http_4xx.to_string());
    put("http_5xx", report.http_5xx.to_string());
    put("shed_retries", report.shed_retries.to_string());
    put("failed", report.failed.to_string());
    put("read_p50_us", report.read_latency.p50.to_string());
    put("read_p99_us", report.read_latency.p99.to_string());
    put("read_p999_us", report.read_latency.p999.to_string());
    put("read_mean_us", report.read_latency.mean.to_string());
    put("read_samples", report.read_latency.samples.to_string());
    put("write_p50_us", report.write_latency.p50.to_string());
    put("write_p99_us", report.write_latency.p99.to_string());
    put("write_p999_us", report.write_latency.p999.to_string());
    put("write_samples", report.write_latency.samples.to_string());
    put("server_requests", stats.requests.to_string());
    put("server_accepted", stats.accepted.to_string());
    put("server_shed", stats.shed.to_string());
    put("batches", stats.batches.to_string());
    put("batched_requests", stats.batched_requests.to_string());
    put("dedup_saved", stats.dedup_saved.to_string());
    // The cache story: both phases' throughput, the in-run ratio, and
    // the cached phase's hit/miss/eviction counters.
    put("qps_cache_off", format!("{:.2}", report_off.qps));
    put("cache_qps_ratio", format!("{cache_qps_ratio:.3}"));
    put("cache_hits", cache_stats.hits.to_string());
    put("cache_misses", cache_stats.misses.to_string());
    put("cache_evictions", cache_stats.evictions.to_string());
    put("cache_hit_rate", format!("{:.4}", cache_stats.hit_rate()));
    put("cache_answered", stats.cache_answered.to_string());
    put("read_p50_us_cache_off", report_off.read_latency.p50.to_string());
    put("read_p99_us_cache_off", report_off.read_latency.p99.to_string());
    // The write path: group-commit coalescing counters (both phases
    // apply the same writes; report the cached phase's).
    put("apply_groups", stats.apply_groups.to_string());
    put("apply_coalesced", stats.apply_coalesced.to_string());
    put("internal_errors", stats.internal_errors.to_string());
    results.push('}');

    let path =
        cfg.out_dir.join(if cfg.quick { "BENCH_serve.quick.json" } else { "BENCH_serve.json" });
    write_snapshot(&path, &cfg, &results);
}
