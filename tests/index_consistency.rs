//! Cross-crate property tests for the CP-tree index: `get` must agree
//! with a from-scratch computation on arbitrary profiled graphs, and
//! the headMap must restore every profile exactly.

use pcs::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-only sorted-copy shim over the zero-copy `get_ref` (the owned
/// `CpTree::get` wrapper is no longer part of the production surface).
trait GetSorted {
    fn get(&self, k: u32, q: VertexId, label: LabelId) -> Option<Vec<VertexId>>;
}

impl GetSorted for CpTree {
    fn get(&self, k: u32, q: VertexId, label: LabelId) -> Option<Vec<VertexId>> {
        let mut out = self.get_ref(k, q, label)?.to_vec();
        out.sort_unstable();
        Some(out)
    }
}

fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = rng.gen_range(4..=14usize);
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..labels {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    let n = rng.gen_range(6..=22usize);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.3) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=5usize);
            let picks: Vec<LabelId> =
                (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles)
}

/// Drives a lazily sharded index and a monolithic from-scratch rebuild
/// through the same randomized churn, interleaving cold-shard probes
/// with patches, and pins the full query surface set-equal after every
/// effective batch.
fn sharded_matches_monolithic_after_churn(seed: u64) -> Result<(), TestCaseError> {
    use std::sync::Arc;
    let (g, tax, mut profiles) = random_instance(seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a5a);
    let mut dyn_g = DynamicGraph::from_graph(&g);
    let mut idx = ShardedCpIndex::build(Arc::new(g), &tax, Arc::new(profiles.clone()))
        .expect("valid instance");
    let label_ids: Vec<LabelId> = (0..tax.len() as LabelId).collect();
    for step in 0..14 {
        // Cold (or warm) probe between batches: a random label/vertex
        // pair, materializing on demand mid-stream.
        if step % 2 == 0 {
            let label = label_ids[rng.gen_range(0..label_ids.len())];
            let q = rng.gen_range(0..profiles.len() as u32);
            let _ = idx.get_ref(rng.gen_range(0..3), q, label);
        }
        let mut deltas = Vec::new();
        let mut reprofiled: Vec<u32> = Vec::new();
        for _ in 0..rng.gen_range(1..4) {
            let n = profiles.len() as u32;
            match rng.gen_range(0..3) {
                0 => {
                    let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    if a != b && dyn_g.add_edge(a, b).unwrap() {
                        deltas.push(pcs::index::GraphDelta::EdgeAdded { u: a, v: b });
                    }
                }
                1 => {
                    let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    if a != b && dyn_g.remove_edge(a, b).unwrap() {
                        deltas.push(pcs::index::GraphDelta::EdgeRemoved { u: a, v: b });
                    }
                }
                _ => {
                    let v = rng.gen_range(0..n);
                    if reprofiled.contains(&v) {
                        continue;
                    }
                    let count = rng.gen_range(0..=4usize);
                    let picks: Vec<LabelId> =
                        (0..count).map(|_| label_ids[rng.gen_range(0..label_ids.len())]).collect();
                    let p = PTree::from_labels(&tax, picks).unwrap();
                    if p != profiles[v as usize] {
                        profiles[v as usize] = p;
                        reprofiled.push(v);
                        deltas.push(pcs::index::GraphDelta::ProfileChanged { v });
                    }
                }
            }
        }
        if deltas.is_empty() {
            continue;
        }
        let g_after = Arc::new(dyn_g.to_graph());
        let stats = idx.apply_batch(&g_after, &Arc::new(profiles.clone()), &deltas, None, 2);
        prop_assert_eq!(
            stats.labels_rebuilt + stats.labels_skipped + stats.labels_invalidated,
            stats.labels_touched,
            "patch accounting must cover every touched label"
        );
        let fresh = CpTree::build(&g_after, &tax, &profiles).unwrap();
        let sorted = |s: Option<&[VertexId]>| {
            s.map(|s| {
                let mut v = s.to_vec();
                v.sort_unstable();
                v
            })
        };
        for label in 0..tax.len() as u32 {
            prop_assert_eq!(
                idx.vertices_with_label(label),
                fresh.vertices_with_label(label),
                "members of label {}",
                label
            );
            for q in 0..profiles.len() as u32 {
                for k in 0..3u32 {
                    prop_assert_eq!(
                        sorted(idx.get_ref(k, q, label)),
                        sorted(fresh.get_ref(k, q, label)),
                        "label={} q={} k={}",
                        label,
                        q,
                        k
                    );
                }
            }
        }
        for v in 0..profiles.len() as u32 {
            prop_assert_eq!(&idx.restore_ptree(&tax, v), &profiles[v as usize]);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cptree_get_matches_scratch_computation(seed in 0u64..10_000) {
        let (g, tax, profiles) = random_instance(seed);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        let mut sc = pcs::graph::core::SubsetCore::new(g.num_vertices());
        for label in 0..tax.len() as u32 {
            let with_label: Vec<VertexId> = g
                .vertices()
                .filter(|&v| profiles[v as usize].contains(label))
                .collect();
            prop_assert_eq!(index.vertices_with_label(label), &with_label[..]);
            for q in g.vertices() {
                for k in 0..3u32 {
                    let expect = sc.kcore_component_within(&g, &with_label, q, k);
                    prop_assert_eq!(
                        index.get(k, q, label), expect,
                        "label={} q={} k={}", label, q, k
                    );
                }
            }
        }
    }

    #[test]
    fn headmap_restores_every_profile(seed in 0u64..10_000) {
        let (g, tax, profiles) = random_instance(seed);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(&index.restore_ptree(&tax, v), &profiles[v as usize]);
        }
    }

    #[test]
    fn sharded_lazy_index_stays_set_equal_to_monolithic_rebuild(seed in 0u64..10_000) {
        sharded_matches_monolithic_after_churn(seed)?;
    }

    #[test]
    fn label_cores_nest_along_taxonomy(seed in 0u64..10_000) {
        // I.get(k,q,child) ⊆ I.get(k,q,parent): the containment chain
        // verifyPtree exploits.
        let (g, tax, profiles) = random_instance(seed);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        for label in 1..tax.len() as u32 {
            let parent = tax.parent(label);
            for q in g.vertices() {
                for k in 0..3u32 {
                    if let Some(child_core) = index.get(k, q, label) {
                        let parent_core = index.get(k, q, parent)
                            .expect("ancestor label held by a superset of vertices");
                        for v in &child_core {
                            prop_assert!(parent_core.binary_search(v).is_ok());
                        }
                    }
                }
            }
        }
    }
}
