//! Figs. 7-8: the case study ("Jim Gray", k = 4).
//!
//! Picks the hub author of the ACMDL-like network and shows that PCS
//! surfaces at least two differently-themed communities while ACQ
//! returns only the single largest-keyword-overlap one. Prints the
//! themes so the shape contrast (few branches vs many) is visible.

use pcs_baselines::acq_query;
use pcs_bench::parse_args;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::SuiteDataset;
use pcs_engine::{PcsEngine, QueryRequest};

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    let ds = build(SuiteDataset::Acmdl, cfg);
    let engine = PcsEngine::builder()
        .graph(ds.graph)
        .taxonomy(ds.tax)
        .profiles(ds.profiles)
        .build()
        .expect("consistent dataset");
    let snap = engine.snapshot();
    let (g, tax, profiles) = (snap.graph(), engine.taxonomy(), snap.profiles());

    // The renowned expert: rich profile + high degree.
    let expert = g
        .vertices()
        .max_by_key(|&v| (profiles[v as usize].len(), g.degree(v)))
        .expect("non-empty graph");
    let k = 4;
    println!(
        "Case study (Figs. 7-8): expert = vertex {expert}, degree {}, |T(q)| = {}, k = {k}\n",
        g.degree(expert),
        profiles[expert as usize].len()
    );

    let pcs = engine.query(&QueryRequest::vertex(expert).k(k)).expect("query in range");
    println!("PCS returns {} communities:", pcs.communities().len());
    for (i, c) in pcs.communities().iter().enumerate().take(4) {
        println!(
            "\nPC{} — {} members, theme ({} labels, {} branches at depth 1):",
            i + 1,
            c.vertices.len(),
            c.subtree.len(),
            c.subtree.nodes_at_depth(tax, 1).len()
        );
        for line in c.subtree.render(tax).lines().take(10) {
            println!("    {line}");
        }
    }

    let acq = acq_query(g, tax, profiles, expert, k);
    println!(
        "\nACQ returns {} community/ies, all sharing exactly {} keywords.",
        acq.communities.len(),
        acq.keyword_count
    );
    let missed = pcs.communities().len().saturating_sub(acq.communities.len());
    println!(
        "PCS surfaces {missed} additional themed communit{} that ACQ's flat keyword",
        if missed == 1 { "y" } else { "ies" }
    );
    println!("count cannot rank — the paper's Fig. 8 phenomenon.");
}
