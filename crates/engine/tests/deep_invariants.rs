//! Mutation-style negative tests for the `debug-invariants` deep
//! verifier: each test seeds exactly one corruption class through the
//! feature-gated hooks and asserts `PcsEngine::verify_deep` names it.
//! A verifier that cannot catch planted corruption is worse than none
//! — these tests are the zero-false-negative proof.
#![cfg(feature = "debug-invariants")]

use pcs_engine::{IndexMode, PcsEngine};
use pcs_graph::Graph;
use pcs_index::ClTree;
use pcs_ptree::{PTree, Taxonomy};

/// Triangle {0,1,2} with a tail 2–3–4; taxonomy r → {a, b}, a → c.
fn parts() -> (Graph, Taxonomy, Vec<PTree>) {
    let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap();
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(Taxonomy::ROOT, "b").unwrap();
    let c = tax.add_child(a, "c").unwrap();
    let profiles = vec![
        PTree::from_labels(&tax, [c]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [a, b]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
    ];
    (g, tax, profiles)
}

fn eager_engine() -> PcsEngine {
    let (g, tax, profiles) = parts();
    PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap()
}

fn expect_violation(engine: &PcsEngine, needle: &str) {
    let err = engine.verify_deep().expect_err("planted corruption must be detected");
    assert!(err.contains(needle), "diagnostic {err:?} does not mention {needle:?}");
}

#[test]
fn clean_engine_passes_at_every_epoch() {
    let engine = eager_engine();
    engine.verify_deep().unwrap();
    engine.add_edge(1, 3).unwrap();
    engine.verify_deep().unwrap();
    engine.remove_edge(0, 1).unwrap();
    engine.verify_deep().unwrap();
    let tax = engine.taxonomy().clone();
    let p = PTree::from_labels(&tax, [tax.id_of("b").unwrap()]).unwrap();
    engine.update_profile(0, p).unwrap();
    engine.verify_deep().unwrap();
    // Lazily indexed engines verify too, before and after warm-up.
    let (g, tax, profiles) = parts();
    let lazy = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Lazy)
        .build()
        .unwrap();
    lazy.verify_deep().unwrap();
    lazy.warm().unwrap();
    lazy.verify_deep().unwrap();
}

/// A lazily *loaded* engine (file-backed, deferred GRAPH/PROFILES
/// decode) also survives the deep verifier — both straight after the
/// first query and once fully warmed. The verifier materializes every
/// deferred section itself, so this doubles as an end-to-end checksum
/// sweep of the whole snapshot.
#[test]
fn lazily_loaded_engine_verifies_after_first_touch() {
    let engine = eager_engine();
    let path = std::env::temp_dir().join(format!("pcs-deepverify-{}.snapshot", std::process::id()));
    engine.save(&path).unwrap();
    let loaded = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path).unwrap();
    loaded.query(&pcs_engine::QueryRequest::vertex(0).k(2)).unwrap();
    loaded.verify_deep().unwrap();
    loaded.warm().unwrap();
    loaded.verify_deep().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn detects_asymmetric_csr() {
    let engine = eager_engine();
    // Vertex 0 lists 1 as a neighbor; 1 does not list 0 back.
    let half = Graph::from_csr_unvalidated_for_test(vec![0, 1, 1, 1, 1, 1], vec![1]);
    engine.corrupt_graph_for_test(half);
    expect_violation(&engine, "CSR invariant broken");
}

#[test]
fn detects_unsorted_adjacency() {
    let engine = eager_engine();
    // Symmetric 0–1, 0–2 but vertex 0's list is out of order.
    let bad = Graph::from_csr_unvalidated_for_test(vec![0, 2, 3, 4, 4, 4], vec![2, 1, 0, 0]);
    engine.corrupt_graph_for_test(bad);
    expect_violation(&engine, "CSR invariant broken");
}

#[test]
fn detects_core_number_above_degree() {
    let engine = eager_engine();
    engine.snapshot().cores(); // make sure the cell is populated
                               // Vertex 4 has degree 1; claim core 3.
    engine.corrupt_cores_for_test(vec![2, 2, 2, 1, 3]);
    expect_violation(&engine, "exceeds its degree");
}

#[test]
fn detects_kcore_closure_violation() {
    let engine = eager_engine();
    // Vertex 3 has degree 2 (neighbors 2 and 4), so core 2 passes the
    // degree check — but only vertex 2 sits at level ≥ 2, so the
    // closure count 1 < 2 convicts the forgery.
    engine.corrupt_cores_for_test(vec![2, 2, 2, 2, 1]);
    expect_violation(&engine, "k-core closure violated");
}

#[test]
fn detects_non_ancestor_closed_profile() {
    let engine = eager_engine();
    let mut profiles = engine.snapshot().profiles().to_vec();
    // Label 3 ("c") without its parent 1 ("a"): upward closure broken.
    profiles[0] = PTree::from_nodes_unchecked_for_test(vec![0, 3]);
    engine.corrupt_profiles_for_test(profiles);
    expect_violation(&engine, "not ancestor-closed");
}

#[test]
fn detects_member_table_profile_mismatch() {
    let engine = eager_engine();
    // Desynchronize from the index side: empty out label 1's table.
    assert!(engine.corrupt_index_for_test(|idx| idx.tamper_member_table_for_test(1, Vec::new())));
    expect_violation(&engine, "disagrees with the profiles");

    // ... and from the snapshot side: publish different profiles while
    // keeping the index built against the old ones.
    let engine = eager_engine();
    let tax = engine.taxonomy().clone();
    let mut profiles = engine.snapshot().profiles().to_vec();
    profiles[1] = PTree::from_labels(&tax, [tax.id_of("b").unwrap()]).unwrap();
    engine.corrupt_profiles_for_test(profiles);
    expect_violation(&engine, "disagrees with the profiles");
}

#[test]
fn detects_shard_member_list_divergence() {
    let engine = eager_engine();
    let snap = engine.snapshot();
    let g = snap.graph().clone();
    drop(snap);
    // A structurally valid CL-tree over the wrong member set.
    let stray = ClTree::build_on_subset(&g, &[0]);
    assert!(engine.corrupt_index_for_test(|idx| idx.replace_shard_for_test(1, stray)));
    expect_violation(&engine, "diverged from the member table");
}

#[test]
fn detects_arena_geometry_lie() {
    let engine = eager_engine();
    let snap = engine.snapshot();
    let shard = snap.index().unwrap().shard_if_resident(1).expect("eager index is resident");
    let mut flat = shard.cl.to_flat();
    drop(snap);
    // Claim one more own vertex than the subtree range holds.
    flat.own_len[0] = flat.sub_len[0] + 1;
    let lying = ClTree::from_flat_unchecked_for_test(flat);
    assert!(engine.corrupt_index_for_test(|idx| idx.replace_shard_for_test(1, lying)));
    expect_violation(&engine, "fails structural validation");
}

#[test]
fn detects_epoch_regression() {
    let engine = eager_engine();
    engine.add_edge(1, 3).unwrap();
    assert_eq!(engine.epoch(), 1);
    engine.verify_deep().unwrap(); // high-water mark now 1
    engine.corrupt_epoch_for_test(0);
    expect_violation(&engine, "epoch regression");
}
