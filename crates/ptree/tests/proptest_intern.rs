//! Property tests for the [`SubtreeInterner`]: on random taxonomies,
//! the id-space lattice must round-trip through owned [`Subtree`]s and
//! agree with the naive set operations everywhere.

use pcs_ptree::enumerate::enumerate_rooted_subtrees;
use pcs_ptree::{PTree, QuerySpace, Subtree, SubtreeIdSet, SubtreeInterner, Taxonomy};
use proptest::prelude::*;

/// Strategy: a random taxonomy of up to 13 labels plus a label pick
/// for the query profile.
fn instance() -> impl Strategy<Value = (Vec<u32>, Vec<u16>)> {
    (proptest::collection::vec(any::<u32>(), 0..12), proptest::collection::vec(any::<u16>(), 0..8))
}

fn build(parents: &[u32]) -> Taxonomy {
    let mut tax = Taxonomy::new("r");
    for (i, &p) in parents.iter().enumerate() {
        let parent = p % (i as u32 + 1);
        tax.add_child(parent, &format!("n{}", i + 1)).unwrap();
    }
    tax
}

fn space_of(tax: &Taxonomy, raw: &[u16]) -> QuerySpace {
    let labels = raw.iter().map(|&r| r as u32 % tax.len() as u32);
    let tq = PTree::from_labels(tax, labels).unwrap();
    QuerySpace::new(tax, &tq).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interning is injective and stable: every valid subtree gets one
    /// dense id, and `subtree(intern(s)) == s`.
    #[test]
    fn interner_roundtrips((parents, raw) in instance()) {
        let tax = build(&parents);
        let space = space_of(&tax, &raw);
        let mut it = SubtreeInterner::new(&space);
        let all = enumerate_rooted_subtrees(&space);
        let mut ids = Vec::new();
        for s in &all {
            let id = it.intern(s);
            prop_assert_eq!(&it.subtree(id), s);
            prop_assert_eq!(it.intern(s), id, "re-interning must be stable");
            ids.push(id);
        }
        // Dense and distinct.
        let mut seen = SubtreeIdSet::new();
        for &id in &ids {
            prop_assert!(id.index() < it.num_interned());
            prop_assert!(seen.insert(id), "two subtrees shared an id");
        }
        prop_assert_eq!(it.num_interned(), all.len());
    }

    /// The ±one-node id moves and the move generators agree with the
    /// naive owned `Subtree` operations on every valid subtree.
    #[test]
    fn id_ops_agree_with_owned_ops((parents, raw) in instance()) {
        let tax = build(&parents);
        let space = space_of(&tax, &raw);
        let mut it = SubtreeInterner::new(&space);
        let all = enumerate_rooted_subtrees(&space);
        let mut buf = Vec::new();
        for s in &all {
            let id = it.intern(s);
            prop_assert_eq!(it.count(id) as usize, s.count());
            prop_assert_eq!(it.max_pos(id), s.max_pos());
            prop_assert_eq!(
                it.positions(id).collect::<Vec<_>>(),
                s.positions().collect::<Vec<_>>()
            );
            // Move generators.
            it.rightmost_extensions_into(id, &mut buf);
            prop_assert_eq!(&buf, &space.rightmost_extensions(s));
            it.lattice_children_into(id, &mut buf);
            prop_assert_eq!(&buf, &space.lattice_children(s));
            it.lattice_parents_into(id, &mut buf);
            prop_assert_eq!(&buf, &space.lattice_parents(s));
            it.leaves_into(id, &mut buf);
            prop_assert_eq!(&buf, &space.leaves(s));
            // with/without (twice: second call exercises the cache).
            it.lattice_children_into(id, &mut buf);
            let children = buf.clone();
            for p in children {
                let grown = it.with(id, p);
                prop_assert_eq!(it.subtree(grown), s.with(p));
                prop_assert_eq!(it.with(id, p), grown);
                prop_assert_eq!(it.without(grown, p), id);
                prop_assert!(it.is_subset(id, grown));
                prop_assert!(!it.is_subset(grown, id));
            }
        }
    }

    /// `union` in id space equals the owned bitset union on random
    /// subtree pairs.
    #[test]
    fn union_agrees((parents, raw) in instance(), pick in any::<u64>()) {
        let tax = build(&parents);
        let space = space_of(&tax, &raw);
        let all = enumerate_rooted_subtrees(&space);
        let a: &Subtree = &all[(pick % all.len() as u64) as usize];
        let b: &Subtree = &all[((pick >> 16) % all.len() as u64) as usize];
        let mut it = SubtreeInterner::new(&space);
        let (ia, ib) = (it.intern(a), it.intern(b));
        let u = it.union(ia, ib);
        prop_assert_eq!(it.subtree(u), a.union(b));
        // Subset test matches containment of the owned trees.
        prop_assert_eq!(it.is_subset(ia, ib), a.is_subset_of(b));
    }
}
