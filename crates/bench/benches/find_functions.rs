//! Criterion bench: initial-cut strategies (Fig. 14(q-t) companion).
//!
//! Isolates the `find-I` / `find-D` / `find-P` seeding step of the
//! advanced methods; the paper reports `find-P`/`find-D` 10-100x faster
//! than `find-I`.

use criterion::{criterion_group, criterion_main, Criterion};
use pcs_core::advanced::{find_cut, FindStrategy};
use pcs_core::{QueryContext, Verifier};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_index::CpTree;

fn bench_find_functions(c: &mut Criterion) {
    let cfg = SuiteConfig { scale: 0.01, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Acmdl, cfg);
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let (queries, _) = sample_query_vertices(&ds, 6, 10, 0x14f);

    let mut group = c.benchmark_group("fig14_find_functions");
    group.sample_size(10);
    for strategy in FindStrategy::ALL {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                for &q in &queries {
                    let space = ctx.space_for(q).unwrap();
                    let mut ver = Verifier::new(&ctx, &space, q, 6);
                    if ver.gk().is_some() {
                        let cut = find_cut(&mut ver, strategy);
                        criterion::black_box(ver.ids().count(cut.feasible));
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_find_functions);
criterion_main!(benches);
