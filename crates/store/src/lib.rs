//! # pcs-store — versioned on-disk engine snapshots
//!
//! The offline cost of profiled community search (CP-tree construction,
//! core decomposition) is the price the paper pays *once* so every
//! online query is cheap — but paying it again on every process start
//! is untenable for a serving system. This crate persists the whole
//! engine state as one **versioned, checksummed binary snapshot** so a
//! replica warm-starts by validating and bulk-copying flat arrays
//! instead of rebuilding indexes:
//!
//! * [`SnapshotFile`] — the container: magic + format version + section
//!   table, one xxHash64 checksum per section (and one for the table),
//!   little-endian, hand-rolled, zero external dependencies.
//! * [`codec`] — section encodings for the CSR graph, taxonomy,
//!   P-trees, core numbers, and the CP-tree's flat DFS arenas; every
//!   decode re-validates structure *and* cross-section agreement.
//! * [`StoreError`] — one typed error for every way a file can be
//!   wrong: truncation, bit flips, version skew, length overflows,
//!   structural corruption. Corrupt input can never panic, hang, or
//!   yield a silently wrong engine.
//! * [`wal`] — the write-ahead log that closes the gap *between*
//!   snapshots: segmented, epoch-stamped, checksummed update records
//!   with group commit on the append side and torn-tail truncation on
//!   recovery, under the same typed-error contract.
//!
//! ## Trust model
//!
//! Three independent guarantees, from strongest to writer-trusted:
//! **integrity** — any damage to a written file (bit flips,
//! truncation, length lies) is caught by the checksums; **structural
//! soundness** — even a file an adversary *re-checksummed* decodes
//! into well-formed values only (CSR invariants, taxonomy shape,
//! P-tree closure, laminar CL-tree arenas), so no input can hang a
//! traversal or return a malformed community; **semantic fidelity** —
//! that the persisted cores/index actually describe the persisted
//! graph is the writer's contract, spot-checked on load by the cheap
//! cross-section pins (counts, `core ≤ degree`, `headMap` ⇔ profiles)
//! but not re-derived. Snapshots are a warm-start mechanism, not an
//! authentication boundary: only load files you (transitively) wrote.
//!
//! Applications normally reach this crate through
//! `pcs_engine::PcsEngine::save` / `EngineBuilder::load`; the types
//! here are the layer underneath (and the integration surface for
//! external tooling that inspects snapshots).
//!
//! ## Versioning and compatibility
//!
//! A reader accepts exactly the [`FORMAT_VERSION`]s it knows how to
//! decode; newer files fail fast with
//! [`StoreError::UnsupportedVersion`] instead of guessing. Adding new
//! *sections* is backward-compatible (unknown ids are preserved by the
//! container and ignored by the codec); changing the layout of an
//! existing section requires a version bump.

#![deny(unsafe_code)]

pub mod codec;
#[doc(hidden)]
pub mod faults;
pub mod format;
pub mod lazy;
pub mod source;
pub mod wal;

pub use codec::{
    decode_snapshot, decode_snapshot_bytes, decode_snapshot_bytes_mode, decode_snapshot_bytes_with,
    decode_snapshot_mode, decode_snapshot_with, encode_snapshot, encode_snapshot_v1,
    member_sum_seed, parse_profile_chunk, profile_chunk_seed, section, shard_sum_seed,
    write_snapshot, DecodedIndex, DecodedShards, IndexDecode, LazyShardStore, ProfileChunkDir,
    SectionSource, SnapshotContents, PROFILE_CHUNK,
};
pub use lazy::{open_lazy, FaultCell, LazyIndexParts, LazyProfileStore, LazySnapshot};
pub use source::FileSnapshot;

pub use format::{
    xxh64, Result, SectionReader, SectionSink, SectionWriter, SnapshotFile, SnapshotSlices,
    SnapshotWriter, StoreError, Xxh64, FORMAT_VERSION, MAGIC, MAX_SECTIONS, MIN_FORMAT_VERSION,
    SECTION_TABLE,
};
pub use wal::{
    decode_frames, encode_record, encode_records, list_segments, read_records, read_records_since,
    FrameScan, SegmentInfo, Wal, WalOptions, WalRecord, WalReplay, WalStats, WalTail, WalTicket,
    MAX_RECORD_LEN, WAL_MAGIC, WAL_SECTION, WAL_VERSION,
};
