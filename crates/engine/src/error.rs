//! The unified error type of the serving facade.

use crate::update::UpdateError;
use pcs_core::PcsError;
use pcs_index::IndexError;
use pcs_store::StoreError;
use std::fmt;

/// Everything that can go wrong building or querying a
/// [`PcsEngine`](crate::PcsEngine), unified under one
/// [`std::error::Error`] so server handlers propagate a single type.
///
/// # Stability
///
/// The enum is `#[non_exhaustive]`: new failure modes (e.g. future
/// persistence or sharding errors) will be added as new variants in
/// minor releases without a semver break. Always keep a `_` arm when
/// matching, and prefer [`std::error::Error::source`] over matching
/// when you only need the causal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The builder's one-time validation rejected the inputs.
    Build(BuildError),
    /// A query failed inside the core algorithm layer.
    Query(PcsError),
    /// CP-tree construction failed.
    Index(IndexError),
    /// An index-dependent algorithm was requested on an engine built
    /// with [`IndexMode::Disabled`](crate::IndexMode::Disabled).
    IndexDisabled {
        /// Display name of the algorithm that needed the index.
        algorithm: &'static str,
    },
    /// An [`UpdateBatch`](crate::UpdateBatch) failed validation; the
    /// engine state is unchanged.
    Update(UpdateError),
    /// Saving or loading an on-disk snapshot failed
    /// ([`PcsEngine::save`](crate::PcsEngine::save) /
    /// [`EngineBuilder::load`](crate::EngineBuilder::load)); the file
    /// was rejected before any engine state was adopted.
    Store(StoreError),
    /// A durability-only operation
    /// ([`PcsEngine::checkpoint`](crate::PcsEngine::checkpoint),
    /// [`PcsEngine::wal_tail_since`](crate::PcsEngine::wal_tail_since))
    /// was called on an engine that was not opened with
    /// [`EngineBuilder::durable`](crate::EngineBuilder::durable).
    NotDurable,
    /// An internal invariant of the serving machinery was violated —
    /// e.g. a batch dispatcher produced fewer results than requests, or
    /// a coalesced write group lost its leader. Never the client's
    /// fault: protocol layers must map this to a 5xx, not a 4xx.
    Internal {
        /// The subsystem that broke its invariant (stable tag, e.g.
        /// `"batch-dispatch"`).
        component: &'static str,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Build(e) => write!(f, "engine build failed: {e}"),
            Error::Query(e) => write!(f, "query failed: {e}"),
            Error::Index(e) => write!(f, "index construction failed: {e}"),
            Error::IndexDisabled { algorithm } => write!(
                f,
                "algorithm {algorithm} needs the CP-tree index, but this engine was \
                 built with IndexMode::Disabled"
            ),
            Error::Update(e) => write!(f, "update rejected: {e}"),
            Error::Store(e) => write!(f, "snapshot store failed: {e}"),
            Error::NotDurable => write!(
                f,
                "this engine has no durable directory; open it with \
                 EngineBuilder::durable(dir) first"
            ),
            Error::Internal { component, detail } => {
                write!(f, "internal error in {component}: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Build(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::Index(e) => Some(e),
            Error::Update(e) => Some(e),
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<PcsError> for Error {
    fn from(e: PcsError) -> Self {
        // An index error surfaced through the query layer is still an
        // index error to callers.
        match e {
            PcsError::Index(inner) => Error::Index(inner),
            other => Error::Query(other),
        }
    }
}

impl From<IndexError> for Error {
    fn from(e: IndexError) -> Self {
        Error::Index(e)
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

impl From<UpdateError> for Error {
    fn from(e: UpdateError) -> Self {
        Error::Update(e)
    }
}

/// Validation failures raised by
/// [`EngineBuilder::build`](crate::EngineBuilder::build).
///
/// Also `#[non_exhaustive]`; see [`Error`] for the stability policy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// No graph was supplied.
    MissingGraph,
    /// No taxonomy was supplied.
    MissingTaxonomy,
    /// The number of profiles differs from the number of vertices.
    ProfileCountMismatch {
        /// Vertices in the graph.
        vertices: usize,
        /// Profiles supplied.
        profiles: usize,
    },
    /// A profile references a label outside the taxonomy or is not
    /// ancestor-closed.
    InvalidProfile {
        /// The vertex whose profile failed validation.
        vertex: u32,
    },
    /// The supplied graph violates a CSR structural invariant
    /// (self-loop, duplicate edge, asymmetric or unsorted adjacency).
    /// Graphs built through [`pcs_graph::Graph::from_edges`] are always
    /// canonical; this guards foreign layouts adopted via
    /// [`pcs_graph::Graph::from_csr`]-style paths so corruption is
    /// rejected at build time instead of being silently indexed.
    MalformedGraph {
        /// Description of the violated invariant.
        detail: String,
    },
    /// [`EngineBuilder::load`](crate::EngineBuilder::load) was called
    /// on a builder that already holds a graph, taxonomy, or profiles —
    /// a snapshot supplies all three, so mixing them is almost
    /// certainly a bug (which inputs did the caller mean?).
    DataWithSnapshot,
    /// [`EngineBuilder::open`](crate::EngineBuilder::open) was called
    /// without [`durable`](crate::EngineBuilder::durable) naming the
    /// directory to recover from.
    MissingDurableDir,
    /// [`EngineBuilder::build`](crate::EngineBuilder::build) with
    /// [`durable`](crate::EngineBuilder::durable) targeted a directory
    /// that already holds a snapshot or WAL segments. A fresh build
    /// would shadow that state; use
    /// [`open`](crate::EngineBuilder::open) to recover it instead (or
    /// point the builder at an empty directory).
    DurableDirNotEmpty {
        /// The conflicting directory.
        dir: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingGraph => write!(f, "no graph supplied (call .graph(..))"),
            BuildError::MissingTaxonomy => {
                write!(f, "no taxonomy supplied (call .taxonomy(..))")
            }
            BuildError::ProfileCountMismatch { vertices, profiles } => {
                write!(f, "graph has {vertices} vertices but {profiles} profiles were supplied")
            }
            BuildError::InvalidProfile { vertex } => {
                write!(f, "profile of vertex {vertex} is not a valid subtree of the taxonomy")
            }
            BuildError::MalformedGraph { detail } => {
                write!(f, "graph failed structural validation: {detail}")
            }
            BuildError::DataWithSnapshot => write!(
                f,
                "builder already holds graph/taxonomy/profiles; a snapshot supplies all \
                 three — use a fresh builder (configuration methods are fine) with .load(..)"
            ),
            BuildError::MissingDurableDir => {
                write!(f, "no durable directory configured (call .durable(dir) before .open())")
            }
            BuildError::DurableDirNotEmpty { dir } => write!(
                f,
                "durable directory {dir} already holds a snapshot or WAL segments; \
                 use .open() to recover it instead of .build()"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
