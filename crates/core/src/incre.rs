//! Algorithm 3 — the `incre` query.
//!
//! Same Apriori-style bottom-up enumeration as `basic`, but every
//! verification narrows the parent's community instead of starting from
//! `Gk`: by Lemma 3, `Gk[T] ⊆ Gk[T'] ∩ I.get(k, q, T \ T')`, so the
//! localized peel runs on candidates already restricted by both the
//! parent subtree and the freshly added label's k-ĉore from the CP-tree
//! index.

use std::rc::Rc;

use pcs_graph::VertexId;
use pcs_ptree::SubtreeId;

use crate::problem::{PcsOutcome, QueryContext};
use crate::verify::{QueryScratch, Verifier};
use crate::Result;

/// Runs Algorithm 3 for `(q, k)` on one-shot scratch. Requires an
/// index in the context.
pub fn query(ctx: &QueryContext<'_>, q: VertexId, k: u32) -> Result<PcsOutcome> {
    query_scratch(ctx, q, k, &mut QueryScratch::new(ctx.graph.num_vertices()))
}

/// Runs Algorithm 3 on pooled scratch (the engine hot path).
pub fn query_scratch(
    ctx: &QueryContext<'_>,
    q: VertexId,
    k: u32,
    scratch: &mut QueryScratch,
) -> Result<PcsOutcome> {
    debug_assert!(ctx.index.is_some(), "checked by QueryContext::query");
    let space = ctx.space_for(q)?;
    let ver = Verifier::with_scratch(ctx, &space, q, k, scratch);
    Ok(run(ver))
}

fn run(mut ver: Verifier<'_>) -> PcsOutcome {
    let mut results: Vec<(SubtreeId, Rc<Vec<VertexId>>)> = Vec::new();

    if let Some(gk) = ver.gk() {
        // Line 3: Ψ initialized with the root-only subtree whose
        // community is Gk itself.
        let root = ver.ids_mut().root_only();
        let mut stack: Vec<(SubtreeId, Rc<Vec<VertexId>>)> = vec![(root, gk)];
        ver.note_generated(1);
        let mut ext: Vec<u32> = Vec::new();
        // Lines 4-11.
        while let Some((t_prime, community)) = stack.pop() {
            let mut flag = true;
            ver.ids().rightmost_extensions_into(t_prime, &mut ext);
            ver.note_generated(ext.len() as u64);
            for &pos in &ext {
                let t = ver.ids_mut().with(t_prime, pos);
                // Line 8: Gk[T] from Gk[T'] ∩ I.get(k, q, T\T').
                if let Some(sub) = ver.verify_from_base_id(t, &community, pos) {
                    flag = false;
                    stack.push((t, sub));
                }
            }
            if flag && ver.is_maximal_feasible_id(t_prime) {
                results.push((t_prime, community));
            }
        }
    }
    crate::basic::assemble(results, ver)
}

#[cfg(test)]
mod tests {
    use crate::problem::{Algorithm, QueryContext};
    use pcs_graph::Graph;
    use pcs_index::CpTree;
    use pcs_ptree::{PTree, Taxonomy};

    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (g, t, profiles)
    }

    #[test]
    fn incre_equals_basic_on_paper_example() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let plain = QueryContext::new(&g, &t, &profiles).unwrap();
        let indexed = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        for q in 0..8u32 {
            for k in 0..=3u32 {
                let a = plain.query(q, k, Algorithm::Basic).unwrap();
                let b = indexed.query(q, k, Algorithm::Incre).unwrap();
                assert_eq!(a.communities, b.communities, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn incre_paper_example_communities() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let out = ctx.query(3, 2, Algorithm::Incre).unwrap();
        let sets: Vec<Vec<u32>> = out.communities.iter().map(|c| c.vertices.clone()).collect();
        assert!(sets.contains(&vec![1, 2, 3]));
        assert!(sets.contains(&vec![0, 3, 4]));
    }

    #[test]
    fn incre_restores_tq_from_headmap() {
        // Even though the context also has the raw profiles, incre's
        // space comes from the index headMap — they must agree.
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        for q in 0..8u32 {
            let space = ctx.space_for(q).unwrap();
            assert_eq!(space.len(), profiles[q as usize].len());
        }
    }
}
