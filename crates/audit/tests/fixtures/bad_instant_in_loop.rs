// Fixture: a clock read inside a per-item loop. The `use` mention and
// any Instant outside a loop body are fine; only the in-loop call is a
// finding.

use std::time::Instant;

fn probe(items: &[u32]) -> u128 {
    let start = Instant::now();
    let mut total = start.elapsed().as_nanos();
    for _ in items {
        let t = Instant::now();
        total += t.elapsed().as_nanos();
    }
    total
}
