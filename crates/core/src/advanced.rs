//! Algorithms 4–8 — the `advanced` methods.
//!
//! Instead of sweeping the subtree lattice bottom-up, the advanced
//! methods adapt MARGIN (Thomas et al., maximal frequent subgraph
//! mining) to PCS: find one **initial cut** — a pair `(IF, F)` where
//! `F` is feasible and `IF = F + one node` is not — then walk the
//! feasible/infeasible boundary with `expandPtree` (Algorithm 4),
//! recording every feasible subtree that proves maximal. Because
//! maximal feasible subtrees lie *on* the boundary (Table 3 shows they
//! cluster in the middle of the lattice), only a small fraction of the
//! search space is ever verified.
//!
//! Three seeding strategies match the paper's `find-I` (Algorithm 5),
//! `find-D` (Algorithm 6), and `find-P` (Algorithm 7).
//!
//! The entire walk runs in [`SubtreeId`] space: queue entries, the
//! seen-set, and the visited-set are flat id-keyed structures
//! ([`SubtreeIdSet`]), and ±one-node lattice moves come from the
//! interner's memoized id tables — no `Subtree` clone or hash happens
//! anywhere inside a query.

use std::collections::VecDeque;
use std::rc::Rc;

use pcs_graph::VertexId;
use pcs_ptree::{SubtreeId, SubtreeIdSet};

use crate::problem::{PcsOutcome, QueryContext};
use crate::verify::{QueryScratch, Verifier};
use crate::Result;

/// How the advanced method finds its initial cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindStrategy {
    /// `find-I`: bottom-up enumeration until the first maximal feasible
    /// subtree (Algorithm 5).
    Incremental,
    /// `find-D`: top-down leaf removal from `T(q)` until a feasible
    /// subtree appears (Algorithm 6).
    Decremental,
    /// `find-P`: probe whole root-to-leaf paths through the CP-tree,
    /// then binary-walk one path to the boundary (Algorithm 7).
    Path,
}

impl FindStrategy {
    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            FindStrategy::Incremental => "find-I",
            FindStrategy::Decremental => "find-D",
            FindStrategy::Path => "find-P",
        }
    }

    /// All strategies in the paper's order.
    pub const ALL: [FindStrategy; 3] =
        [FindStrategy::Incremental, FindStrategy::Decremental, FindStrategy::Path];
}

/// An initial cut: `feasible` is a feasible subtree; `infeasible`, when
/// present, is `feasible` plus exactly one node and is infeasible.
/// `infeasible == None` encodes the degenerate case `F = T(q)` (the
/// whole query tree is feasible, so it is the unique maximal subtree).
/// Both sides are ids into the query's interner ([`Verifier::ids`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cut {
    /// The infeasible upper side of the cut, if any.
    pub infeasible: Option<SubtreeId>,
    /// The feasible lower side.
    pub feasible: SubtreeId,
}

/// Runs the advanced method (Algorithm 8) for `(q, k)` on one-shot
/// scratch.
pub fn query(
    ctx: &QueryContext<'_>,
    q: VertexId,
    k: u32,
    strategy: FindStrategy,
) -> Result<PcsOutcome> {
    query_scratch(ctx, q, k, strategy, &mut QueryScratch::new(ctx.graph.num_vertices()))
}

/// Runs Algorithm 8 on pooled scratch (the engine hot path).
pub fn query_scratch(
    ctx: &QueryContext<'_>,
    q: VertexId,
    k: u32,
    strategy: FindStrategy,
    scratch: &mut QueryScratch,
) -> Result<PcsOutcome> {
    debug_assert!(ctx.index.is_some(), "checked by QueryContext::query");
    let space = ctx.space_for(q)?;
    let ver = Verifier::with_scratch(ctx, &space, q, k, scratch);
    Ok(run(ver, strategy))
}

fn run(mut ver: Verifier<'_>, strategy: FindStrategy) -> PcsOutcome {
    let mut results: Vec<(SubtreeId, Rc<Vec<VertexId>>)> = Vec::new();
    if ver.gk().is_some() {
        let cut = find_cut(&mut ver, strategy);
        expand_ptree(&mut ver, cut, &mut results);
    }
    crate::basic::assemble(results, ver)
}

/// Dispatches to the chosen `find` function. The caller guarantees
/// `Gk ≠ ∅` (so the root-only subtree is feasible and a cut exists).
pub fn find_cut(ver: &mut Verifier<'_>, strategy: FindStrategy) -> Cut {
    match strategy {
        FindStrategy::Incremental => find_i(ver),
        FindStrategy::Decremental => find_d(ver),
        FindStrategy::Path => find_p(ver),
    }
}

/// Algorithm 5 (`find-I`): run the `incre` enumeration until the first
/// maximal feasible subtree, and pair it with one infeasible child.
fn find_i(ver: &mut Verifier<'_>) -> Cut {
    let root = ver.ids_mut().root_only();
    let Some(gk) = ver.gk() else {
        // Callers guarantee Gk ≠ ∅; degrade to the trivially feasible
        // root-only subtree rather than panic.
        debug_assert!(false, "find functions require Gk");
        return Cut { infeasible: None, feasible: root };
    };
    let mut stack: Vec<(SubtreeId, Rc<Vec<VertexId>>)> = vec![(root, gk)];
    ver.note_generated(1);
    let mut ext: Vec<u32> = Vec::new();
    while let Some((t_prime, community)) = stack.pop() {
        let mut flag = true;
        let mut last_infeasible: Option<SubtreeId> = None;
        ver.ids().rightmost_extensions_into(t_prime, &mut ext);
        ver.note_generated(ext.len() as u64);
        for &pos in &ext {
            let t = ver.ids_mut().with(t_prime, pos);
            match ver.verify_from_base_id(t, &community, pos) {
                Some(sub) => {
                    flag = false;
                    stack.push((t, sub));
                }
                None => last_infeasible = Some(t),
            }
        }
        if flag && ver.is_maximal_feasible_id(t_prime) {
            // Any lattice child works as IF (they are all infeasible by
            // maximality); prefer one we already verified.
            let infeasible = match last_infeasible {
                Some(inf) => Some(inf),
                None => {
                    ver.ids().lattice_children_into(t_prime, &mut ext);
                    ext.first().copied().map(|p| ver.ids_mut().with(t_prime, p))
                }
            };
            return Cut { infeasible, feasible: t_prime };
        }
    }
    // The enumeration reaches the full tree via feasible prefixes only
    // when T(q) itself is feasible; in that case the loop above returned
    // at the full tree (no extensions ⇒ flag stays true, and the full
    // tree is trivially maximal). Reaching this point means every
    // branch died infeasible *after* a feasible prefix whose maximality
    // check failed — impossible, because a failed maximality check
    // implies a feasible child, which the rightmost enumeration visits.
    // Degrade to the root-only cut rather than panic.
    debug_assert!(false, "find-I always locates a maximal feasible subtree when Gk exists");
    Cut { infeasible: None, feasible: root }
}

/// Algorithm 6 (`find-D`): descend from `T(q)`, removing one leaf at a
/// time, until a feasible subtree appears.
fn find_d(ver: &mut Verifier<'_>) -> Cut {
    let full = ver.ids_mut().full();
    ver.note_generated(1);
    if ver.verify_id(full).is_some() {
        return Cut { infeasible: None, feasible: full };
    }
    let mut stack: Vec<SubtreeId> = vec![full];
    let mut visited = SubtreeIdSet::new();
    let mut parents: Vec<u32> = Vec::new();
    while let Some(t) = stack.pop() {
        ver.ids().lattice_parents_into(t, &mut parents);
        for &leaf in &parents {
            let smaller = ver.ids_mut().without(t, leaf);
            ver.note_generated(1);
            if ver.verify_id(smaller).is_some() {
                return Cut { infeasible: Some(t), feasible: smaller };
            }
            if visited.insert(smaller) {
                stack.push(smaller);
            }
        }
    }
    // The descent always bottoms out at the root-only subtree, which is
    // feasible when Gk exists — so the loop above must have returned.
    debug_assert!(false, "the root-only subtree is feasible when Gk exists");
    let root = ver.ids_mut().root_only();
    Cut { infeasible: None, feasible: root }
}

/// Algorithm 7 (`find-P`): verify whole root-to-leaf paths — for a path
/// `P` ending at leaf `t`, `Gk[P] = I.get(k, q, t)` — then grow a
/// feasible union of paths and walk the first failing path down to the
/// boundary.
fn find_p(ver: &mut Verifier<'_>) -> Cut {
    let space = ver.space();
    // S starts as the leaf positions of T(q); while no single path is
    // feasible, lift S to the parents (lines 12-14 of Algorithm 7).
    let full = ver.ids_mut().full();
    let mut s: Vec<u32> = Vec::new();
    ver.ids().leaves_into(full, &mut s);
    let mut f = 'seed: loop {
        for &t in &s {
            let path = ver.ids_mut().intern(&space.path_to(t));
            ver.note_generated(1);
            if ver.verify_id(path).is_some() {
                break 'seed path;
            }
        }
        // Lift to parents (dedup, drop the root's self-parent loop).
        let mut parents: Vec<u32> = s.iter().map(|&t| space.parent_of(t)).collect();
        parents.sort_unstable();
        parents.dedup();
        if parents == [0] {
            // Only the root path remains; it is feasible since Gk ≠ ∅.
            break 'seed ver.ids_mut().root_only();
        }
        s = parents;
    };

    // Lines 4-11: extend F by each remaining path; on the first failure
    // walk that path from F downward to locate the exact boundary.
    for &t in &s {
        let path = ver.ids_mut().intern(&space.path_to(t));
        let target = ver.ids_mut().union(f, path);
        if target == f {
            continue;
        }
        ver.note_generated(1);
        if ver.verify_id(target).is_some() {
            f = target;
            continue;
        }
        // The path nodes missing from F, in root-to-leaf (ascending
        // preorder) order; adding them one by one keeps closure.
        let missing: Vec<u32> =
            ver.ids().positions(path).filter(|&p| !ver.ids().contains(f, p)).collect();
        let mut cur = f;
        let mut boundary: Option<Cut> = None;
        for p in missing {
            let cand = ver.ids_mut().with(cur, p);
            ver.note_generated(1);
            if ver.verify_id(cand).is_some() {
                cur = cand;
            } else {
                boundary = Some(Cut { infeasible: Some(cand), feasible: cur });
                break;
            }
        }
        if let Some(cut) = boundary {
            return cut;
        }
        // Adding every missing node reassembles `target`, which was
        // infeasible — some step must have failed. If the memo somehow
        // disagrees, keep the feasible `cur` and move on.
        debug_assert!(false, "target was infeasible, so some step must fail");
        f = cur;
    }

    // Every probed path fit into F. Climb greedily until F is maximal
    // or an infeasible child provides the cut (completion of the
    // abstract's elided "complete subtrees IF, F" step).
    let mut children: Vec<u32> = Vec::new();
    loop {
        ver.ids().lattice_children_into(f, &mut children);
        if children.is_empty() {
            return Cut { infeasible: None, feasible: f };
        }
        let mut grew = false;
        let mut first_infeasible = None;
        for &p in &children {
            let cand = ver.ids_mut().with(f, p);
            ver.note_generated(1);
            if ver.verify_id(cand).is_some() {
                f = cand;
                grew = true;
                break;
            } else if first_infeasible.is_none() {
                first_infeasible = Some(cand);
            }
        }
        if !grew {
            // With children nonempty and none feasible, the scan always
            // recorded a first infeasible child.
            debug_assert!(first_infeasible.is_some(), "children nonempty");
            return Cut { infeasible: first_infeasible, feasible: f };
        }
    }
}

/// Algorithm 4 (`expandPtree`): walk the feasible/infeasible boundary
/// from the initial cut, recording every maximal feasible subtree into
/// `results`.
///
/// The queue holds the infeasible side of each cut only: Algorithm 4
/// never reads the feasible side of a dequeued pair, so deduplicating
/// by `IF` alone (a flat [`SubtreeIdSet`]) visits every boundary
/// neighbourhood exactly once while provably recording the same result
/// set as pair-keyed dedup.
pub fn expand_ptree(
    ver: &mut Verifier<'_>,
    cut: Cut,
    results: &mut Vec<(SubtreeId, Rc<Vec<VertexId>>)>,
) {
    // Line 2: IF = ∅ with F ≠ ∅ means F = T(q) is feasible — it is the
    // unique maximal subtree.
    let Some(if0) = cut.infeasible else {
        if let Some(community) = ver.verify_id(cut.feasible) {
            results.push((cut.feasible, community));
        } else {
            debug_assert!(false, "cut.feasible is feasible");
        }
        return;
    };
    let mut recorded = SubtreeIdSet::new();
    // Record the seed F when maximal (it lies on the boundary too;
    // maximal implies feasible, so the verify always succeeds).
    if ver.is_maximal_feasible_id(cut.feasible) {
        if let Some(community) = ver.verify_id(cut.feasible) {
            recorded.insert(cut.feasible);
            results.push((cut.feasible, community));
        }
    }

    let mut queue: VecDeque<SubtreeId> = VecDeque::new();
    let mut seen = SubtreeIdSet::new();
    // Infeasible Yi whose boundary-membership scan already ran (the
    // scan is a pure function of Yi, so one pass settles it).
    let mut checked = SubtreeIdSet::new();
    seen.insert(if0);
    queue.push_back(if0);

    let mut parents: Vec<u32> = Vec::new();
    let mut children: Vec<u32> = Vec::new();
    let mut parents2: Vec<u32> = Vec::new();
    while let Some(inf) = queue.pop_front() {
        // Lines 7-17: examine every parent Yi of IF.
        ver.ids().lattice_parents_into(inf, &mut parents);
        for &leaf in &parents {
            let yi = ver.ids_mut().without(inf, leaf);
            if let Some(yi_community) = ver.verify_id(yi) {
                if ver.is_maximal_feasible_id(yi) && recorded.insert(yi) {
                    results.push((yi, Rc::clone(&yi_community)));
                }
                ver.ids().lattice_children_into(yi, &mut children);
                for &pos in &children {
                    let k_sub = ver.ids_mut().with(yi, pos);
                    ver.note_generated(1);
                    // Lemma-3 narrowing: K = Yi + one node, and Yi's
                    // community is in hand — candidates shrink to
                    // `Gk[Yi] ∩ I.get(k, q, t)`.
                    if ver.verify_from_base_id(k_sub, &yi_community, pos).is_none() {
                        // New cut (K, Yi).
                        if seen.insert(k_sub) {
                            queue.push_back(k_sub);
                        }
                    } else {
                        // Common child of K and IF (Upper-◇-Property):
                        // C = K ∪ IF differs from K by exactly the node
                        // IF \ Yi and is infeasible because C ⊇ IF.
                        let c = ver.ids_mut().union(k_sub, inf);
                        if c != k_sub && seen.insert(c) {
                            queue.push_back(c);
                        }
                    }
                }
            } else if checked.insert(yi) {
                // Yi infeasible: it is a boundary cut iff some lattice
                // parent of Yi is feasible. One scan settles Yi forever.
                ver.ids().lattice_parents_into(yi, &mut parents2);
                for &leaf2 in &parents2 {
                    let k_sub = ver.ids_mut().without(yi, leaf2);
                    ver.note_generated(1);
                    if ver.verify_id(k_sub).is_some() {
                        if seen.insert(yi) {
                            queue.push_back(yi);
                        }
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Algorithm, QueryContext};
    use pcs_graph::Graph;
    use pcs_index::CpTree;
    use pcs_ptree::{PTree, Taxonomy};

    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (g, t, profiles)
    }

    #[test]
    fn strategies_have_names() {
        assert_eq!(FindStrategy::Incremental.name(), "find-I");
        assert_eq!(FindStrategy::Decremental.name(), "find-D");
        assert_eq!(FindStrategy::Path.name(), "find-P");
        assert_eq!(FindStrategy::ALL.len(), 3);
    }

    #[test]
    fn all_advanced_variants_match_basic() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let plain = QueryContext::new(&g, &t, &profiles).unwrap();
        let indexed = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        for q in 0..8u32 {
            for k in 0..=3u32 {
                let expect = plain.query(q, k, Algorithm::Basic).unwrap().communities;
                for algo in [Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
                    let got = indexed.query(q, k, algo).unwrap().communities;
                    assert_eq!(expect, got, "q={q} k={k} algo={}", algo.name());
                }
            }
        }
    }

    #[test]
    fn cuts_are_well_formed() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        for q in 0..8u32 {
            for k in 1..=3u32 {
                let space = ctx.space_for(q).unwrap();
                for strategy in FindStrategy::ALL {
                    let mut ver = Verifier::new(&ctx, &space, q, k);
                    if ver.gk().is_none() {
                        continue;
                    }
                    let cut = find_cut(&mut ver, strategy);
                    assert!(
                        ver.verify_id(cut.feasible).is_some(),
                        "q={q} k={k} {strategy:?}: F must be feasible"
                    );
                    match cut.infeasible {
                        None => assert_eq!(ver.ids().subtree(cut.feasible), space.full()),
                        Some(inf) => {
                            assert!(ver.verify_id(inf).is_none(), "IF must be infeasible");
                            assert_eq!(ver.ids().count(inf), ver.ids().count(cut.feasible) + 1);
                            assert!(ver.ids().is_subset(cut.feasible, inf));
                            assert!(space.is_valid(&ver.ids().subtree(inf)));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_tree_feasible_short_circuits() {
        // A clique where everyone shares an identical deep P-tree: the
        // full T(q) is feasible and all strategies return IF = None.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(a, "b").unwrap();
        let profiles: Vec<PTree> = (0..4).map(|_| PTree::from_labels(&t, [b]).unwrap()).collect();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let space = ctx.space_for(0).unwrap();
        for strategy in FindStrategy::ALL {
            let mut ver = Verifier::new(&ctx, &space, 0, 3);
            let cut = find_cut(&mut ver, strategy);
            assert_eq!(cut.infeasible, None, "{strategy:?}");
            assert_eq!(ver.ids().subtree(cut.feasible), space.full());
        }
        let out = ctx.query(0, 3, Algorithm::AdvP).unwrap();
        assert_eq!(out.communities.len(), 1);
        assert_eq!(out.communities[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(out.communities[0].subtree.len(), 3);
    }

    #[test]
    fn advanced_examines_fewer_candidates_than_basic_on_middle_heavy_space() {
        // A larger instance where the maximal subtrees sit mid-lattice:
        // advanced should verify fewer candidates than basic generates.
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let plain = QueryContext::new(&g, &t, &profiles).unwrap();
        let indexed = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let b = plain.query(3, 2, Algorithm::Basic).unwrap();
        let a = indexed.query(3, 2, Algorithm::AdvP).unwrap();
        assert_eq!(a.communities, b.communities);
        // Not a strict guarantee on tiny instances, but stats must at
        // least be tracked for both.
        assert!(a.stats.verifications > 0 && b.stats.verifications > 0);
    }

    #[test]
    fn scratch_path_matches_owned_path() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let mut scratch = QueryScratch::new(g.num_vertices());
        for strategy in FindStrategy::ALL {
            for q in 0..8u32 {
                for k in 0..=3u32 {
                    let owned = query(&ctx, q, k, strategy).unwrap();
                    let pooled = query_scratch(&ctx, q, k, strategy, &mut scratch).unwrap();
                    assert_eq!(owned.communities, pooled.communities, "q={q} k={k} {strategy:?}");
                }
            }
        }
    }
}
