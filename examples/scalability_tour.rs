//! Scalability tour: index once, query five ways.
//!
//! Generates an ACMDL-like profiled graph, builds the CP-tree index
//! (timed, sequential vs parallel), then runs the same PCS queries with
//! all five algorithms and prints the speed hierarchy the paper's
//! Fig. 14 reports (`basic ≪ incre < adv-I < adv-D ≈ adv-P`).
//!
//! Run with: `cargo run --release --example scalability_tour`

use std::time::Instant;

use pcs::prelude::*;

fn main() {
    let cfg = SuiteConfig { scale: 0.03, ..SuiteConfig::default() };
    let ds = pcs::datasets::suite::build(SuiteDataset::Acmdl, cfg);
    println!(
        "dataset: {} — {} vertices, {} edges",
        ds.name,
        ds.graph.num_vertices(),
        ds.graph.num_edges()
    );

    // --- Engine + index construction ---------------------------------------
    let (queries, level) = pcs::datasets::sample_query_vertices(&ds, 6, 20, 7);
    let t0 = Instant::now();
    let engine = PcsEngine::builder()
        .graph(ds.graph)
        .taxonomy(ds.tax)
        .profiles(ds.profiles)
        .index_mode(IndexMode::Eager)
        .index_build_threads(8)
        .build()
        .expect("consistent dataset");
    let built = t0.elapsed();
    let snap = engine.snapshot();
    let index = snap.index().expect("eager mode builds the index");
    println!(
        "engine warm-up (8-thread CP-tree + core decomposition): {:.1} ms ({} labels populated, ~{:.1} MiB)",
        built.as_secs_f64() * 1e3,
        index.num_populated_labels(),
        index.memory_bytes() as f64 / (1024.0 * 1024.0)
    );

    // --- Queries -----------------------------------------------------------
    println!("\n{} query vertices from the {}-core; k = 6\n", queries.len(), level);

    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>12}",
        "method", "total (ms)", "verifications", "candidates", "communities"
    );
    for algo in Algorithm::ALL {
        let requests: Vec<QueryRequest> = queries
            .iter()
            .map(|&q| QueryRequest::vertex(q).k(6).algorithm(algo).collect_stats(true))
            .collect();
        // Wall-clock around the whole batch: per-query elapsed times
        // overlap under the batch fan-out, so summing them would
        // overstate the cost on multicore machines.
        let t0 = Instant::now();
        let responses = engine.query_batch(&requests);
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut verifications = 0u64;
        let mut generated = 0u64;
        let mut communities = 0usize;
        for result in responses {
            let resp = result.expect("query in range");
            let stats = resp.stats.expect("requested via collect_stats");
            verifications += stats.verifications;
            generated += stats.subtrees_generated;
            communities += resp.communities().len();
        }
        println!(
            "{:<8} {:>12.2} {:>14} {:>14} {:>12}",
            algo.name(),
            total_ms,
            verifications,
            generated,
            communities
        );
    }
    println!("\nExpected ordering (paper Fig. 14): basic slowest by orders of magnitude,");
    println!("incre in the middle, adv-D / adv-P fastest.");
}
