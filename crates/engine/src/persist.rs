//! Engine persistence: warm-starting from on-disk snapshots.
//!
//! [`PcsEngine::save`] serializes the current epoch snapshot — graph,
//! taxonomy, profiles, core numbers, and the CP-tree's flat arenas —
//! through [`pcs_store`]'s versioned, checksummed container;
//! [`EngineBuilder::load`] does the inverse, producing an engine that
//! is indistinguishable from the one that saved: same epoch, same
//! answers, and the same mutability ([`PcsEngine::apply`] works on a
//! loaded engine exactly as on a built one, because the writer state is
//! materialized lazily from the current snapshot either way).
//!
//! Loading is *validate-then-bulk-copy*: the store layer proves byte
//! integrity (checksums) and structural soundness (CSR invariants,
//! arena invariants, cross-section agreement), after which the arrays
//! are adopted wholesale — no union-find, no peeling, no per-label
//! construction. That is what makes a warm start one to two orders of
//! magnitude cheaper than `EngineBuilder::build` with an eager index.

use pcs_store::{decode_snapshot_bytes_mode, DecodedShards, IndexDecode, StoreError};
use std::path::Path;
use std::sync::{Arc, OnceLock};

use pcs_graph::core::CoreDecomposition;
use pcs_graph::GraphHandle;
use pcs_index::ShardedCpIndex;
use pcs_ptree::ProfilesHandle;

use crate::engine::{EngineBuilder, IndexMode, PcsEngine};
use crate::error::{BuildError, Error, Result};
use crate::snapshot::SnapshotInner;

impl PcsEngine {
    /// Writes the current epoch snapshot to `path` as a versioned,
    /// checksummed binary file (see `pcs_store` for the wire layout).
    ///
    /// What is saved is exactly what the current snapshot holds: the
    /// graph, taxonomy, and profiles always; the core decomposition
    /// always (computed first if no query has needed it yet — it is
    /// O(n + m) and makes the snapshot warm); the sharded index only
    /// if its facade is built, and then only its **resident** shards —
    /// `save` never triggers an index or shard build. Call
    /// [`warm`](PcsEngine::warm) first to persist a fully warmed
    /// engine; a partially warm save is still a faithful resume point
    /// (absent shards rebuild on demand after load).
    ///
    /// Concurrent updates are safe: the snapshot is one immutable
    /// epoch, so the file is internally consistent even if writers
    /// publish new epochs mid-save.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let snap = self.snapshot_arc();
        self.write_snapshot(&snap, path)
    }

    /// Serializes one pinned snapshot. Split out of
    /// [`save`](Self::save) so [`checkpoint`](Self::checkpoint) can
    /// write the *same* epoch it then uses as the WAL reclaim
    /// watermark, even if a concurrent applier publishes mid-write.
    pub(crate) fn write_snapshot(
        &self,
        snap: &SnapshotInner,
        path: impl AsRef<Path>,
    ) -> Result<()> {
        // A save is a full pass over the data anyway, so a lazily
        // loaded snapshot materializes here (typed errors if the
        // backing file is damaged) before the streaming writer runs.
        let graph = snap.materialized_graph()?;
        let profiles = snap.dense_profiles()?;
        let cores = snap.cores();
        // The streaming writer encodes one section at a time and
        // appends it straight to the file, so a save never holds a
        // second whole-snapshot buffer — the difference between "fits"
        // and "OOM" at scale 1.0.
        pcs_store::write_snapshot(
            path,
            snap.epoch,
            graph,
            self.taxonomy(),
            &profiles,
            Some(cores.core_numbers()),
            snap.index_if_built(),
        )
        .map_err(Into::into)
    }
}

impl EngineBuilder {
    /// Builds an engine from an on-disk snapshot instead of in-memory
    /// parts: the warm-start counterpart of
    /// [`build`](EngineBuilder::build).
    ///
    /// Configuration methods ([`index_mode`](EngineBuilder::index_mode),
    /// [`index_build_threads`](EngineBuilder::index_build_threads),
    /// [`batch_threads`](EngineBuilder::batch_threads),
    /// [`incremental_patch_cap`](EngineBuilder::incremental_patch_cap))
    /// apply as usual; data methods must not have been called — a
    /// snapshot supplies the graph, taxonomy, and profiles, and mixing
    /// sources is rejected with [`BuildError::DataWithSnapshot`].
    ///
    /// The loaded engine resumes at the saved epoch
    /// (`engine.snapshot().epoch` picks up where the source left off),
    /// answers queries bit-identically to the source engine, and
    /// accepts [`apply`](PcsEngine::apply) exactly as a built engine
    /// does. How the persisted index is adopted follows the index
    /// mode:
    ///
    /// * [`IndexMode::Lazy`] — **partial load**: the facade (member
    ///   table + `headMap`) and the shard directory are mapped
    ///   eagerly, but each persisted shard payload is decoded only on
    ///   its first probe; shards absent from the file rebuild from the
    ///   graph on demand. Time-to-first-query stays proportional to
    ///   the queried labels, even straight off disk.
    /// * [`IndexMode::Eager`] — every persisted shard is decoded and
    ///   validated up front, and any missing shard is built here,
    ///   preserving the eager guarantee.
    /// * [`IndexMode::Disabled`] — the `INDEX` section is skipped
    ///   entirely (not even decoded).
    ///
    /// Corrupt, truncated, or version-skewed files fail with a typed
    /// [`pcs_store::StoreError`] (wrapped in
    /// [`Error::Store`](crate::Error::Store)) before any state is
    /// adopted — never a panic and never a silently wrong engine. A
    /// snapshot is a warm-start mechanism, not an authentication
    /// boundary: see `pcs_store`'s trust-model docs for what is
    /// re-validated versus writer-trusted.
    pub fn load(self, path: impl AsRef<Path>) -> Result<PcsEngine> {
        if self.graph.is_some() || self.tax.is_some() || !self.profiles.is_empty() {
            return Err(BuildError::DataWithSnapshot.into());
        }
        // Open the file and validate the container prefix (magic,
        // version, section table) with positioned reads — no whole-file
        // read yet. Version-3 files loaded in Lazy or Disabled mode
        // take the deferred path: META and the directories decode now,
        // the graph, profile chunks, member runs, and shard payloads
        // fault in on first touch. Eager mode and pre-v3 files (which
        // lack the per-range checksums laziness relies on) fall back to
        // the buffered whole-file decode.
        let src = Arc::new(pcs_store::FileSnapshot::open(path.as_ref())?);
        if src.version() >= 3 && self.index_mode != IndexMode::Eager {
            return self.load_lazy(src);
        }
        let bytes = std::fs::read(path)
            .map_err(|e| StoreError::Io { op: "read", detail: e.to_string() })?;
        let mode = match self.index_mode {
            IndexMode::Disabled => IndexDecode::Skip,
            IndexMode::Lazy => IndexDecode::Partial,
            IndexMode::Eager => IndexDecode::Eager,
        };
        let contents = decode_snapshot_bytes_mode(&bytes, mode)?;
        drop(bytes);
        // The store layer has already validated structure and
        // cross-section agreement (the same invariants `build` checks,
        // plus the index↔profiles pin), so the parts are adopted
        // directly.
        let graph = Arc::new(contents.graph);
        let profiles = Arc::new(contents.profiles);
        let cores_cell = Arc::new(OnceLock::new());
        if let Some(core) = contents.cores {
            let _ = cores_cell.set(CoreDecomposition::from_core_numbers(core));
        }
        let index_cell = OnceLock::new();
        if let Some(decoded) = contents.index {
            let (resident, source) = match decoded.shards {
                DecodedShards::Resident(shards) => (shards, None),
                DecodedShards::Lazy(store) => {
                    (Vec::new(), Some(store as Arc<dyn pcs_index::ShardSource>))
                }
            };
            let mut idx = ShardedCpIndex::from_loaded(
                Arc::clone(&graph),
                Arc::clone(&profiles),
                decoded.members_of,
                resident,
                source,
            )
            .map_err(Error::Index)?;
            idx.set_global_cores(Arc::clone(&cores_cell));
            let _ = index_cell.set(Ok(idx));
        }
        let snapshot = Arc::new(SnapshotInner {
            graph: GraphHandle::ready(graph),
            profiles: ProfilesHandle::dense(profiles),
            cores: cores_cell,
            index: index_cell,
            cache: None,
            fault: None,
            epoch: contents.epoch,
        });
        // Same assembly tail as `build`, so configuration defaults can
        // never drift between built and loaded engines (with Eager,
        // `assemble` warms the engine, materializing any shard the
        // file did not carry).
        self.assemble(contents.tax, snapshot)
    }

    /// The deferred-decode warm start: adopt META, the taxonomy, core
    /// numbers, and the profile/index directories now; leave the graph,
    /// profile chunks, member runs, and shard payloads on disk behind
    /// lazy handles. Time-to-first-query reads only the ranges that
    /// query touches (observable through
    /// [`PcsEngine::snapshot_io`]); damage in an untouched range costs
    /// nothing, damage in a touched one is a typed error on first
    /// touch.
    fn load_lazy(self, src: Arc<pcs_store::FileSnapshot>) -> Result<PcsEngine> {
        let want_index = self.index_mode != IndexMode::Disabled;
        let lazy = pcs_store::open_lazy(Arc::clone(&src), want_index)?;
        let cores_cell = Arc::new(OnceLock::new());
        if let Some(core) = &lazy.cores {
            let _ = cores_cell.set(CoreDecomposition::from_core_numbers(core.as_ref().clone()));
        }
        let index_cell = OnceLock::new();
        if let Some(parts) = lazy.index {
            let mut idx = ShardedCpIndex::from_lazy_parts(
                lazy.graph.clone(),
                lazy.profiles.clone(),
                parts.member_lens,
                parts.members,
                Some(parts.shards),
            )
            .map_err(Error::Index)?;
            idx.set_global_cores(Arc::clone(&cores_cell));
            let _ = index_cell.set(Ok(idx));
        }
        let snapshot = Arc::new(SnapshotInner {
            graph: lazy.graph,
            profiles: lazy.profiles,
            cores: cores_cell,
            index: index_cell,
            cache: None,
            fault: Some(lazy.fault),
            epoch: lazy.meta.epoch,
        });
        let mut engine = self.assemble(lazy.tax, snapshot)?;
        engine.snapshot_source = Some(src);
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Error, IndexMode, PcsEngine, QueryRequest};
    use pcs_graph::Graph;
    use pcs_ptree::{PTree, Taxonomy};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pcs-engine-{}-{name}.snapshot", std::process::id()))
    }

    fn small_engine(mode: IndexMode) -> PcsEngine {
        let mut tax = Taxonomy::new("r");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let b = tax.add_child(a, "b").unwrap();
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let profiles = vec![
            PTree::from_labels(&tax, [a]).unwrap(),
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [a, b]).unwrap(),
            PTree::from_labels(&tax, [a]).unwrap(),
            PTree::root_only(), // isolated vertex
        ];
        PcsEngine::builder()
            .graph(g)
            .taxonomy(tax)
            .profiles(profiles)
            .index_mode(mode)
            .build()
            .unwrap()
    }

    #[test]
    fn save_load_round_trip_preserves_answers_and_epoch() {
        let engine = small_engine(IndexMode::Eager);
        engine.add_edge(0, 3).unwrap();
        assert_eq!(engine.epoch(), 1);
        let path = tmp("roundtrip");
        engine.save(&path).unwrap();
        let loaded = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert_eq!(loaded.epoch(), 1, "epoch resumes where the source left off");
        assert!(loaded.index_built(), "persisted index adopted without a rebuild");
        for q in 0..6u32 {
            for k in 1..4u32 {
                let a = engine.query(&QueryRequest::vertex(q).k(k)).unwrap();
                let b = loaded.query(&QueryRequest::vertex(q).k(k)).unwrap();
                assert_eq!(a.communities(), b.communities(), "q={q} k={k}");
            }
        }
        // The loaded engine is fully mutable: same update → same state.
        let ra = engine.remove_edge(2, 4).unwrap();
        let rb = loaded.remove_edge(2, 4).unwrap();
        assert_eq!(ra.epoch, rb.epoch);
        assert_eq!(
            engine.snapshot().cores().core_numbers(),
            loaded.snapshot().cores().core_numbers()
        );
    }

    #[test]
    fn disabled_mode_drops_the_persisted_index() {
        let engine = small_engine(IndexMode::Eager);
        let path = tmp("disabled");
        engine.save(&path).unwrap();
        let loaded = PcsEngine::builder().index_mode(IndexMode::Disabled).load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(!loaded.index_built());
        assert!(matches!(
            loaded.query(&QueryRequest::vertex(0).k(2).algorithm(pcs_core::Algorithm::AdvP)),
            Err(Error::IndexDisabled { .. })
        ));
    }

    #[test]
    fn lazy_save_omits_unbuilt_index_and_load_rebuilds_lazily() {
        let engine = small_engine(IndexMode::Lazy);
        assert!(!engine.index_built());
        let path = tmp("lazy");
        engine.save(&path).unwrap();
        let loaded = PcsEngine::builder().load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(!loaded.index_built(), "no index section, none adopted");
        // First indexed query builds it lazily, as on a built engine.
        let resp = loaded.query(&QueryRequest::vertex(0).k(2)).unwrap();
        assert!(resp.index_used);
        assert!(loaded.index_built());
    }

    #[test]
    fn mixing_data_and_snapshot_is_rejected() {
        let engine = small_engine(IndexMode::Lazy);
        let path = tmp("mixed");
        engine.save(&path).unwrap();
        let err =
            PcsEngine::builder().graph(Graph::from_edges(1, &[]).unwrap()).load(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, Error::Build(crate::BuildError::DataWithSnapshot)));
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = PcsEngine::builder().load(tmp("never-written")).unwrap_err();
        assert!(matches!(err, Error::Store(pcs_store::StoreError::Io { op: "open", .. })));
    }
}
