//! End-to-end smoke of the full pipeline: datasets → index → queries →
//! baselines → metrics, exactly the path every figure harness takes.

use pcs::baselines::variants::CohesivenessMetric;
use pcs::datasets::ego::EgoNetwork;
use pcs::datasets::scale::{subsample_gptree, subsample_ptrees, subsample_vertices};
use pcs::datasets::suite::{build, SuiteConfig};
use pcs::prelude::*;

fn tiny_cfg() -> SuiteConfig {
    SuiteConfig { scale: 0.004, ..SuiteConfig::default() }
}

#[test]
fn suite_dataset_full_query_pipeline() {
    let ds = build(SuiteDataset::Acmdl, tiny_cfg());
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let (queries, level) = pcs::datasets::sample_query_vertices(&ds, 6, 10, 1);
    assert_eq!(queries.len(), 10);

    let mut total_communities = 0usize;
    for &q in &queries {
        let out = ctx.query(q, level, Algorithm::AdvP).unwrap();
        total_communities += out.communities.len();
        // Metrics are computable on every outcome.
        let tq = &ds.profiles[q as usize];
        let c = cps(&ds.tax, &ds.profiles, &out.communities);
        assert!((0.0..=1.0).contains(&c), "cps {c}");
        let p = cpf(tq, &ds.profiles, &out.communities);
        assert!((0.0..=1.0).contains(&p), "cpf {p}");
        let l = ldr(&ds.tax, tq, &out.communities, &out.communities);
        assert!(out.communities.is_empty() || (l - 1.0).abs() < 1e-9, "self-LDR {l}");
    }
    assert!(total_communities > 0, "query workload found nothing at level {level}");
}

#[test]
fn baselines_run_on_suite_dataset() {
    let ds = build(SuiteDataset::Acmdl, tiny_cfg());
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let (queries, level) = pcs::datasets::sample_query_vertices(&ds, 6, 5, 2);
    for &q in &queries {
        let acq = acq_query(&ds.graph, &ds.tax, &ds.profiles, q, level);
        let global = global_query(&ds.graph, &ds.profiles, q, level);
        let local = local_query(&ds.graph, &ds.profiles, q, level, usize::MAX);
        assert!(global.is_some(), "queries are sampled from the {level}-core");
        assert!(local.is_some());
        // ACQ communities are k-cores containing q.
        for c in &acq.communities {
            assert!(c.community.vertices.binary_search(&q).is_ok());
        }
        // All four §5.3 metric variants answer.
        for metric in [
            CohesivenessMetric::CommonNodes,
            CohesivenessMetric::CommonPaths,
            CohesivenessMetric::CommonSubtree,
            CohesivenessMetric::Similarity { beta: 0.5 },
        ] {
            let comms = variant_query(&ctx, q, level, metric);
            for c in &comms {
                assert!(c.vertices.binary_search(&q).is_ok(), "{}", metric.name());
            }
        }
    }
}

#[test]
fn ego_networks_support_f1_workload() {
    let ds = pcs::datasets::ego::build(EgoNetwork::Fb3, 7);
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let (queries, level) = pcs::datasets::sample_query_vertices(&ds, 4, 10, 3);
    let mut scored = 0usize;
    let mut pcs_total = 0.0;
    for &q in &queries {
        let truths: Vec<Vec<VertexId>> =
            ds.groups.iter().filter(|g| g.binary_search(&q).is_ok()).cloned().collect();
        if truths.is_empty() {
            continue;
        }
        let found: Vec<Vec<VertexId>> = ctx
            .query(q, level, Algorithm::AdvP)
            .map(|o| o.communities.into_iter().map(|c| c.vertices).collect())
            .unwrap_or_default();
        let s = best_f1(&found, &truths);
        assert!((0.0..=1.0).contains(&s));
        pcs_total += s;
        scored += 1;
    }
    assert!(scored >= 5, "too few scoreable queries");
    assert!(
        pcs_total / scored as f64 > 0.2,
        "PCS should partially recover planted circles, got {}",
        pcs_total / scored as f64
    );
}

#[test]
fn scalability_axes_compose() {
    let ds = build(SuiteDataset::Acmdl, tiny_cfg());
    // All three axes can be applied and still answer queries.
    let v = subsample_vertices(&ds, 0.6, 1);
    let p = subsample_ptrees(&v, 0.6, 2);
    let gpt = subsample_gptree(&p, 0.6, 3);
    let index = CpTree::build(&gpt.graph, &gpt.tax, &gpt.profiles).unwrap();
    let ctx = QueryContext::new(&gpt.graph, &gpt.tax, &gpt.profiles).unwrap().with_index(&index);
    let (queries, level) = pcs::datasets::sample_query_vertices(&gpt, 6, 5, 4);
    for &q in &queries {
        let out = ctx.query(q, level, Algorithm::AdvD).unwrap();
        for c in &out.communities {
            assert!(c.vertices.binary_search(&q).is_ok());
        }
    }
}

#[test]
fn index_restores_profiles_on_generated_data() {
    let ds = build(SuiteDataset::Acmdl, tiny_cfg());
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    for v in 0..ds.graph.num_vertices() as u32 {
        assert_eq!(index.restore_ptree(&ds.tax, v), ds.profiles[v as usize], "vertex {v}");
    }
}

#[test]
fn parallel_index_identical_on_generated_data() {
    let ds = build(SuiteDataset::Acmdl, tiny_cfg());
    let seq = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let par = CpTree::build_with_threads(&ds.graph, &ds.tax, &ds.profiles, 4).unwrap();
    assert_eq!(seq.num_populated_labels(), par.num_populated_labels());
    let (queries, level) = pcs::datasets::sample_query_vertices(&ds, 6, 5, 5);
    let sorted = |idx: &CpTree, q: u32, label: u32| {
        idx.get_ref(level, q, label).map(|s| {
            let mut v = s.to_vec();
            v.sort_unstable();
            v
        })
    };
    for &q in &queries {
        for label in ds.profiles[q as usize].nodes() {
            assert_eq!(sorted(&seq, q, *label), sorted(&par, q, *label));
        }
    }
}
