//! Integration tests for the serving facade: builder validation,
//! `Algorithm::Auto` resolution, batch ordering, and thread safety.

use pcs_core::{Algorithm, PcsError, QueryContext};
use pcs_engine::{BuildError, EngineBuilder, Error, IndexMode, PcsEngine, QueryRequest};
use pcs_graph::Graph;
use pcs_index::CpTree;
use pcs_ptree::{PTree, Taxonomy};

/// Compile-time proof that the engine crosses threads: the whole point
/// of the owned facade.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PcsEngine>();
    assert_send_sync::<QueryRequest>();
    assert_send_sync::<Error>();
};

/// Two triangles sharing vertex 0, with incomparable themes: the first
/// is labelled `a`, the second `b`, and vertex 0 carries both — so a
/// k = 2 query at vertex 0 yields exactly two differently-themed
/// communities.
fn fixture() -> (Graph, Taxonomy, Vec<PTree>) {
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(Taxonomy::ROOT, "b").unwrap();
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)]).unwrap();
    let profiles = vec![
        PTree::from_labels(&tax, [a, b]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
    ];
    (g, tax, profiles)
}

fn engine_with(mode: IndexMode) -> PcsEngine {
    let (g, tax, profiles) = fixture();
    PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).index_mode(mode).build().unwrap()
}

#[test]
fn builder_rejects_mismatched_profile_count() {
    let (g, tax, mut profiles) = fixture();
    profiles.pop();
    let err = PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap_err();
    assert!(matches!(
        err,
        Error::Build(BuildError::ProfileCountMismatch { vertices: 5, profiles: 4 })
    ));
    // The unified error type surfaces the cause through Display too.
    assert!(err.to_string().contains("5 vertices"));
}

#[test]
fn builder_rejects_missing_components() {
    let (g, tax, profiles) = fixture();
    assert!(matches!(
        EngineBuilder::new().taxonomy(tax.clone()).profiles(profiles.clone()).build(),
        Err(Error::Build(BuildError::MissingGraph))
    ));
    assert!(matches!(
        EngineBuilder::new().graph(g).profiles(profiles).build(),
        Err(Error::Build(BuildError::MissingTaxonomy))
    ));
}

#[test]
fn builder_rejects_profiles_outside_taxonomy() {
    let (g, tax, mut profiles) = fixture();
    // A profile minted against a larger taxonomy refers to labels the
    // engine's taxonomy does not have.
    let mut bigger = tax.clone();
    let extra = bigger.add_child(Taxonomy::ROOT, "x").unwrap();
    profiles[3] = PTree::from_labels(&bigger, [extra]).unwrap();
    let err = PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap_err();
    assert!(matches!(err, Error::Build(BuildError::InvalidProfile { vertex: 3 })));
}

#[test]
fn auto_resolves_to_advp_when_index_allowed() {
    let engine = engine_with(IndexMode::Lazy);
    assert_eq!(engine.resolve_algorithm(Algorithm::Auto), Algorithm::AdvP);
    assert!(!engine.index_built(), "lazy mode builds nothing up front");
    let resp = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert_eq!(resp.algorithm, Algorithm::AdvP);
    assert!(resp.index_used);
    assert!(engine.index_built(), "first Auto query built the index");
}

#[test]
fn auto_resolves_to_basic_when_index_disabled() {
    let engine = engine_with(IndexMode::Disabled);
    assert_eq!(engine.resolve_algorithm(Algorithm::Auto), Algorithm::Basic);
    let resp = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert_eq!(resp.algorithm, Algorithm::Basic);
    assert!(!resp.index_used);
    assert!(!engine.index_built());
}

#[test]
fn auto_resolution_matches_query_context_semantics() {
    // The same rule applies at the borrowed layer: Auto follows the
    // attached index.
    let (g, tax, profiles) = fixture();
    let ctx = QueryContext::new(&g, &tax, &profiles).unwrap();
    let no_index = ctx.query(0, 2, Algorithm::Auto).unwrap();
    let index = CpTree::build(&g, &tax, &profiles).unwrap();
    let ctx = ctx.with_index(&index);
    let with_index = ctx.query(0, 2, Algorithm::Auto).unwrap();
    assert_eq!(no_index.communities, with_index.communities);
}

#[test]
fn explicit_index_algorithm_on_disabled_engine_errors() {
    let engine = engine_with(IndexMode::Disabled);
    let err = engine.query(&QueryRequest::vertex(0).k(2).algorithm(Algorithm::AdvP)).unwrap_err();
    assert!(matches!(err, Error::IndexDisabled { algorithm: "adv-P" }));
}

#[test]
fn eager_mode_builds_index_at_construction() {
    let engine = engine_with(IndexMode::Eager);
    assert!(engine.index_built());
}

#[test]
fn all_algorithms_agree_through_the_engine() {
    let engine = engine_with(IndexMode::Lazy);
    let auto = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    for algo in Algorithm::ALL {
        let resp = engine.query(&QueryRequest::vertex(0).k(2).algorithm(algo)).unwrap();
        assert_eq!(
            resp.outcome.communities,
            auto.outcome.communities,
            "{} disagrees with auto",
            algo.name()
        );
    }
}

#[test]
fn query_errors_flow_through_unified_error() {
    let engine = engine_with(IndexMode::Lazy);
    let err = engine.query(&QueryRequest::vertex(99).k(2)).unwrap_err();
    assert!(matches!(err, Error::Query(PcsError::QueryVertexOutOfRange { vertex: 99, n: 5 })));
    // One std::error::Error with a causal chain.
    let dyn_err: &dyn std::error::Error = &err;
    assert!(dyn_err.source().is_some());
}

#[test]
fn batch_preserves_request_order() {
    let engine = engine_with(IndexMode::Lazy);
    // Interleave valid and invalid requests so slots are distinguishable.
    let requests: Vec<QueryRequest> = vec![
        QueryRequest::vertex(3).k(2),
        QueryRequest::vertex(99).k(2), // out of range
        QueryRequest::vertex(0).k(2),
        QueryRequest::vertex(1).k(2),
        QueryRequest::vertex(4).k(2),
    ];
    let batch = engine.query_batch(&requests);
    assert_eq!(batch.len(), requests.len());
    for (req, result) in requests.iter().zip(&batch) {
        match result {
            Ok(resp) => {
                let sequential = engine.query(req).unwrap();
                assert_eq!(resp.outcome.communities, sequential.outcome.communities);
                // Every community contains its own query vertex: the
                // response really belongs to this slot.
                for c in resp.communities() {
                    assert!(c.vertices.binary_search(&req.vertex_id()).is_ok());
                }
            }
            Err(e) => {
                assert_eq!(req.vertex_id(), 99);
                assert!(matches!(
                    e,
                    Error::Query(PcsError::QueryVertexOutOfRange { vertex: 99, .. })
                ));
            }
        }
    }
}

#[test]
fn batch_and_sequential_agree_on_larger_fanout() {
    let engine = engine_with(IndexMode::Eager);
    let requests: Vec<QueryRequest> =
        (0..5).cycle().take(40).map(|v| QueryRequest::vertex(v).k(2)).collect();
    let batch = engine.query_batch(&requests);
    for (req, result) in requests.iter().zip(batch) {
        let got = result.unwrap();
        let want = engine.query(req).unwrap();
        assert_eq!(got.outcome.communities, want.outcome.communities);
    }
}

#[test]
fn engine_is_usable_from_scoped_threads() {
    let engine = engine_with(IndexMode::Lazy);
    let engine = &engine;
    let results: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                s.spawn(move || {
                    // All threads race the lazy index build; OnceLock
                    // hands every one the same instance.
                    let resp = engine.query(&QueryRequest::vertex(t % 5).k(2)).unwrap();
                    resp.communities().len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|&n| n >= 1));
}

#[test]
fn max_communities_truncates_response_only() {
    let engine = engine_with(IndexMode::Lazy);
    let full = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert!(full.communities().len() >= 2, "fixture has two themes at v0");
    assert!(!full.truncated());
    let capped = engine.query(&QueryRequest::vertex(0).k(2).max_communities(1)).unwrap();
    assert_eq!(capped.communities().len(), 1);
    assert_eq!(capped.total_communities, full.communities().len());
    assert!(capped.truncated());
}

#[test]
fn stats_surface_only_when_requested() {
    let engine = engine_with(IndexMode::Lazy);
    let without = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert!(without.stats.is_none());
    let with = engine.query(&QueryRequest::vertex(0).k(2).collect_stats(true)).unwrap();
    let stats = with.stats.expect("requested");
    assert!(stats.verifications > 0);
}

#[test]
fn with_context_bridges_to_the_paper_layer() {
    let engine = engine_with(IndexMode::Eager);
    let via_ctx = engine.with_context(|ctx| ctx.query(0, 2, Algorithm::AdvP).unwrap()).unwrap();
    let via_engine =
        engine.query(&QueryRequest::vertex(0).k(2).algorithm(Algorithm::AdvP)).unwrap();
    assert_eq!(via_ctx.communities, via_engine.outcome.communities);
}
