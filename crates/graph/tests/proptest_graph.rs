//! Property tests for the graph substrate.

use pcs_graph::core::{CoreDecomposition, SubsetCore};
use pcs_graph::truss::TrussDecomposition;
use pcs_graph::{connected_components, Graph};
use proptest::prelude::*;

/// Strategy: a random edge list over up to 24 vertices.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..n * 3))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_is_symmetric_sorted_and_loop_free((n, raw) in edges_strategy()) {
        let g = Graph::from_edges(n, &raw).unwrap();
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted adjacency");
            for &u in nbrs {
                prop_assert_ne!(u, v, "self loop survived");
                prop_assert!(g.neighbors(u).binary_search(&v).is_ok(), "asymmetric edge");
            }
        }
        prop_assert_eq!(g.edges().count(), g.num_edges());
        let deg_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
    }

    #[test]
    fn core_numbers_characterize_kcores((n, raw) in edges_strategy()) {
        let g = Graph::from_edges(n, &raw).unwrap();
        let cd = CoreDecomposition::new(&g);
        // Within the k-core, every member has >= k neighbours in it.
        for k in 0..=cd.max_core() {
            let members = cd.kcore_vertices(k);
            for &v in &members {
                let deg = g
                    .neighbors(v)
                    .iter()
                    .filter(|u| members.binary_search(u).is_ok())
                    .count();
                prop_assert!(deg >= k as usize, "v={v} k={k}");
            }
        }
        // max_core+1 is empty.
        prop_assert!(cd.kcore_vertices(cd.max_core() + 1).is_empty());
    }

    #[test]
    fn subset_core_on_component_respects_membership((n, raw) in edges_strategy()) {
        let g = Graph::from_edges(n, &raw).unwrap();
        let mut sc = SubsetCore::new(n);
        let all: Vec<u32> = g.vertices().collect();
        for q in g.vertices().take(5) {
            for k in 0..3u32 {
                if let Some(comm) = sc.kcore_component_within(&g, &all, q, k) {
                    prop_assert!(comm.binary_search(&q).is_ok());
                    prop_assert!(pcs_graph::components::is_connected_subset(&g, &comm));
                    for &v in &comm {
                        let deg = g
                            .neighbors(v)
                            .iter()
                            .filter(|u| comm.binary_search(u).is_ok())
                            .count();
                        prop_assert!(deg >= k as usize);
                    }
                }
            }
        }
    }

    #[test]
    fn components_partition_vertices((n, raw) in edges_strategy()) {
        let g = Graph::from_edges(n, &raw).unwrap();
        let (labels, count) = connected_components(&g);
        prop_assert_eq!(labels.len(), n);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        // Adjacent vertices share a label.
        for (a, b) in g.edges() {
            prop_assert_eq!(labels[a as usize], labels[b as usize]);
        }
    }

    #[test]
    fn truss_at_least_two_and_core_bounds_truss((n, raw) in edges_strategy()) {
        let g = Graph::from_edges(n, &raw).unwrap();
        let td = TrussDecomposition::new(&g);
        let cd = CoreDecomposition::new(&g);
        for (a, b) in g.edges() {
            let t = td.truss_of(a, b).unwrap();
            prop_assert!(t >= 2);
            // truss(e) - 1 <= min(core(a), core(b)) + 1 is loose; the
            // standard bound: truss(e) <= min core + 1.
            let bound = cd.core_number(a).min(cd.core_number(b)) + 1;
            prop_assert!(t <= bound, "truss {t} > core bound {bound}");
        }
    }

    #[test]
    fn induced_subgraph_edge_subset((n, raw) in edges_strategy(), keep_mask in any::<u64>()) {
        let g = Graph::from_edges(n, &raw).unwrap();
        let keep: Vec<u32> = (0..n as u32).filter(|v| keep_mask & (1 << (v % 64)) != 0).collect();
        let (sub, ids) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.num_vertices(), ids.len());
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(ids[a as usize], ids[b as usize]));
        }
        // Every original edge between kept vertices survives.
        for (a, b) in g.edges() {
            if let (Ok(i), Ok(j)) = (ids.binary_search(&a), ids.binary_search(&b)) {
                prop_assert!(sub.has_edge(i as u32, j as u32));
            }
        }
    }
}
