//! Fig. 11 / Table 4: F1 accuracy on the FB ego networks.
//!
//! Queries ground-truth circle members and scores each method's best
//! community match against the circles containing the query vertex.

use pcs_baselines::{acq_query, global_query, local_query};
use pcs_bench::{f, header, parse_args, row};
use pcs_core::{Algorithm, QueryContext};
use pcs_datasets::ego::{build, EgoNetwork};
use pcs_datasets::sample_query_vertices;
use pcs_graph::VertexId;
use pcs_index::CpTree;
use pcs_metrics::best_f1;

fn main() {
    let args = parse_args();
    let k = if args.k == 6 { 4 } else { args.k }; // ego circles are small; default to 4

    println!("Table 4 — ego networks\n");
    header(&["dataset", "vertices", "edges", "d̂", "P̂", "circles"]);
    let mut datasets = Vec::new();
    for which in EgoNetwork::ALL {
        let ds = build(which, args.seed);
        row(&[
            ds.name.clone(),
            ds.graph.num_vertices().to_string(),
            ds.graph.num_edges().to_string(),
            format!("{:.2}", ds.graph.avg_degree()),
            format!("{:.2}", ds.avg_ptree_size()),
            ds.groups.len().to_string(),
        ]);
        datasets.push(ds);
    }

    println!("\nFig. 11 — F1 scores ({} queries per network, k = {k})\n", args.queries);
    header(&["dataset", "PCS", "ACQ", "Global", "Local"]);
    for ds in &datasets {
        let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).expect("consistent dataset");
        let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles)
            .expect("consistent dataset")
            .with_index(&index);
        let (pool, _) = sample_query_vertices(ds, k, args.queries * 3, args.seed ^ 0xf1);
        let queries: Vec<VertexId> = pool
            .into_iter()
            .filter(|q| ds.groups.iter().any(|g| g.binary_search(q).is_ok()))
            .take(args.queries)
            .collect();

        let mut scores = [0.0f64; 4];
        for &q in &queries {
            let truths: Vec<Vec<VertexId>> = ds
                .groups
                .iter()
                .filter(|g| g.binary_search(&q).is_ok())
                .cloned()
                .collect();
            let pcs: Vec<Vec<VertexId>> = ctx
                .query(q, k, Algorithm::AdvP)
                .map(|o| o.communities.into_iter().map(|c| c.vertices).collect())
                .unwrap_or_default();
            scores[0] += best_f1(&pcs, &truths);
            let acq: Vec<Vec<VertexId>> = acq_query(&ds.graph, &ds.tax, &ds.profiles, q, k)
                .communities
                .into_iter()
                .map(|c| c.community.vertices)
                .collect();
            scores[1] += best_f1(&acq, &truths);
            let global: Vec<Vec<VertexId>> = global_query(&ds.graph, &ds.profiles, q, k)
                .map(|c| vec![c.vertices])
                .unwrap_or_default();
            scores[2] += best_f1(&global, &truths);
            let local: Vec<Vec<VertexId>> =
                local_query(&ds.graph, &ds.profiles, q, k, usize::MAX)
                    .map(|c| vec![c.vertices])
                    .unwrap_or_default();
            scores[3] += best_f1(&local, &truths);
        }
        let n = queries.len().max(1) as f64;
        row(&[
            ds.name.clone(),
            f(scores[0] / n),
            f(scores[1] / n),
            f(scores[2] / n),
            f(scores[3] / n),
        ]);
    }
    println!("\nPaper: PCS stably extracts the most accurate circles across all three networks.");
}
