//! Global (Sozio & Gionis, "the cocktail party problem", KDD 2010).
//!
//! Structure-only community search: given `q` and `k`, return the
//! largest connected subgraph containing `q` with minimum degree ≥ k —
//! found, as in the original paper, by greedily peeling minimum-degree
//! vertices. [`global_max_min_degree`] additionally solves the
//! unconstrained objective (maximize the minimum degree), whose optimum
//! equals the core number of `q`.

use pcs_core::ProfiledCommunity;
use pcs_graph::core::{CoreDecomposition, SubsetCore};
use pcs_graph::{Graph, VertexId};
use pcs_ptree::PTree;

use crate::community_from_vertices;

/// The Global community for `(q, k)`: the k-ĉore containing `q`
/// (greedy peeling of under-degree vertices, then the component of
/// `q`). Returns `None` when no such community exists.
pub fn global_query(
    g: &Graph,
    profiles: &[PTree],
    q: VertexId,
    k: u32,
) -> Option<ProfiledCommunity> {
    let all: Vec<VertexId> = g.vertices().collect();
    let mut sc = SubsetCore::new(g.num_vertices());
    let vertices = sc.kcore_component_within(g, &all, q, k)?;
    Some(community_from_vertices(vertices, profiles.into()))
}

/// The unconstrained Global objective: the community containing `q`
/// with the largest achievable minimum degree (= `core(q)`), i.e. the
/// `core(q)`-ĉore containing `q`. Returns the community and the
/// achieved minimum degree.
pub fn global_max_min_degree(
    g: &Graph,
    profiles: &[PTree],
    q: VertexId,
) -> Option<(ProfiledCommunity, u32)> {
    if q as usize >= g.num_vertices() {
        return None;
    }
    let cd = CoreDecomposition::new(g);
    let k = cd.core_number(q);
    let vertices = cd.kcore_component(g, q, k)?;
    Some((community_from_vertices(vertices, profiles.into()), k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_ptree::Taxonomy;

    fn setup() -> (Graph, Vec<PTree>) {
        // Two triangles bridged: {0,1,2} and {3,4,5}, bridge 2-3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let profiles = vec![PTree::root_only(); 6];
        (g, profiles)
    }

    #[test]
    fn k2_returns_kcore_component() {
        // The bridge endpoints have degree 3, so nothing peels at k=2:
        // the whole graph is one 2-ĉore.
        let (g, profiles) = setup();
        let c = global_query(&g, &profiles, 0, 2).unwrap();
        assert_eq!(c.vertices, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.subtree, PTree::root_only());
    }

    #[test]
    fn pendant_chain_peels_away() {
        // Triangle plus a pendant path: peeling at k=2 removes the path.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap();
        let profiles = vec![PTree::root_only(); 5];
        let c = global_query(&g, &profiles, 0, 2).unwrap();
        assert_eq!(c.vertices, vec![0, 1, 2]);
        assert!(global_query(&g, &profiles, 4, 2).is_none());
    }

    #[test]
    fn infeasible_k_returns_none() {
        let (g, profiles) = setup();
        assert!(global_query(&g, &profiles, 0, 3).is_none());
    }

    #[test]
    fn k1_spans_bridge() {
        let (g, profiles) = setup();
        let c = global_query(&g, &profiles, 0, 1).unwrap();
        assert_eq!(c.vertices, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn max_min_degree_equals_core_number() {
        let (g, profiles) = setup();
        let (c, k) = global_max_min_degree(&g, &profiles, 0).unwrap();
        assert_eq!(k, 2);
        assert_eq!(c.vertices, vec![0, 1, 2, 3, 4, 5]);
        assert!(global_max_min_degree(&g, &profiles, 99).is_none());
    }

    #[test]
    fn subtree_is_common_profile() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut tax = Taxonomy::new("r");
        let a = tax.add_child(0, "a").unwrap();
        let b = tax.add_child(a, "b").unwrap();
        let profiles = vec![
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [a]).unwrap(),
        ];
        let c = global_query(&g, &profiles, 0, 2).unwrap();
        assert_eq!(c.vertices, vec![0, 1, 2]);
        // Common subtree of all three is r->a.
        assert!(c.subtree.contains(a));
        assert!(!c.subtree.contains(b));
    }
}
