//! The CL-tree: nested k-ĉores as a forest over a flat DFS arena.
//!
//! Because `j-ĉore ⊆ i-ĉore` whenever `i < j`, all connected ĉores of a
//! graph form a containment forest. Each node carries a core level and
//! the vertices whose core number equals that level inside that ĉore;
//! the full vertex set of a ĉore is the node's subtree. A
//! `vertexNodeMap` (here a sorted-id lookup) places every vertex at the
//! node of its own core level, so locating the k-ĉore of a query vertex
//! is an upward walk of at most `max_core` steps.
//!
//! **Arena layout.** All member vertices live in one contiguous
//! `arena`, ordered by a DFS of the forest in which every node's own
//! vertices precede its children's subtrees. Each node records an
//! `(offset, len)` pair into the arena for its own vertices *and* for
//! its whole subtree — so the k-ĉore of `(q, k)`, which is exactly the
//! subtree of `q`'s `k`-level ancestor, is a **borrowed slice**:
//! [`ClTree::community_ref`] answers in O(depth) with zero allocation
//! and zero copying. The owned [`ClTree::get`] remains as a thin
//! sorted copy for callers that need ownership or sorted order.
//!
//! Construction follows the union-find method of Fang et al.: sweep
//! core levels from deepest to shallowest, union the newly activated
//! vertices with already-active neighbours, and make the merged deeper
//! nodes children of the freshly created level node — O(m·α(n)) total.
//! Per-level grouping is a sort-then-partition over a scratch vector
//! (no per-level hash maps).

use pcs_graph::core::CoreDecomposition;
use pcs_graph::{Graph, UnionFind, VertexId};

use crate::{IndexError, Result};

/// Sentinel for "no parent" links inside the forest.
const NONE: u32 = u32::MAX;

/// Fallback node for out-of-range ids (impossible for ids produced by
/// this tree — `from_flat` validates every stored id): empty ranges and
/// no parent, so every derived slice is empty and every walk stops.
const EMPTY_NODE: ClNode =
    ClNode { core: 0, parent: NONE, sub_off: 0, sub_len: 0, own_len: 0, kids_off: 0, kids_len: 0 };

/// The complete persistent state of a [`ClTree`] as parallel flat
/// arrays — the wire form snapshot writers serialize section by
/// section (struct-of-arrays, so every field is one contiguous
/// `memcpy`-shaped blob).
///
/// Produced by [`ClTree::to_flat`]; consumed (and fully re-validated)
/// by [`ClTree::from_flat`]. Per-node children lists are *not* part of
/// the state: they are the inverse of `parent` and are re-derived on
/// import.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClTreeFlat {
    /// Per-node core level.
    pub core: Vec<u32>,
    /// Per-node parent id (`u32::MAX` at forest roots). Always greater
    /// than the child id when present — construction creates deeper
    /// nodes first — which is what makes upward walks cycle-free.
    pub parent: Vec<u32>,
    /// Per-node arena offset of the node's subtree.
    pub sub_off: Vec<u32>,
    /// Per-node arena length of the node's subtree.
    pub sub_len: Vec<u32>,
    /// Per-node count of own vertices at the head of the subtree range.
    pub own_len: Vec<u32>,
    /// All member vertices in DFS order (the zero-copy query arena).
    pub arena: Vec<VertexId>,
    /// Sorted member vertices, parallel with `node_of`/`arena_pos`.
    pub members: Vec<VertexId>,
    /// Forest node holding each sorted member. (Per-member core
    /// numbers are not part of the flat state: a member's core is its
    /// node's level, and [`ClTree::from_flat`] re-derives them.)
    pub node_of: Vec<u32>,
    /// Arena position of each sorted member.
    pub arena_pos: Vec<u32>,
}

/// One forest node: a connected c-ĉore, minus the deeper ĉores nested
/// inside it (those are its children). Member vertices are held by the
/// owning [`ClTree`]'s arena (see [`ClTree::node_members`] and
/// [`ClTree::subtree_members`]); child ids by its `kids` arena (see
/// [`ClTree::children`]) — a node itself is six words, so cloning or
/// loading a tree allocates per *tree*, never per node.
#[derive(Clone, Copy, Debug)]
pub struct ClNode {
    /// Core level of this node.
    pub core: u32,
    /// Parent node id, or `u32::MAX` at a forest root.
    parent: u32,
    /// Arena offset of this node's subtree (own vertices first).
    sub_off: u32,
    /// Arena length of this node's whole subtree.
    sub_len: u32,
    /// How many of the leading `sub_len` entries are this node's own
    /// vertices (those whose core number equals `core`).
    own_len: u32,
    /// Offset of this node's child ids in the owning tree's `kids`.
    kids_off: u32,
    /// Number of child ids.
    kids_len: u32,
}

impl ClNode {
    /// Parent node id, if any.
    pub fn parent(&self) -> Option<u32> {
        (self.parent != NONE).then_some(self.parent)
    }
}

/// The CL-tree of a graph or induced subgraph (a forest when the
/// underlying vertex set is disconnected). Vertex ids are always ids of
/// the *host* graph, also when the tree indexes only a subset.
#[derive(Clone, Debug)]
pub struct ClTree {
    nodes: Vec<ClNode>,
    /// All child ids, one contiguous run per node (`kids_off`/
    /// `kids_len` in [`ClNode`]).
    kids: Vec<u32>,
    /// All member vertices in DFS order: each node's own vertices
    /// (sorted), then its children's subtrees.
    arena: Vec<VertexId>,
    /// Sorted member vertices, parallel with `node_of`.
    members: Vec<VertexId>,
    /// `node_of[i]` = forest node holding `members[i]`.
    node_of: Vec<u32>,
    /// Core number of `members[i]` (within the indexed subgraph).
    core_of: Vec<u32>,
    /// `arena_pos[i]` = index of `members[i]` inside `arena`. Because a
    /// ĉore is one contiguous arena range, "is `v` in this ĉore" is a
    /// range test on `arena_pos` — O(1) after the member lookup.
    arena_pos: Vec<u32>,
}

impl ClTree {
    /// Builds the CL-tree of the whole graph.
    pub fn build(g: &Graph) -> ClTree {
        Self::build_full(g, &CoreDecomposition::new(g))
    }

    /// Builds the CL-tree of the whole graph from an **already
    /// computed** core decomposition: no induced-subgraph copy and no
    /// re-peel. This is the sharded index's fast path for the root
    /// shard (every vertex carries the taxonomy root, so its CL-tree is
    /// exactly the global one, and the serving engine already holds the
    /// epoch's decomposition).
    ///
    /// `cores` must describe `g` — a decomposition of a different graph
    /// is a caller contract violation (wrong answers, not unsafety).
    pub fn build_full(g: &Graph, cores: &CoreDecomposition) -> ClTree {
        if g.num_vertices() == 0 {
            return Self::empty();
        }
        Self::assemble(g, cores, None)
    }

    /// Builds the CL-tree of the subgraph induced by `subset`
    /// (duplicates allowed; original vertex ids are retained).
    pub fn build_on_subset(g: &Graph, subset: &[VertexId]) -> ClTree {
        let (sub, ids) = g.induced_subgraph(subset);
        if sub.num_vertices() == 0 {
            return Self::empty();
        }
        let cd = CoreDecomposition::new(&sub);
        Self::assemble(&sub, &cd, Some(ids))
    }

    fn empty() -> ClTree {
        ClTree {
            nodes: Vec::new(),
            kids: Vec::new(),
            arena: Vec::new(),
            members: Vec::new(),
            node_of: Vec::new(),
            core_of: Vec::new(),
            arena_pos: Vec::new(),
        }
    }

    /// The shared construction core: union-find sweep + DFS arena
    /// layout over `sub` with core numbers `cd`. `ids` maps local ids
    /// back to host ids (`None` = identity, the whole-graph path).
    // audit:allow-block(no-index): build-time only (never on the query path); every index is a local vertex id < n or a node id < nodes.len() created by this very function
    // audit:allow-block(no-panic): union is guarded by ra != rb and the arena holds exactly the member set it was just built from; a failure here is a construction bug, not an input condition
    fn assemble(sub: &Graph, cd: &CoreDecomposition, ids: Option<Vec<VertexId>>) -> ClTree {
        let n = sub.num_vertices();
        let to_host = |v: u32| ids.as_ref().map_or(v, |ids| ids[v as usize]);
        let max_core = cd.max_core();

        // Vertices bucketed by core level (local ids).
        let mut at_level: Vec<Vec<u32>> = vec![Vec::new(); max_core as usize + 1];
        for v in 0..n as u32 {
            at_level[cd.core_number(v) as usize].push(v);
        }

        let mut uf = UnionFind::new(n);
        let mut active = vec![false; n];
        // Maximal already-built node ids inside each component, indexed
        // by the component's current union-find root (no hash map: root
        // ids are local vertex ids < n).
        let mut attached: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut nodes: Vec<ClNode> = Vec::new();
        // Children per node during construction; flattened into the
        // `kids` arena once the forest shape is final.
        let mut child_lists: Vec<Vec<u32>> = Vec::new();
        // Own vertices of every node (original host ids), flat with
        // per-node `(offset, len)` runs — one allocation for the whole
        // build instead of one per node; copied into the arena once
        // the forest shape is final.
        let mut own_flat: Vec<VertexId> = Vec::with_capacity(n);
        let mut own_runs: Vec<(u32, u32)> = Vec::new();
        let mut node_of_local = vec![NONE; n];
        // Scratch for the per-level sort-then-partition grouping.
        let mut level_buf: Vec<(u32, u32)> = Vec::new();

        for c in (0..=max_core).rev() {
            let level = &at_level[c as usize];
            for &v in level {
                active[v as usize] = true;
            }
            for &v in level {
                for &u in sub.neighbors(v) {
                    if active[u as usize] {
                        let (ra, rb) = (uf.find(v), uf.find(u));
                        if ra != rb {
                            let rnew = uf.union(ra, rb).expect("distinct roots");
                            let rold = if rnew == ra { rb } else { ra };
                            let moved = std::mem::take(&mut attached[rold as usize]);
                            attached[rnew as usize].extend(moved);
                        }
                    }
                }
            }
            // Group this level's vertices by final component root:
            // sort (root, vertex) pairs, then walk the runs. Sorting by
            // the pair also leaves each group's vertices sorted.
            level_buf.clear();
            level_buf.extend(level.iter().map(|&v| (uf.find(v), v)));
            level_buf.sort_unstable();
            let mut i = 0;
            while i < level_buf.len() {
                let root = level_buf[i].0;
                let mut j = i;
                while j < level_buf.len() && level_buf[j].0 == root {
                    j += 1;
                }
                let id = nodes.len() as u32;
                let children = std::mem::take(&mut attached[root as usize]);
                for &ch in &children {
                    nodes[ch as usize].parent = id;
                }
                for &(_, v) in &level_buf[i..j] {
                    node_of_local[v as usize] = id;
                }
                let off = own_flat.len() as u32;
                own_flat.extend(level_buf[i..j].iter().map(|&(_, v)| to_host(v)));
                own_runs.push((off, (j - i) as u32));
                child_lists.push(children);
                nodes.push(ClNode {
                    core: c,
                    parent: NONE,
                    sub_off: 0,
                    sub_len: 0,
                    own_len: 0,
                    kids_off: 0,
                    kids_len: 0,
                });
                attached[root as usize].push(id);
                i = j;
            }
        }
        debug_assert!(node_of_local.iter().all(|&x| x != NONE));

        // Lay the arena out in DFS order (own vertices before child
        // subtrees) and record per-node subtree ranges.
        let mut arena: Vec<VertexId> = Vec::with_capacity(n);
        enum Step {
            Enter(u32),
            Exit(u32),
        }
        let mut stack: Vec<Step> = (0..nodes.len() as u32)
            .rev()
            .filter(|&id| nodes[id as usize].parent == NONE)
            .map(Step::Enter)
            .collect();
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(id) => {
                    let node = &mut nodes[id as usize];
                    node.sub_off = arena.len() as u32;
                    let (off, len) = own_runs[id as usize];
                    node.own_len = len;
                    arena.extend_from_slice(&own_flat[off as usize..(off + len) as usize]);
                    stack.push(Step::Exit(id));
                    for &ch in child_lists[id as usize].iter().rev() {
                        stack.push(Step::Enter(ch));
                    }
                }
                Step::Exit(id) => {
                    let node = &mut nodes[id as usize];
                    node.sub_len = arena.len() as u32 - node.sub_off;
                }
            }
        }
        debug_assert_eq!(arena.len(), n);
        // Flatten the per-node child lists into one arena.
        let mut kids: Vec<u32> = Vec::with_capacity(nodes.len());
        for (id, list) in child_lists.into_iter().enumerate() {
            nodes[id].kids_off = kids.len() as u32;
            nodes[id].kids_len = list.len() as u32;
            kids.extend(list);
        }
        // Invert the arena: where did each (sorted) member land?
        let mut arena_pos = vec![0u32; n];
        for (pos, &v) in arena.iter().enumerate() {
            let i = match &ids {
                Some(ids) => ids.binary_search(&v).expect("arena holds exactly the members"),
                None => v as usize,
            };
            arena_pos[i] = pos as u32;
        }

        let core_of: Vec<u32> = (0..n as u32).map(|v| cd.core_number(v)).collect();
        let members = ids.unwrap_or_else(|| (0..n as VertexId).collect());
        ClTree { nodes, kids, arena, members, node_of: node_of_local, core_of, arena_pos }
    }

    /// Exports the tree's complete persistent state as flat arrays
    /// (copies; the tree itself is untouched). See [`ClTreeFlat`].
    pub fn to_flat(&self) -> ClTreeFlat {
        ClTreeFlat {
            core: self.nodes.iter().map(|n| n.core).collect(),
            parent: self.nodes.iter().map(|n| n.parent).collect(),
            sub_off: self.nodes.iter().map(|n| n.sub_off).collect(),
            sub_len: self.nodes.iter().map(|n| n.sub_len).collect(),
            own_len: self.nodes.iter().map(|n| n.own_len).collect(),
            arena: self.arena.clone(),
            members: self.members.clone(),
            node_of: self.node_of.clone(),
            arena_pos: self.arena_pos.clone(),
        }
    }

    /// Reconstructs a tree from flat arrays, validating every
    /// structural invariant the query paths rely on — a malformed input
    /// yields [`IndexError::CorruptIndex`], never a tree that could
    /// hang an upward walk or answer wrongly. O(nodes + members).
    ///
    /// Checked invariants: consistent array lengths; strictly sorted
    /// members; parent ids greater than their child's (so ancestor
    /// walks terminate) with strictly decreasing core levels upward;
    /// subtree ranges inside the arena, with `own_len ≤ sub_len`, and
    /// a **laminar arena geometry** — every node's children exactly
    /// tile the tail of its range after the own-vertex prefix, and the
    /// roots exactly tile the whole arena, so no slice a query can
    /// return ever overlaps a sibling ĉore; `arena_pos` a true inverse
    /// (`arena[arena_pos[i]] == members[i]`, hence a permutation);
    /// every member located inside its own node's own-vertex range.
    /// Per-member core numbers are derived (`core[node_of[i]]`), not
    /// trusted.
    // audit:allow-block(no-index): this function IS the validator guarding the query path — all array lengths are cross-checked at entry and every id is range-checked before the first indexed use; a checked rewrite would obscure which line validates which invariant
    pub fn from_flat(flat: ClTreeFlat) -> Result<ClTree> {
        let corrupt = |detail: String| IndexError::CorruptIndex { detail };
        let n_nodes = flat.core.len();
        let n_members = flat.members.len();
        if [flat.parent.len(), flat.sub_off.len(), flat.sub_len.len(), flat.own_len.len()]
            .iter()
            .any(|&l| l != n_nodes)
        {
            return Err(corrupt("node arrays disagree on length".into()));
        }
        if [flat.node_of.len(), flat.arena_pos.len(), flat.arena.len()]
            .iter()
            .any(|&l| l != n_members)
        {
            return Err(corrupt("member arrays disagree on length".into()));
        }
        if n_nodes >= NONE as usize {
            return Err(corrupt(format!("{n_nodes} nodes overflow the id space")));
        }
        if flat.members.windows(2).any(|w| w[0] >= w[1]) {
            return Err(corrupt("member list is unsorted or holds duplicates".into()));
        }
        let mut kid_counts: Vec<u32> = vec![0; n_nodes];
        for id in 0..n_nodes {
            let p = flat.parent[id];
            if p != NONE {
                // Deeper ĉores are created first, so a legal parent id is
                // always larger — and that ordering is exactly what rules
                // out parent-link cycles.
                if (p as usize) >= n_nodes || (p as usize) <= id {
                    return Err(corrupt(format!("node {id} has non-topological parent {p}")));
                }
                if flat.core[p as usize] >= flat.core[id] {
                    return Err(corrupt(format!("node {id} does not deepen below parent {p}")));
                }
                kid_counts[p as usize] += 1;
            }
            let (off, len, own) =
                (flat.sub_off[id] as usize, flat.sub_len[id] as usize, flat.own_len[id] as usize);
            if off + len > n_members || own > len {
                return Err(corrupt(format!("node {id} subtree range escapes the arena")));
            }
            if p != NONE {
                // The parent's own range bound is checked on its later
                // iteration; compare in u64 so an adversarial near-MAX
                // offset cannot wrap here first.
                let (poff, plen) =
                    (flat.sub_off[p as usize] as u64, flat.sub_len[p as usize] as u64);
                if (flat.sub_off[id] as u64) < poff || (off + len) as u64 > poff + plen {
                    return Err(corrupt(format!("node {id} range not nested in parent {p}")));
                }
            }
        }
        let mut core_of = Vec::with_capacity(n_members);
        for i in 0..n_members {
            let (node, pos) = (flat.node_of[i], flat.arena_pos[i]);
            if node as usize >= n_nodes {
                return Err(corrupt(format!("member {i} points at missing node {node}")));
            }
            if pos as usize >= n_members || flat.arena[pos as usize] != flat.members[i] {
                return Err(corrupt(format!("arena_pos of member {i} is not an inverse")));
            }
            // Each member sits in the own-vertex prefix of its node's
            // range — the placement `community_ref`'s range tests
            // assume — and inherits that node's core level.
            let id = node as usize;
            if pos < flat.sub_off[id] || pos >= flat.sub_off[id] + flat.own_len[id] {
                return Err(corrupt(format!("member {i} lies outside its node's own range")));
            }
            core_of.push(flat.core[id]);
        }
        // Children are the inverse of `parent`: counting scatter, two
        // allocations total (ids ascending within each parent's run).
        let mut kids_off: Vec<u32> = Vec::with_capacity(n_nodes);
        let mut acc = 0u32;
        for &c in &kid_counts {
            kids_off.push(acc);
            acc += c;
        }
        let mut kids = vec![0u32; acc as usize];
        let mut cursor = kids_off.clone();
        for id in 0..n_nodes {
            let p = flat.parent[id];
            if p != NONE {
                kids[cursor[p as usize] as usize] = id as u32;
                cursor[p as usize] += 1;
            }
        }
        // Laminar geometry: each node's children must exactly tile the
        // tail of its subtree range after the own prefix (and the roots
        // the whole arena) — nesting alone would still admit
        // sibling-overlapping ranges, i.e. communities leaking into
        // each other.
        let tile = |start: u32, end: u32, spans: &mut Vec<(u32, u32)>| -> bool {
            spans.sort_unstable();
            let mut at = start;
            for &(off, len) in spans.iter() {
                if off != at {
                    return false;
                }
                at += len;
            }
            at == end
        };
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for id in 0..n_nodes {
            spans.clear();
            let run = (kids_off[id] as usize)..(kids_off[id] + kid_counts[id]) as usize;
            spans.extend(
                kids[run].iter().map(|&ch| (flat.sub_off[ch as usize], flat.sub_len[ch as usize])),
            );
            let start = flat.sub_off[id] + flat.own_len[id];
            if !tile(start, flat.sub_off[id] + flat.sub_len[id], &mut spans) {
                return Err(corrupt(format!("children of node {id} do not tile its range")));
            }
        }
        spans.clear();
        spans.extend(
            (0..n_nodes)
                .filter(|&id| flat.parent[id] == NONE)
                .map(|id| (flat.sub_off[id], flat.sub_len[id])),
        );
        if !tile(0, n_members as u32, &mut spans) {
            return Err(corrupt("root ranges do not tile the arena".into()));
        }
        let nodes = (0..n_nodes)
            .map(|id| ClNode {
                core: flat.core[id],
                parent: flat.parent[id],
                sub_off: flat.sub_off[id],
                sub_len: flat.sub_len[id],
                own_len: flat.own_len[id],
                kids_off: kids_off[id],
                kids_len: kid_counts[id],
            })
            .collect();
        Ok(ClTree {
            nodes,
            kids,
            arena: flat.arena,
            members: flat.members,
            node_of: flat.node_of,
            core_of,
            arena_pos: flat.arena_pos,
        })
    }

    /// Test-only corruption hook: reassembles a tree from flat arrays
    /// with **none** of [`ClTree::from_flat`]'s validation, so the
    /// `debug-invariants` mutation tests can plant geometry lies
    /// (overlapping subtree ranges, dishonest `own_len`) and assert
    /// that `verify_deep`'s round-trip through the real validator
    /// catches them. Never use outside those tests.
    #[cfg(feature = "debug-invariants")]
    pub fn from_flat_unchecked_for_test(flat: ClTreeFlat) -> ClTree {
        let n_nodes = flat.core.len();
        let mut kid_counts: Vec<u32> = vec![0; n_nodes];
        for &p in &flat.parent {
            if p != NONE {
                if let Some(c) = kid_counts.get_mut(p as usize) {
                    *c += 1;
                }
            }
        }
        let mut kids_off: Vec<u32> = Vec::with_capacity(n_nodes);
        let mut acc = 0u32;
        for &c in &kid_counts {
            kids_off.push(acc);
            acc += c;
        }
        let mut kids = vec![0u32; acc as usize];
        let mut cursor = kids_off.clone();
        for (id, &p) in flat.parent.iter().enumerate() {
            if p != NONE {
                if let Some(cu) = cursor.get_mut(p as usize) {
                    if let Some(slot) = kids.get_mut(*cu as usize) {
                        *slot = id as u32;
                    }
                    *cu += 1;
                }
            }
        }
        let core_of: Vec<u32> = flat
            .node_of
            .iter()
            .map(|&nd| flat.core.get(nd as usize).copied().unwrap_or(0))
            .collect();
        let nodes: Vec<ClNode> = (0..n_nodes)
            .map(|id| ClNode {
                core: flat.core.get(id).copied().unwrap_or(0),
                parent: flat.parent.get(id).copied().unwrap_or(NONE),
                sub_off: flat.sub_off.get(id).copied().unwrap_or(0),
                sub_len: flat.sub_len.get(id).copied().unwrap_or(0),
                own_len: flat.own_len.get(id).copied().unwrap_or(0),
                kids_off: kids_off.get(id).copied().unwrap_or(0),
                kids_len: kid_counts.get(id).copied().unwrap_or(0),
            })
            .collect();
        ClTree {
            nodes,
            kids,
            arena: flat.arena,
            members: flat.members,
            node_of: flat.node_of,
            core_of,
            arena_pos: flat.arena_pos,
        }
    }

    /// Number of forest nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.members.len()
    }

    /// The sorted vertex ids this tree indexes.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Consumes the tree, yielding its sorted member list without a
    /// copy (the incremental CP-tree patcher's rebuild seed).
    pub fn into_members(self) -> Vec<VertexId> {
        self.members
    }

    /// Checked node lookup; out-of-range ids read as [`EMPTY_NODE`].
    #[inline]
    fn nd(&self, id: u32) -> &ClNode {
        self.nodes.get(id as usize).unwrap_or(&EMPTY_NODE)
    }

    /// Forest node by id.
    pub fn node(&self, id: u32) -> &ClNode {
        self.nd(id)
    }

    /// Child node ids of `id` (deeper ĉores merged under it).
    pub fn children(&self, id: u32) -> &[u32] {
        let node = self.nd(id);
        self.kids
            .get(node.kids_off as usize..(node.kids_off + node.kids_len) as usize)
            .unwrap_or(&[])
    }

    /// The vertices whose core number equals `node(id).core` within
    /// this ĉore (sorted).
    pub fn node_members(&self, id: u32) -> &[VertexId] {
        let node = self.nd(id);
        self.arena.get(node.sub_off as usize..(node.sub_off + node.own_len) as usize).unwrap_or(&[])
    }

    /// All vertices of the ĉore rooted at `id` — the node's whole
    /// subtree — as a borrowed arena slice. Distinct but **not
    /// globally sorted** (DFS order); sort a copy if order matters.
    pub fn subtree_members(&self, id: u32) -> &[VertexId] {
        let node = self.nd(id);
        self.arena.get(node.sub_off as usize..(node.sub_off + node.sub_len) as usize).unwrap_or(&[])
    }

    /// True when `v` is indexed by this tree.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// True when `v` belongs to the ĉore rooted at node `id` — a
    /// member lookup plus an O(1) arena range test, never a walk of
    /// the subtree. The membership companion to the
    /// [`ClTree::community_ref`] slice view: consumers holding a slice
    /// can answer "is `v` in this community" without sorting or
    /// scanning it.
    #[inline]
    pub fn subtree_contains(&self, id: u32, v: VertexId) -> bool {
        let Ok(i) = self.members.binary_search(&v) else {
            return false;
        };
        let node = self.nd(id);
        self.arena_pos
            .get(i)
            .is_some_and(|&pos| pos >= node.sub_off && pos < node.sub_off + node.sub_len)
    }

    /// Core number of `v` within the indexed subgraph, if present.
    pub fn core_of(&self, v: VertexId) -> Option<u32> {
        let i = self.members.binary_search(&v).ok()?;
        self.core_of.get(i).copied()
    }

    /// The `vertexNodeMap` lookup: the forest node holding `v`.
    pub fn node_of(&self, v: VertexId) -> Option<u32> {
        let i = self.members.binary_search(&v).ok()?;
        self.node_of.get(i).copied()
    }

    /// The forest node whose subtree *is* the k-ĉore of `q`: the
    /// shallowest ancestor of `q`'s node still at core level ≥ `k`.
    /// `None` when `q` is absent or its core number is below `k`.
    ///
    /// Two vertices lie in the same k-ĉore iff they report the same
    /// summit — an O(max_core) containment test without collecting the
    /// ĉore itself, used by the incremental CP-tree maintenance to
    /// prove an edge insertion merges nothing.
    pub fn summit(&self, q: VertexId, k: u32) -> Option<u32> {
        let i = self.members.binary_search(&q).ok()?;
        if self.core_of.get(i).copied()? < k {
            return None;
        }
        // Parent ids strictly increase upward (validated on import), so
        // the walk terminates; an out-of-range id reads as a root.
        let mut cur = self.node_of.get(i).copied()?;
        loop {
            let p = self.nd(cur).parent;
            if p == NONE || self.nd(p).core < k {
                break;
            }
            cur = p;
        }
        Some(cur)
    }

    /// The k-ĉore containing `q` as a borrowed arena slice, or `None`
    /// when `q` is absent or its core number is below `k`.
    ///
    /// This is the query hot path: O(path-to-ancestor), **zero
    /// allocation, zero copying** — the community of `(q, k)` is
    /// exactly one contiguous arena range. The slice holds distinct
    /// vertices in DFS (not sorted) order.
    #[inline]
    pub fn community_ref(&self, q: VertexId, k: u32) -> Option<&[VertexId]> {
        Some(self.subtree_members(self.summit(q, k)?))
    }

    /// The k-ĉore containing `q` (sorted), or `None` when `q` is absent
    /// or its core number is below `k`.
    ///
    /// Thin owned wrapper over [`ClTree::community_ref`], kept for API
    /// compatibility and for callers needing sorted order. **Prefer
    /// `community_ref` anywhere performance matters** — this copies and
    /// sorts the answer on every call.
    pub fn get(&self, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        let mut out = self.community_ref(q, k)?.to_vec();
        out.sort_unstable();
        Some(out)
    }

    /// Iterator over forest roots.
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.parent == NONE).map(|(id, _)| id as u32)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.arena.len() * size_of::<VertexId>()
            + self.members.len() * (size_of::<VertexId>() + 3 * size_of::<u32>())
            + self.nodes.len() * size_of::<ClNode>()
            + self.kids.len() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::Graph;

    /// The paper's Fig. 4(a) graph: A..H = 0..7.
    fn figure4() -> Graph {
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_structure() {
        let g = figure4();
        let t = ClTree::build(&g);
        // Fig. 4(b): root 0:# (core 0, no vertices at level 0 here since
        // all vertices have core >= 2 — so the forest root is at core 2).
        // Expected: one core-2 node holding {C} and {F,G,H}... they are
        // a single 2-ĉore (E-F bridge), child = core-3 node {A,B,D,E}.
        assert!(t.num_nodes() >= 2);
        // get checks (the real contract).
        assert_eq!(t.get(3, 3).unwrap(), vec![0, 1, 3, 4]);
        assert_eq!(t.get(2, 2).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(t.get(6, 2).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(t.get(2, 3).is_none());
        assert!(t.get(0, 4).is_none());
        // k=0/1 return the whole (connected) graph.
        assert_eq!(t.get(0, 0).unwrap().len(), 8);
        assert_eq!(t.get(0, 1).unwrap().len(), 8);
    }

    #[test]
    fn matches_core_decomposition_everywhere() {
        let g = figure4();
        let t = ClTree::build(&g);
        let cd = CoreDecomposition::new(&g);
        for q in g.vertices() {
            assert_eq!(t.core_of(q), Some(cd.core_number(q)));
            for k in 0..=4 {
                assert_eq!(t.get(q, k), cd.kcore_component(&g, q, k), "q={q} k={k}");
            }
        }
    }

    /// `community_ref` must be set-equal to the owned path and truly
    /// borrowed: repeated probes return the identical arena slice.
    #[test]
    fn community_ref_is_borrowed_and_set_equal() {
        let g = figure4();
        let t = ClTree::build(&g);
        for q in g.vertices() {
            for k in 0..=4 {
                match (t.community_ref(q, k), t.get(q, k)) {
                    (None, None) => {}
                    (Some(slice), Some(owned)) => {
                        let mut sorted = slice.to_vec();
                        sorted.sort_unstable();
                        assert_eq!(sorted, owned, "q={q} k={k}");
                        // Zero-copy: the same probe yields the same
                        // pointer into the arena, every time.
                        let again = t.community_ref(q, k).unwrap();
                        assert_eq!(slice.as_ptr(), again.as_ptr());
                        assert_eq!(slice.len(), again.len());
                        let arena_range = t.arena.as_ptr_range();
                        assert!(arena_range.contains(&slice.as_ptr()));
                    }
                    (r, o) => panic!("q={q} k={k}: ref={r:?} owned={o:?}"),
                }
            }
        }
    }

    /// Every node's subtree slice equals its own members plus its
    /// children's subtree slices — the DFS nesting invariant.
    #[test]
    fn arena_ranges_nest() {
        let g = figure4();
        let t = ClTree::build(&g);
        for id in 0..t.num_nodes() as u32 {
            let mut expect: Vec<VertexId> = t.node_members(id).to_vec();
            for &ch in t.children(id) {
                expect.extend_from_slice(t.subtree_members(ch));
            }
            expect.sort_unstable();
            let mut got = t.subtree_members(id).to_vec();
            got.sort_unstable();
            assert_eq!(got, expect, "node {id}");
            // Children ranges are contained in the parent range.
            for &ch in t.children(id) {
                let p = t.node(id);
                let c = t.node(ch);
                assert!(c.sub_off >= p.sub_off);
                assert!(c.sub_off + c.sub_len <= p.sub_off + p.sub_len);
            }
        }
    }

    #[test]
    fn subtree_contains_matches_slice() {
        let g = figure4();
        let t = ClTree::build(&g);
        for id in 0..t.num_nodes() as u32 {
            let slice = t.subtree_members(id);
            for v in 0..10u32 {
                assert_eq!(t.subtree_contains(id, v), slice.contains(&v), "node {id} v {v}");
            }
        }
    }

    #[test]
    fn disconnected_graph_is_a_forest() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let t = ClTree::build(&g);
        assert_eq!(t.roots().count(), 3); // two triangles + isolated 6
        assert_eq!(t.get(0, 2).unwrap(), vec![0, 1, 2]);
        assert_eq!(t.get(4, 2).unwrap(), vec![3, 4, 5]);
        assert_eq!(t.get(6, 0).unwrap(), vec![6]);
        assert!(t.get(6, 1).is_none());
        // 0-ĉores are per-component, never merged.
        assert_eq!(t.get(0, 0).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn subset_build_uses_original_ids() {
        let g = figure4();
        // Index only {A,B,D,E,C} (0,1,3,4,2).
        let t = ClTree::build_on_subset(&g, &[0, 1, 2, 3, 4]);
        assert_eq!(t.num_vertices(), 5);
        assert!(t.contains_vertex(0));
        assert!(!t.contains_vertex(5));
        assert_eq!(t.get(0, 3).unwrap(), vec![0, 1, 3, 4]);
        assert_eq!(t.get(2, 2).unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(t.get(5, 0).is_none());
        assert_eq!(t.core_of(2), Some(2));
        assert_eq!(t.core_of(7), None);
    }

    #[test]
    fn empty_subset() {
        let g = figure4();
        let t = ClTree::build_on_subset(&g, &[]);
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_vertices(), 0);
        assert!(t.get(0, 0).is_none());
        assert!(t.community_ref(0, 0).is_none());
    }

    #[test]
    fn randomized_against_decomposition() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..15 {
            let n = 40;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.12) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let t = ClTree::build(&g);
            let cd = CoreDecomposition::new(&g);
            for q in 0..n as u32 {
                for k in 0..=cd.max_core() + 1 {
                    assert_eq!(t.get(q, k), cd.kcore_component(&g, q, k), "q={q} k={k}");
                    // The slice view stays set-equal to the owned path.
                    let as_set = t.community_ref(q, k).map(|s| {
                        let mut v = s.to_vec();
                        v.sort_unstable();
                        v
                    });
                    assert_eq!(as_set, t.get(q, k), "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn randomized_subset_against_induced() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..15 {
            let n = 30;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.15) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let subset: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.6)).collect();
            let t = ClTree::build_on_subset(&g, &subset);
            let (sub, ids) = g.induced_subgraph(&subset);
            let cd = CoreDecomposition::new(&sub);
            for (local, &orig) in ids.iter().enumerate() {
                for k in 0..4 {
                    let expect = cd
                        .kcore_component(&sub, local as u32, k)
                        .map(|c| c.into_iter().map(|v| ids[v as usize]).collect::<Vec<_>>());
                    assert_eq!(t.get(orig, k), expect);
                }
            }
        }
    }

    #[test]
    fn summit_identifies_shared_cores() {
        let g = figure4();
        let t = ClTree::build(&g);
        // A and D share the 3-ĉore {A,B,D,E}; C is outside it.
        assert_eq!(t.summit(0, 3), t.summit(3, 3));
        assert!(t.summit(2, 3).is_none());
        // At k=2 the whole graph is one ĉore.
        assert_eq!(t.summit(2, 2), t.summit(6, 2));
        // Summit's subtree equals get().
        let nid = t.summit(0, 3).unwrap();
        let mut collected = t.subtree_members(nid).to_vec();
        collected.sort_unstable();
        assert_eq!(collected, t.get(0, 3).unwrap());
    }

    /// `to_flat` → `from_flat` reproduces the whole query surface, and
    /// the flat form is byte-stable across the round trip.
    #[test]
    fn flat_round_trip() {
        let g = figure4();
        let t = ClTree::build(&g);
        let flat = t.to_flat();
        let back = ClTree::from_flat(flat.clone()).unwrap();
        assert_eq!(back.to_flat(), flat, "round trip is stable");
        for q in g.vertices() {
            for k in 0..=4 {
                assert_eq!(t.get(q, k), back.get(q, k), "q={q} k={k}");
                assert_eq!(
                    t.community_ref(q, k).map(<[VertexId]>::to_vec),
                    back.community_ref(q, k).map(<[VertexId]>::to_vec)
                );
            }
            assert_eq!(t.core_of(q), back.core_of(q));
            assert_eq!(t.node_of(q), back.node_of(q));
        }
        // Empty tree round-trips too.
        let empty = ClTree::build_on_subset(&g, &[]);
        assert_eq!(ClTree::from_flat(empty.to_flat()).unwrap().num_nodes(), 0);
    }

    /// Every class of malformed flat input is rejected with
    /// `CorruptIndex`, never adopted.
    #[test]
    fn from_flat_rejects_corruption() {
        let g = figure4();
        let good = ClTree::build(&g).to_flat();
        let corrupt = |mutate: &dyn Fn(&mut ClTreeFlat)| {
            let mut f = good.clone();
            mutate(&mut f);
            ClTree::from_flat(f).unwrap_err()
        };
        let is_corrupt = |e: crate::IndexError| matches!(e, crate::IndexError::CorruptIndex { .. });
        assert!(is_corrupt(corrupt(&|f| {
            f.core.pop();
        })));
        assert!(is_corrupt(corrupt(&|f| {
            f.arena.pop();
        })));
        assert!(is_corrupt(corrupt(&|f| f.members.swap(0, 1))));
        assert!(is_corrupt(corrupt(&|f| f.parent[0] = 0))); // self/backward parent
        assert!(is_corrupt(corrupt(&|f| f.sub_len[0] = u32::MAX)));
        assert!(is_corrupt(corrupt(&|f| f.node_of[0] = 99)));
        assert!(is_corrupt(corrupt(&|f| f.arena_pos[0] = 99)));
        assert!(is_corrupt(corrupt(&|f| {
            // Two nodes at the same level on one path.
            if let Some(p) = f.parent.iter().position(|&p| p != super::NONE) {
                f.core[p] = f.core[f.parent[p] as usize];
            } else {
                f.core.pop(); // fallback: still corrupt
            }
        })));
    }

    /// A forged flat tree whose sibling (or root) ranges overlap —
    /// individually nested, cores fine, members placed — must still be
    /// rejected: overlapping ranges would leak one community's
    /// vertices into another.
    #[test]
    fn from_flat_rejects_overlapping_ranges() {
        // Two K4s bridged through a low-core hub: one core-2 root whose
        // two children are the core-3 K4 ĉores.
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (4, 6),
                (4, 7),
                (5, 6),
                (5, 7),
                (6, 7),
                (8, 0),
                (8, 4),
            ],
        )
        .unwrap();
        let flat = ClTree::build(&g).to_flat();
        let root = (0..flat.parent.len()).position(|i| flat.parent[i] == super::NONE).unwrap();
        let kids: Vec<usize> =
            (0..flat.parent.len()).filter(|&i| flat.parent[i] as usize == root).collect();
        assert_eq!(kids.len(), 2, "root must hold the two K4 ĉores");
        // Extend the earlier child's range over its sibling: still
        // nested in the root, own prefix and member placement intact.
        let (a, b) = if flat.sub_off[kids[0]] < flat.sub_off[kids[1]] {
            (kids[0], kids[1])
        } else {
            (kids[1], kids[0])
        };
        let mut bad = flat.clone();
        bad.sub_len[a] += flat.sub_len[b];
        assert!(
            matches!(ClTree::from_flat(bad), Err(crate::IndexError::CorruptIndex { .. })),
            "sibling overlap must be rejected"
        );
        // Sanity: the untouched flat form still loads.
        assert!(ClTree::from_flat(flat).is_ok());

        // Root-level overlap on a forest (three roots).
        let forest =
            Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let flat = ClTree::build(&forest).to_flat();
        let mut roots: Vec<usize> =
            (0..flat.parent.len()).filter(|&i| flat.parent[i] == super::NONE).collect();
        roots.sort_by_key(|&i| flat.sub_off[i]);
        assert!(roots.len() >= 2);
        let mut bad = flat.clone();
        bad.sub_len[roots[0]] += flat.sub_len[roots[1]];
        assert!(
            matches!(ClTree::from_flat(bad), Err(crate::IndexError::CorruptIndex { .. })),
            "root overlap must be rejected"
        );
    }

    #[test]
    fn node_accessors() {
        let g = figure4();
        let t = ClTree::build(&g);
        let nid = t.node_of(2).unwrap();
        let node = t.node(nid);
        assert_eq!(node.core, 2);
        assert!(t.node_members(nid).contains(&2));
        assert!(t.memory_bytes() > 0);
        // The deepest node has a parent chain ending at a root.
        let deep = t.node_of(0).unwrap();
        let mut cur = deep;
        let mut steps = 0;
        while let Some(p) = t.node(cur).parent() {
            cur = p;
            steps += 1;
            assert!(steps < 100, "cycle in parent links");
        }
        assert!(t.roots().any(|r| r == cur));
    }
}
