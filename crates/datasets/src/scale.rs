//! Percentage sub-sampling for the scalability sweeps.
//!
//! Fig. 13 (index construction) and Fig. 14(e-p) (queries) vary three
//! independent axes at 20/40/60/80/100 %:
//!
//! * [`subsample_vertices`] — keep a random vertex fraction and induce
//!   the subgraph (the paper's "percentage of vertices");
//! * [`subsample_ptrees`] — shrink every vertex's P-tree to a fraction
//!   of its nodes, preserving ancestor closure ("percentage of
//!   P-trees");
//! * [`subsample_gptree`] — shrink the GP-tree itself to a fraction of
//!   its labels (downward-closed), remapping every profile into the
//!   reduced taxonomy ("percentage of GP-tree").

use pcs_graph::VertexId;
use pcs_ptree::{LabelId, PTree, Taxonomy};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::gen::ProfiledDataset;

/// Keeps a random `fraction` of the vertices (at least 2) and the
/// induced subgraph; profiles and ground-truth groups are remapped.
pub fn subsample_vertices(ds: &ProfiledDataset, fraction: f64, seed: u64) -> ProfiledDataset {
    assert!((0.0..=1.0).contains(&fraction));
    let n = ds.graph.num_vertices();
    let keep_n = ((n as f64 * fraction) as usize).clamp(2.min(n), n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ids: Vec<VertexId> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    ids.truncate(keep_n);
    ids.sort_unstable();
    let (graph, kept) = ds.graph.induced_subgraph(&ids);
    let mut new_id = vec![u32::MAX; n];
    for (new, &old) in kept.iter().enumerate() {
        new_id[old as usize] = new as u32;
    }
    let profiles: Vec<PTree> = kept.iter().map(|&v| ds.profiles[v as usize].clone()).collect();
    let groups: Vec<Vec<VertexId>> = ds
        .groups
        .iter()
        .map(|g| {
            let mut mapped: Vec<VertexId> = g
                .iter()
                .filter_map(|&v| {
                    let nv = new_id[v as usize];
                    (nv != u32::MAX).then_some(nv)
                })
                .collect();
            mapped.sort_unstable();
            mapped
        })
        .filter(|g| !g.is_empty())
        .collect();
    ProfiledDataset {
        name: format!("{}@V{:.0}%", ds.name, fraction * 100.0),
        graph,
        tax: ds.tax.clone(),
        profiles,
        groups,
    }
}

/// Shrinks one P-tree to roughly `fraction` of its nodes by repeatedly
/// dropping random leaves (ancestor closure is preserved; the root
/// always stays).
pub fn shrink_ptree(tax: &Taxonomy, p: &PTree, fraction: f64, rng: &mut SmallRng) -> PTree {
    assert!((0.0..=1.0).contains(&fraction));
    let target = ((p.len() as f64 * fraction) as usize).max(1);
    let mut nodes: Vec<LabelId> = p.nodes().to_vec();
    while nodes.len() > target {
        // Leaves of the current set: members none of whose children are
        // members.
        let leaves: Vec<usize> = (0..nodes.len())
            .filter(|&i| {
                nodes[i] != Taxonomy::ROOT
                    && tax.children(nodes[i]).iter().all(|c| nodes.binary_search(c).is_err())
            })
            .collect();
        if leaves.is_empty() {
            break;
        }
        let drop = leaves[rng.gen_range(0..leaves.len())];
        nodes.remove(drop);
    }
    PTree::from_closed_sorted(tax, nodes).expect("pruning leaves keeps closure")
}

/// Applies [`shrink_ptree`] to every vertex.
pub fn subsample_ptrees(ds: &ProfiledDataset, fraction: f64, seed: u64) -> ProfiledDataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let profiles: Vec<PTree> =
        ds.profiles.iter().map(|p| shrink_ptree(&ds.tax, p, fraction, &mut rng)).collect();
    ProfiledDataset {
        name: format!("{}@P{:.0}%", ds.name, fraction * 100.0),
        graph: ds.graph.clone(),
        tax: ds.tax.clone(),
        profiles,
        groups: ds.groups.clone(),
    }
}

/// Shrinks the GP-tree to roughly `fraction` of its labels (a random
/// downward-closed subset containing the root), rebuilds a dense
/// taxonomy, and maps every profile into it.
pub fn subsample_gptree(ds: &ProfiledDataset, fraction: f64, seed: u64) -> ProfiledDataset {
    assert!((0.0..=1.0).contains(&fraction));
    let old = &ds.tax;
    let target = ((old.len() as f64 * fraction) as usize).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Grow a random downward-closed kept-set from the root: repeatedly
    // add a random not-yet-kept child of a kept node.
    let mut kept = vec![false; old.len()];
    kept[Taxonomy::ROOT as usize] = true;
    let mut frontier: Vec<LabelId> = old.children(Taxonomy::ROOT).to_vec();
    let mut kept_count = 1usize;
    while kept_count < target && !frontier.is_empty() {
        let i = rng.gen_range(0..frontier.len());
        let id = frontier.swap_remove(i);
        if kept[id as usize] {
            continue;
        }
        kept[id as usize] = true;
        kept_count += 1;
        frontier.extend_from_slice(old.children(id));
    }

    // Rebuild a dense taxonomy over the kept labels (BFS keeps parents
    // before children) and record the id mapping.
    let mut new_tax = Taxonomy::new("r");
    let mut map = vec![u32::MAX; old.len()];
    map[Taxonomy::ROOT as usize] = Taxonomy::ROOT;
    let mut queue: Vec<LabelId> = old.children(Taxonomy::ROOT).to_vec();
    while let Some(id) = queue.pop() {
        if !kept[id as usize] {
            continue;
        }
        let parent_new = map[old.parent(id) as usize];
        debug_assert_ne!(parent_new, u32::MAX, "parents processed first");
        let new_id =
            new_tax.add_child(parent_new, old.label(id)).expect("labels unique in source taxonomy");
        map[id as usize] = new_id;
        // Depth-first is fine: children enqueued after their parent got
        // an id.
        queue.extend_from_slice(old.children(id));
    }

    let profiles: Vec<PTree> = ds
        .profiles
        .iter()
        .map(|p| {
            let labels = p
                .nodes()
                .iter()
                .copied()
                .filter(|&l| kept[l as usize] && l != Taxonomy::ROOT)
                .map(|l| map[l as usize]);
            PTree::from_labels(&new_tax, labels).expect("mapped labels exist")
        })
        .collect();

    ProfiledDataset {
        name: format!("{}@GP{:.0}%", ds.name, fraction * 100.0),
        graph: ds.graph.clone(),
        tax: new_tax,
        profiles,
        groups: ds.groups.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec};
    use crate::taxonomy::random_taxonomy;

    fn small() -> ProfiledDataset {
        generate(&DatasetSpec::small("s", 300, 11), random_taxonomy(200, 5, 8, 2))
    }

    #[test]
    fn vertex_subsample_sizes() {
        let ds = small();
        for f in [0.2, 0.6, 1.0] {
            let sub = subsample_vertices(&ds, f, 3);
            let expect = (300.0 * f) as usize;
            assert_eq!(sub.graph.num_vertices(), expect);
            assert_eq!(sub.profiles.len(), expect);
            // Edges only among kept vertices.
            assert!(sub.graph.num_edges() <= ds.graph.num_edges());
        }
        // Full fraction preserves the graph exactly.
        let full = subsample_vertices(&ds, 1.0, 3);
        assert_eq!(full.graph, ds.graph);
    }

    #[test]
    fn ptree_subsample_preserves_closure() {
        let ds = small();
        let sub = subsample_ptrees(&ds, 0.4, 9);
        assert_eq!(sub.profiles.len(), ds.profiles.len());
        for (orig, shrunk) in ds.profiles.iter().zip(sub.profiles.iter()) {
            assert!(ds.tax.is_ancestor_closed(shrunk.nodes()));
            assert!(shrunk.is_subtree_of(orig));
            assert!(shrunk.len() <= orig.len());
        }
        let avg_orig = ds.avg_ptree_size();
        let avg_sub = sub.avg_ptree_size();
        assert!(avg_sub < avg_orig * 0.7, "{avg_sub} vs {avg_orig}");
    }

    #[test]
    fn gptree_subsample_remaps_profiles() {
        let ds = small();
        for f in [0.3, 0.7] {
            let sub = subsample_gptree(&ds, f, 17);
            assert!(sub.tax.len() <= (200.0 * f) as usize + 1);
            assert!(!sub.tax.is_empty());
            for p in &sub.profiles {
                assert!(sub.tax.is_ancestor_closed(p.nodes()));
            }
            // Labels keep their names through the remap.
            for id in 1..sub.tax.len() as u32 {
                assert!(ds.tax.id_of(sub.tax.label(id)).is_some());
            }
        }
    }

    #[test]
    fn gptree_full_fraction_is_isomorphic() {
        let ds = small();
        let sub = subsample_gptree(&ds, 1.0, 1);
        assert_eq!(sub.tax.len(), ds.tax.len());
        for (a, b) in ds.profiles.iter().zip(sub.profiles.iter()) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn shrink_ptree_respects_target() {
        let tax = random_taxonomy(100, 5, 6, 5);
        let mut rng = SmallRng::seed_from_u64(2);
        let p = crate::gen::random_ptree(&tax, 20, &mut rng);
        let s = shrink_ptree(&tax, &p, 0.5, &mut rng);
        assert!(s.len() <= (p.len() / 2).max(1) + 1);
        assert!(s.is_subtree_of(&p));
        // Fraction 0 leaves at least the root.
        let root = shrink_ptree(&tax, &p, 0.0, &mut rng);
        assert_eq!(root.len(), 1);
    }

    #[test]
    fn deterministic_subsamples() {
        let ds = small();
        assert_eq!(subsample_vertices(&ds, 0.5, 7).graph, subsample_vertices(&ds, 0.5, 7).graph);
        assert_eq!(subsample_ptrees(&ds, 0.5, 7).profiles, subsample_ptrees(&ds, 0.5, 7).profiles);
    }
}
