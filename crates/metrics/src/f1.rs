//! F1-score against ground-truth circles (Fig. 11 / Table 4).
//!
//! Standard set-overlap F1 between a found community and a ground-truth
//! community, and the query-level "best match" convention the paper
//! uses: a query vertex can belong to several overlapping circles and a
//! method can return several communities, so the score is the best F1
//! over all (found, truth) pairs.

use pcs_graph::VertexId;

/// F1 between a found vertex set and a ground-truth set. Both slices
/// must be sorted. Returns 0 when either set is empty.
pub fn f1_score(found: &[VertexId], truth: &[VertexId]) -> f64 {
    if found.is_empty() || truth.is_empty() {
        return 0.0;
    }
    debug_assert!(found.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(truth.windows(2).all(|w| w[0] < w[1]));
    let mut overlap = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < found.len() && j < truth.len() {
        match found[i].cmp(&truth[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                overlap += 1;
                i += 1;
                j += 1;
            }
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / found.len() as f64;
    let recall = overlap as f64 / truth.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Best F1 over all (found community, ground-truth circle) pairs —
/// the per-query accuracy the Fig. 11 harness averages. Returns 0 when
/// either side is empty.
pub fn best_f1<F, T>(found: &[F], truths: &[T]) -> f64
where
    F: AsRef<[VertexId]>,
    T: AsRef<[VertexId]>,
{
    let mut best = 0.0f64;
    for f in found {
        for t in truths {
            best = best.max(f1_score(f.as_ref(), t.as_ref()));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        assert!((f1_score(&[1, 2, 3], &[1, 2, 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_overlap() {
        assert_eq!(f1_score(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(f1_score(&[], &[1]), 0.0);
        assert_eq!(f1_score(&[1], &[]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // found {1,2,3,4}, truth {3,4,5,6}: overlap 2, P = R = 0.5.
        let f1 = f1_score(&[1, 2, 3, 4], &[3, 4, 5, 6]);
        assert!((f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_sizes() {
        // found {1}, truth {1,2,3}: P=1, R=1/3, F1=0.5.
        let f1 = f1_score(&[1], &[1, 2, 3]);
        assert!((f1 - 0.5).abs() < 1e-12);
        // Symmetric in arguments.
        assert_eq!(f1, f1_score(&[1, 2, 3], &[1]));
    }

    #[test]
    fn best_f1_picks_best_pair() {
        let found = vec![vec![1u32, 2], vec![5, 6, 7]];
        let truths = vec![vec![5u32, 6, 7, 8], vec![9u32]];
        let best = best_f1(&found, &truths);
        // {5,6,7} vs {5,6,7,8}: P=1, R=0.75, F1=6/7.
        assert!((best - 6.0 / 7.0).abs() < 1e-12, "{best}");
        assert_eq!(best_f1::<Vec<u32>, Vec<u32>>(&[], &truths), 0.0);
    }
}
