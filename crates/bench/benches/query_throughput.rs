//! Criterion bench: serving throughput of the owned engine facade.
//!
//! Compares answering a fixed workload of requests one
//! [`PcsEngine::query`] call at a time against handing the whole slice
//! to [`PcsEngine::query_batch`] (which fans out over scoped threads),
//! on the paper-calibrated ACMDL-like dataset. This seeds the
//! throughput trajectory: future PRs (sharding, caching, async) should
//! move the `batch` line, not the `sequential` one.

use criterion::{criterion_group, criterion_main, Criterion};
use pcs_core::Algorithm;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_engine::{IndexMode, PcsEngine, QueryRequest};

fn bench_query_throughput(c: &mut Criterion) {
    let cfg = SuiteConfig { scale: 0.01, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Acmdl, cfg);
    let (queries, _) = sample_query_vertices(&ds, 6, 32, 0x7472);
    let engine = PcsEngine::builder()
        .graph(ds.graph)
        .taxonomy(ds.tax)
        .profiles(ds.profiles)
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let requests: Vec<QueryRequest> =
        queries.iter().map(|&q| QueryRequest::vertex(q).k(6).algorithm(Algorithm::AdvP)).collect();

    let mut group = c.benchmark_group("query_throughput");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for req in &requests {
                let resp = engine.query(req).unwrap();
                criterion::black_box(resp.communities().len());
            }
        });
    });
    group.bench_function("batch", |b| {
        b.iter(|| {
            for resp in engine.query_batch(&requests) {
                criterion::black_box(resp.unwrap().communities().len());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
