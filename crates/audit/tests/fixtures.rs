//! The fixture-corpus tests: one deliberately bad snippet per rule
//! (asserted to trigger exactly that rule and nothing else), clean and
//! suppressed snippets (asserted silent), and the walker's guarantee
//! that this corpus never leaks into a real workspace check.

use pcs_audit::{
    check_source, collect_rs_files, Finding, RuleConfig, RULE_ALLOW_MALFORMED, RULE_ALLOW_UNUSED,
    RULE_ERROR_ENUM, RULE_INSTANT_IN_LOOP, RULE_NO_INDEX, RULE_NO_PANIC, RULE_QUERY_HASH,
    RULE_STORE_CAST,
};
use std::path::Path;

/// A hot-path pseudo-path: no-panic, no-index, query-hash, and
/// instant-in-loop all apply here.
const HOT: &str = "crates/core/src/verify.rs";

fn lint(fixture: &str, as_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    check_source(as_path, &src, &RuleConfig::workspace_default())
}

#[test]
fn each_bad_fixture_triggers_exactly_its_rule() {
    // (fixture, linted under this pseudo-path, expected rule, count)
    let cases: &[(&str, &str, &str, usize)] = &[
        // .unwrap(), .expect(), panic!, unreachable!
        ("bad_no_panic.rs", HOT, RULE_NO_PANIC, 4),
        // v[i] and v[0]
        ("bad_no_index.rs", HOT, RULE_NO_INDEX, 2),
        // one narrowing cast, linted as the store codec
        ("bad_store_cast.rs", "crates/store/src/codec.rs", RULE_STORE_CAST, 1),
        // every HashMap mention in the query path: use, return type,
        // annotation, constructor
        ("bad_query_hash.rs", HOT, RULE_QUERY_HASH, 4),
        // only the Instant::now() inside the loop body
        ("bad_instant_in_loop.rs", "crates/engine/src/engine.rs", RULE_INSTANT_IN_LOOP, 1),
        // error-enum applies workspace-wide, no special path needed
        ("bad_error_enum.rs", "crates/metrics/src/fixture.rs", RULE_ERROR_ENUM, 1),
        ("bad_allow_malformed.rs", HOT, RULE_ALLOW_MALFORMED, 1),
        ("bad_allow_unused.rs", HOT, RULE_ALLOW_UNUSED, 1),
    ];
    for &(fixture, as_path, rule, count) in cases {
        let findings = lint(fixture, as_path);
        assert!(
            findings.iter().all(|f| f.rule == rule),
            "{fixture}: expected only [{rule}] findings, got {findings:#?}"
        );
        assert_eq!(
            findings.len(),
            count,
            "{fixture}: expected {count} [{rule}] findings, got {findings:#?}"
        );
    }
}

#[test]
fn scoped_rules_are_silent_outside_their_scope() {
    // The same bad snippets, linted under a path no positional rule
    // covers: only the workspace-wide hygiene rules may speak, and
    // none of these snippets violates them.
    for fixture in ["bad_no_panic.rs", "bad_no_index.rs", "bad_store_cast.rs", "bad_query_hash.rs"]
    {
        let findings = lint(fixture, "crates/metrics/src/fixture.rs");
        assert!(findings.is_empty(), "{fixture} out of scope: {findings:#?}");
    }
    // The store-cast snippet inside the query path is likewise silent:
    // `as` narrowing is a codec rule, not a query rule.
    let findings = lint("bad_store_cast.rs", HOT);
    assert!(findings.is_empty(), "store cast linted as hot path: {findings:#?}");
}

#[test]
fn clean_and_suppressed_fixtures_are_silent() {
    for fixture in ["clean.rs", "allow_line.rs", "allow_block.rs", "cfg_test.rs"] {
        let findings = lint(fixture, HOT);
        assert!(findings.is_empty(), "{fixture}: {findings:#?}");
    }
}

#[test]
fn line_allow_does_not_leak_past_its_line() {
    // The allow covers only the line below it; a second violation two
    // lines later must still be reported.
    let src = "fn f(v: &[u32]) -> u32 {\n\
               \x20   // audit:allow(no-panic): fixture reason; first is guarded\n\
               \x20   let a = v.first().copied().unwrap();\n\
               \x20   let b = v.last().copied().unwrap();\n\
               \x20   a + b\n\
               }\n";
    let findings = check_source(HOT, src, &RuleConfig::workspace_default());
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, RULE_NO_PANIC);
    assert_eq!(findings[0].line, 4);
}

#[test]
fn block_allow_covers_only_one_rule() {
    // An allow-block for no-index must not swallow a no-panic finding
    // inside the same block.
    let src = "// audit:allow-block(no-index): fixture reason; len checked at entry\n\
               fn f(v: &[u32]) -> u32 {\n\
               \x20   if v.len() < 2 { return 0; }\n\
               \x20   v[0] + v[1] + v.first().copied().unwrap()\n\
               }\n";
    let findings = check_source(HOT, src, &RuleConfig::workspace_default());
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, RULE_NO_PANIC);
}

#[test]
fn fixture_corpus_is_excluded_from_the_workspace_walk() {
    // Walk the real workspace root: the corpus above is intentionally
    // bad and must never reach a real `check` run.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = collect_rs_files(&root).unwrap();
    assert!(!files.is_empty());
    for f in &files {
        let p = f.to_string_lossy().replace('\\', "/");
        assert!(!p.contains("audit/tests/fixtures/"), "fixture {p} leaked into the workspace walk");
    }
}
