//! v1 → v2 snapshot compatibility: files written by the retained
//! format-1 writer (monolithic INDEX layout, version-1 container) must
//! load into the sharded engine and answer **bit-identically** across
//! all five algorithms, resume at the saved epoch, and stay fully
//! mutable — the promise that upgrading the binary never strands a
//! fleet's existing snapshots.

use pcs_engine::{Algorithm, IndexMode, PcsEngine, QueryRequest, StoreError};
use pcs_graph::core::CoreDecomposition;
use pcs_graph::Graph;
use pcs_index::CpTree;
use pcs_ptree::{PTree, Taxonomy};
use pcs_store::{encode_snapshot_v1, SnapshotFile};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pcs-v1compat-{}-{tag}.snapshot", std::process::id()))
}

/// A graph with nested labels, an isolated vertex, and enough
/// structure that every algorithm does real work.
fn instance() -> (Graph, Taxonomy, Vec<PTree>) {
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(a, "b").unwrap();
    let c = tax.add_child(Taxonomy::ROOT, "c").unwrap();
    let d = tax.add_child(c, "d").unwrap();
    let g = Graph::from_edges(
        10,
        &[
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
            (4, 6),
            (6, 7),
            (7, 8),
            (6, 8),
            (0, 3),
        ],
    )
    .unwrap();
    let profiles = vec![
        PTree::from_labels(&tax, [a, c]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [b, d]).unwrap(),
        PTree::from_labels(&tax, [a, d]).unwrap(),
        PTree::from_labels(&tax, [b, c]).unwrap(),
        PTree::from_labels(&tax, [c]).unwrap(),
        PTree::from_labels(&tax, [d]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::root_only(), // isolated vertex
    ];
    (g, tax, profiles)
}

/// Writes a v1 file (version-1 container + monolithic INDEX layout)
/// for the instance, exactly as the previous release would have.
fn v1_snapshot_file(epoch: u64) -> (Vec<u8>, PcsEngine) {
    let (g, tax, profiles) = instance();
    let cores = CoreDecomposition::new(&g);
    let index = CpTree::build(&g, &tax, &profiles).unwrap();
    let file =
        encode_snapshot_v1(epoch, &g, &tax, &profiles, Some(cores.core_numbers()), Some(&index));
    assert_eq!(file.version(), 1, "the legacy writer stamps format 1");
    let bytes = file.to_bytes();
    // Sanity: the bytes really declare version 1 on the wire.
    assert_eq!(&bytes[8..12], &1u32.to_le_bytes());
    let reference = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    (bytes, reference)
}

#[test]
fn v1_file_loads_bit_identical_across_all_five_algorithms() {
    let (bytes, reference) = v1_snapshot_file(3);
    let path = tmp_path("all-algos");
    std::fs::write(&path, &bytes).unwrap();
    for mode in [IndexMode::Lazy, IndexMode::Eager] {
        let loaded = PcsEngine::builder().index_mode(mode).load(&path).unwrap();
        assert_eq!(loaded.epoch(), 3, "epoch resumes from the v1 file");
        if mode == IndexMode::Eager {
            // The v1 index is monolithic: every populated label arrives
            // resident, and eager mode keeps it that way.
            let snap = loaded.snapshot();
            assert_eq!(
                snap.resident_shards(),
                snap.index().unwrap().num_populated_labels(),
                "v1 shards all adopted"
            );
        }
        for algo in Algorithm::ALL {
            for q in 0..10u32 {
                for k in 1..4u32 {
                    let req = QueryRequest::vertex(q).k(k).algorithm(algo);
                    let a = reference.query(&req).unwrap();
                    let b = loaded.query(&req).unwrap();
                    assert_eq!(
                        a.communities(),
                        b.communities(),
                        "{mode:?} {} q={q} k={k}",
                        algo.name()
                    );
                }
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn v1_loaded_engine_stays_mutable_and_resaves_as_v2() {
    let (bytes, reference) = v1_snapshot_file(0);
    let path = tmp_path("mutate");
    std::fs::write(&path, &bytes).unwrap();
    let loaded = PcsEngine::builder().load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    // Same update on both engines: identical post-update answers.
    let ra = reference.add_edge(1, 4).unwrap();
    let rb = loaded.add_edge(1, 4).unwrap();
    assert_eq!(ra.epoch, rb.epoch);
    for q in 0..10u32 {
        let a = reference.query(&QueryRequest::vertex(q).k(2)).unwrap();
        let b = loaded.query(&QueryRequest::vertex(q).k(2)).unwrap();
        assert_eq!(a.communities(), b.communities(), "post-update q={q}");
    }
    // Re-saving writes the current (v2) format; the round trip stays
    // equivalent — the one-way v1 → v2 migration path.
    let path2 = tmp_path("resave");
    loaded.save(&path2).unwrap();
    let resaved_bytes = std::fs::read(&path2).unwrap();
    assert_eq!(&resaved_bytes[8..12], &pcs_store::FORMAT_VERSION.to_le_bytes());
    let resaved = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path2).unwrap();
    std::fs::remove_file(&path2).unwrap();
    for q in 0..10u32 {
        let a = loaded.query(&QueryRequest::vertex(q).k(2)).unwrap();
        let b = resaved.query(&QueryRequest::vertex(q).k(2)).unwrap();
        assert_eq!(a.communities(), b.communities(), "resaved q={q}");
    }
}

#[test]
fn v1_index_headmap_pin_still_enforced() {
    // A v1 file whose INDEX headMap disagrees with the PROFILES
    // section must still be rejected with a typed error — swapping the
    // profiles section for different (valid) profiles breaks the pin.
    let (bytes, _reference) = v1_snapshot_file(0);
    let file = SnapshotFile::from_bytes(&bytes).unwrap();
    let (g, tax, _) = instance();
    let wrong_profiles: Vec<PTree> = (0..10)
        .map(|v| {
            if v % 2 == 0 {
                PTree::root_only()
            } else {
                PTree::from_labels(&tax, [tax.id_of("c").unwrap()]).unwrap()
            }
        })
        .collect();
    let cores = CoreDecomposition::new(&g);
    let forged_src =
        encode_snapshot_v1(0, &g, &tax, &wrong_profiles, Some(cores.core_numbers()), None);
    let mut forged = SnapshotFile::new_versioned(1);
    for id in file.section_ids() {
        if id == pcs_store::section::PROFILES {
            forged.push_section(id, forged_src.section(id).unwrap().to_vec());
        } else {
            forged.push_section(id, file.section(id).unwrap().to_vec());
        }
    }
    let path = tmp_path("pin");
    std::fs::write(&path, forged.to_bytes()).unwrap();
    let err = PcsEngine::builder().load(&path).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    assert!(
        matches!(
            err,
            pcs_engine::Error::Store(StoreError::Corrupt {
                section: pcs_store::section::INDEX,
                ..
            })
        ),
        "unexpected error {err:?}"
    );
}
