//! CLI for the workspace lint: `cargo run -p pcs-audit -- check [root]`.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = args.get(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
            let cfg = pcs_audit::RuleConfig::workspace_default();
            match pcs_audit::run_check(&root, &cfg) {
                Ok(findings) if findings.is_empty() => {
                    println!("pcs-audit: clean");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("{f}");
                    }
                    eprintln!("pcs-audit: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("pcs-audit: io error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: pcs-audit check [workspace-root]");
            ExitCode::FAILURE
        }
    }
}
