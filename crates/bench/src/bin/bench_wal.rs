//! WAL micro-benchmark: append/fsync throughput, group-commit
//! coalescing under concurrent writers, and crash-recovery time as a
//! function of the replayed tail length — reported as `BENCH_wal.json`.
//!
//! Three phases:
//!
//! 1. **Solo append** — one writer, one fsync per record: the
//!    durability floor (every record pays a full `fdatasync`).
//! 2. **Group commit** — several writers appending concurrently with a
//!    small fsync window: the log coalesces neighbours into shared
//!    syncs, so fsyncs ≪ records while every committed record is still
//!    on disk before `commit` returns.
//! 3. **Recovery** — a durable engine absorbs an update stream, is
//!    dropped cold (no checkpoint), and is re-opened: snapshot load +
//!    tail replay back to the exact pre-crash epoch, timed for several
//!    tail lengths.
//!
//! ```text
//! cargo run -p pcs-bench --release --bin bench_wal             # full run, writes ./BENCH_wal.json
//! cargo run -p pcs-bench --release --bin bench_wal -- --quick  # CI smoke into target/, asserts the
//!                                                              # durability invariants held
//! ```
//!
//! `--quick` doubles as the CI gate: it *asserts* that recovery lands
//! on the exact pre-crash epoch and that group commit actually
//! coalesced fsyncs, instead of merely printing numbers.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pcs_datasets::taxonomy::random_taxonomy;
use pcs_datasets::{update_stream, DatasetSpec, StreamOp, UpdateStreamSpec};
use pcs_engine::{PcsEngine, UpdateBatch};
use pcs_store::{Wal, WalOptions};

struct Config {
    quick: bool,
    out_dir: PathBuf,
    /// Records per append phase.
    records: usize,
    /// Payload bytes per record.
    payload: usize,
    /// Concurrent writers in the group-commit phase.
    threads: usize,
    /// Group-commit fsync window.
    window: Duration,
    /// Update-stream steps for the longest recovery tail.
    steps: usize,
    seed: u64,
}

impl Config {
    fn parse() -> Config {
        let mut cfg = Config {
            quick: false,
            out_dir: PathBuf::from("."),
            records: 4_000,
            payload: 256,
            threads: 4,
            window: Duration::from_micros(500),
            steps: 400,
            seed: 0x4a11,
        };
        let mut out_dir_given = false;
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut take =
                |what: &str| args.next().unwrap_or_else(|| panic!("{flag} takes {what}"));
            match flag.as_str() {
                "--quick" => cfg.quick = true,
                "--records" => {
                    cfg.records = take("a count").parse().expect("--records takes a count")
                }
                "--payload" => {
                    cfg.payload = take("a byte size").parse().expect("--payload takes bytes")
                }
                "--threads" => {
                    cfg.threads = take("a count").parse().expect("--threads takes a count")
                }
                "--window-us" => {
                    cfg.window = Duration::from_micros(
                        take("microseconds").parse().expect("--window-us takes µs"),
                    )
                }
                "--steps" => cfg.steps = take("a count").parse().expect("--steps takes a count"),
                "--out-dir" => {
                    cfg.out_dir = PathBuf::from(take("a path"));
                    out_dir_given = true;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --quick --records <n> --payload <bytes> --threads <n> \
                         --window-us <µs> --steps <n> --out-dir <dir>"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        if cfg.quick {
            cfg.records = cfg.records.min(400);
            cfg.steps = cfg.steps.min(90);
            if !out_dir_given {
                cfg.out_dir = PathBuf::from("target");
            }
        }
        cfg
    }
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pcs-bench-wal-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct AppendOutcome {
    per_s: f64,
    fsyncs: u64,
    p50_us: u64,
    p99_us: u64,
}

/// Phase 1: one writer, commit (→ fsync) after every append.
fn solo_append(cfg: &Config) -> AppendOutcome {
    let dir = bench_dir("solo");
    let (wal, _) = Wal::open(&dir, WalOptions::default(), 0).expect("open solo wal");
    let payload = vec![0xabu8; cfg.payload];
    let mut latencies = Vec::with_capacity(cfg.records);
    let start = Instant::now();
    for _ in 0..cfg.records {
        let t0 = Instant::now();
        let ticket = wal.append_next(&payload).expect("append");
        wal.commit(&ticket).expect("commit");
        latencies.push(t0.elapsed().as_micros() as u64);
    }
    let elapsed = start.elapsed();
    let stats = wal.stats();
    assert_eq!(wal.durable_epoch(), cfg.records as u64, "solo records must all be durable");
    latencies.sort_unstable();
    let out = AppendOutcome {
        per_s: cfg.records as f64 / elapsed.as_secs_f64(),
        fsyncs: stats.fsyncs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    };
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Phase 2: `threads` writers share the log; the group window lets one
/// leader's fsync cover its neighbours' records.
fn group_append(cfg: &Config) -> AppendOutcome {
    let dir = bench_dir("group");
    let opts = WalOptions { group_window: cfg.window, ..WalOptions::default() };
    let (wal, _) = Wal::open(&dir, opts, 0).expect("open group wal");
    let per_thread = cfg.records / cfg.threads.max(1);
    let total = per_thread * cfg.threads.max(1);
    let start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads.max(1))
            .map(|t| {
                let wal = wal.clone();
                let payload = vec![t as u8; cfg.payload];
                s.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        let t0 = Instant::now();
                        let ticket = wal.append_next(&payload).expect("append");
                        wal.commit(&ticket).expect("commit");
                        local.push(t0.elapsed().as_micros() as u64);
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("writer thread")).collect()
    });
    let elapsed = start.elapsed();
    let stats = wal.stats();
    assert_eq!(wal.durable_epoch(), total as u64, "group records must all be durable");
    latencies.sort_unstable();
    let out = AppendOutcome {
        per_s: total as f64 / elapsed.as_secs_f64(),
        fsyncs: stats.fsyncs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    };
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Phase 3: recovery time (snapshot load + tail replay) vs tail
/// length. Returns `(tail_batches, pre_crash_epoch, recovery)` rows.
fn recovery(cfg: &Config) -> Vec<(usize, u64, Duration)> {
    let tax = random_taxonomy(30, 4, 6, cfg.seed);
    let ds = pcs_datasets::gen::generate(&DatasetSpec::small("wal-recovery", 56, 33), tax);
    let stream = update_stream(&ds, &UpdateStreamSpec::new(cfg.steps, 7));
    let tails = [cfg.steps / 4, cfg.steps / 2, cfg.steps];
    let mut rows = Vec::new();
    for tail in tails {
        let dir = bench_dir(&format!("recover-{tail}"));
        let engine = PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .durable(&dir)
            .build()
            .expect("durable engine builds");
        for timed in &stream[..tail] {
            let batch = match &timed.op {
                StreamOp::AddEdge(a, b) => UpdateBatch::new().add_edge(*a, *b),
                StreamOp::RemoveEdge(a, b) => UpdateBatch::new().remove_edge(*a, *b),
                StreamOp::SetProfile(v, p) => UpdateBatch::new().set_profile(*v, p.clone()),
            };
            engine.apply(&batch).expect("stream batch applies");
        }
        let pre_crash = engine.epoch();
        // "Crash": drop without checkpointing — recovery must replay
        // the whole tail from the epoch-0 snapshot.
        drop(engine);
        let t0 = Instant::now();
        let recovered = PcsEngine::builder().durable(&dir).open().expect("recovery succeeds");
        let elapsed = t0.elapsed();
        assert_eq!(recovered.epoch(), pre_crash, "recovery must land on the exact pre-crash epoch");
        rows.push((tail, pre_crash, elapsed));
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn write_snapshot(path: &Path, cfg: &Config, results: &str) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pcs-bench-snapshot/v2\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"records\": {}, \"payload_bytes\": {}, \"threads\": {}, \
         \"group_window_us\": {}, \"steps\": {}, \"quick\": {}}},",
        cfg.records,
        cfg.payload,
        cfg.threads,
        cfg.window.as_micros(),
        cfg.steps,
        cfg.quick
    );
    let _ = writeln!(out, "  \"results\": {results},");
    let _ = writeln!(out, "  \"baseline\": null");
    out.push_str("}\n");
    std::fs::create_dir_all(path.parent().unwrap_or(Path::new("."))).expect("create out dir");
    std::fs::write(path, out).expect("write snapshot file");
    println!("wrote {}", path.display());
}

fn main() {
    let cfg = Config::parse();

    let solo = solo_append(&cfg);
    println!(
        "solo append:  {:.0} rec/s, {} fsyncs / {} records, commit p50 {} µs p99 {} µs",
        solo.per_s, solo.fsyncs, cfg.records, solo.p50_us, solo.p99_us
    );

    let group = group_append(&cfg);
    let group_records = (cfg.records / cfg.threads.max(1)) * cfg.threads.max(1);
    println!(
        "group append: {:.0} rec/s, {} fsyncs / {} records ({} writers, {} µs window), \
         commit p50 {} µs p99 {} µs",
        group.per_s,
        group.fsyncs,
        group_records,
        cfg.threads,
        cfg.window.as_micros(),
        group.p50_us,
        group.p99_us
    );

    let recovery_rows = recovery(&cfg);
    for (tail, epoch, elapsed) in &recovery_rows {
        println!(
            "recovery: {tail:>5} batch tail (epoch {epoch}) replayed in {:.2} ms",
            elapsed.as_secs_f64() * 1e3
        );
    }

    if cfg.quick {
        // The CI gate: the invariants, not the numbers.
        assert!(
            group.fsyncs < group_records as u64,
            "group commit never coalesced: {} fsyncs for {} records",
            group.fsyncs,
            group_records
        );
        assert_eq!(solo.fsyncs, cfg.records as u64, "solo commits must fsync per record");
        println!("--quick gate: ok (recovery exact, group commit coalesced)");
    }

    let mut results = String::from("{");
    let mut first = true;
    let mut put = |key: &str, value: String| {
        if !first {
            results.push_str(", ");
        }
        first = false;
        let _ = write!(results, "{}: {value}", json_str(key));
    };
    put("solo_append_per_s", format!("{:.2}", solo.per_s));
    put("solo_fsyncs", solo.fsyncs.to_string());
    put("solo_commit_p50_us", solo.p50_us.to_string());
    put("solo_commit_p99_us", solo.p99_us.to_string());
    put("group_append_per_s", format!("{:.2}", group.per_s));
    put("group_fsyncs", group.fsyncs.to_string());
    put("group_records", group_records.to_string());
    put("group_commit_p50_us", group.p50_us.to_string());
    put("group_commit_p99_us", group.p99_us.to_string());
    for (tail, epoch, elapsed) in &recovery_rows {
        put(&format!("recovery_tail_{tail}_ms"), format!("{:.3}", elapsed.as_secs_f64() * 1e3));
        put(&format!("recovery_tail_{tail}_epoch"), epoch.to_string());
    }
    results.push('}');

    let path = cfg.out_dir.join(if cfg.quick { "BENCH_wal.quick.json" } else { "BENCH_wal.json" });
    write_snapshot(&path, &cfg, &results);
}
