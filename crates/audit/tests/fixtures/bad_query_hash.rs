// Fixture: hash containers in the allocation-free query path.

use std::collections::HashMap;

fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0) += 1;
    }
    seen
}
