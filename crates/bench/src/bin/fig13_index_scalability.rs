//! Fig. 13: scalability of CP-tree index construction.
//!
//! Build time at 20/40/60/80/100 % of (a) the vertices, (b) each
//! vertex's P-tree, and (c) the GP-tree, for every dataset. The paper's
//! claim: build time is linear along all three axes.

use pcs_bench::{header, parse_args, row, time};
use pcs_datasets::scale::{subsample_gptree, subsample_ptrees, subsample_vertices};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::SuiteDataset;
use pcs_index::CpTree;

const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    let datasets: Vec<_> = SuiteDataset::ALL.iter().map(|&w| build(w, cfg)).collect();

    for (axis, label) in [
        ("vertex", "Fig. 13(a) — % of vertices"),
        ("ptree", "Fig. 13(b) — % of each P-tree"),
        ("gptree", "Fig. 13(c) — % of the GP-tree"),
    ] {
        println!("\n{label} (build time, ms)\n");
        header(&["dataset", "20%", "40%", "60%", "80%", "100%"]);
        for ds in &datasets {
            let mut cells = vec![ds.name.clone()];
            for &frac in &FRACTIONS {
                let sub = match axis {
                    "vertex" => subsample_vertices(ds, frac, args.seed ^ 0x13),
                    "ptree" => subsample_ptrees(ds, frac, args.seed ^ 0x13),
                    _ => subsample_gptree(ds, frac, args.seed ^ 0x13),
                };
                let (_, took) = time(|| {
                    CpTree::build(&sub.graph, &sub.tax, &sub.profiles).expect("consistent dataset")
                });
                cells.push(format!("{:.1}", took.as_secs_f64() * 1e3));
            }
            row(&cells);
        }
    }
    println!("\nPaper: construction time grows linearly along each axis.");
}
