//! The server: listener, admission control, worker pool, shutdown.
//!
//! Architecture (std only — no async runtime):
//!
//! * **Listener thread** — blocking `accept`. Admission control lives
//!   here: when the number of live connections has reached
//!   [`ServeConfig::max_connections`], the new connection gets a
//!   preformatted `503` and is closed immediately — the server *sheds*
//!   load instead of queueing unboundedly or stalling. Admitted
//!   connections go onto the run queue.
//! * **Worker pool** — `workers` threads multiplex the run queue: pop
//!   a connection, poll it briefly, serve at most one request, requeue
//!   it. This serves `connections ≫ workers` with keep-alive (a
//!   thread-per-connection design would let idle keep-alive clients
//!   starve the pool — on the 1-core CI runner, with *one* default
//!   worker, after the first client). The short blocking poll doubles
//!   as the pacing sleep, so an all-idle queue costs one poll window
//!   per connection per cycle, not a spin.
//! * **Batch dispatcher** — one thread draining the
//!   [`Batcher`](crate::batch::Batcher): queries from all workers are
//!   gathered, deduplicated, and executed through
//!   [`PcsEngine::query_batch`] under a single epoch pin per batch.
//!
//! [`PcsServer::shutdown`] is graceful: stop admitting, let workers
//! drain buffered requests on live connections (answered with
//! `Connection: close`), then retire the batcher. In-flight requests
//! complete; nothing is dropped mid-response.

use crate::batch::Batcher;
use crate::http::{HttpConn, HttpError, Poll, Response, SHED_503};
use crate::protocol::{
    engine_error_status, json_opt_u64, render_api_error, render_engine_error,
    render_query_response, render_update_report, route, Route,
};
use pcs_engine::{Error as EngineError, PcsEngine, StoreError};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tunables. `Default` is sized for the CI smoke test; a real
/// deployment raises `workers` and `max_connections`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads. Defaults to `available_parallelism`.
    pub workers: usize,
    /// Admission cap: live connections beyond this are shed with 503.
    pub max_connections: usize,
    /// How long the batch dispatcher gathers before executing.
    pub batch_window: Duration,
    /// Max queries per dispatched batch.
    pub batch_max: usize,
    /// Cap on `/apply` body size, bytes.
    pub max_body_bytes: usize,
    /// Per-socket-read timeout while parsing a request.
    pub read_timeout: Duration,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_timeout: Duration,
    /// How long a worker's readiness poll blocks per popped connection.
    pub poll_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            max_connections: 128,
            batch_window: Duration::from_micros(200),
            batch_max: 64,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(2),
            keep_alive_timeout: Duration::from_secs(10),
            poll_window: Duration::from_millis(2),
        }
    }
}

/// Why the server failed to start.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind(io::Error),
    /// Spawning a thread failed.
    Spawn(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "failed to bind listen address: {e}"),
            ServeError::Spawn(e) => write!(f, "failed to spawn server thread: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Live server counters (atomics; read at any time).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections admitted.
    pub accepted: AtomicU64,
    /// Connections shed with an immediate 503 at the accept gate.
    pub shed: AtomicU64,
    /// Requests fully served (any status).
    pub requests: AtomicU64,
    /// Query requests executed.
    pub queries: AtomicU64,
    /// Update batches applied.
    pub updates: AtomicU64,
    /// Responses with a 4xx status.
    pub http_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub http_5xx: AtomicU64,
    /// Server-side faults: `EngineError::Internal` surfaced to a
    /// client, or the batch dispatcher failing to answer at all. These
    /// are bugs or dead threads, never client mistakes — a nonzero
    /// count here deserves a look even when traffic is otherwise
    /// healthy.
    pub internal_errors: AtomicU64,
}

/// A point-in-time copy of every counter, including the batcher's.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections admitted.
    pub accepted: u64,
    /// Connections shed at the accept gate.
    pub shed: u64,
    /// Requests fully served.
    pub requests: u64,
    /// Query requests executed.
    pub queries: u64,
    /// Update batches applied.
    pub updates: u64,
    /// 4xx responses.
    pub http_4xx: u64,
    /// 5xx responses.
    pub http_5xx: u64,
    /// Query batches dispatched.
    pub batches: u64,
    /// Requests carried by those batches (pre-dedup).
    pub batched_requests: u64,
    /// Requests answered by a deduplicated twin's execution.
    pub dedup_saved: u64,
    /// Requests the batcher answered straight from the result cache.
    pub cache_answered: u64,
    /// Server-side faults surfaced to clients (see
    /// [`ServerStats::internal_errors`]).
    pub internal_errors: u64,
    /// Result-cache hits (engine-wide, including direct
    /// `query_cached` callers).
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache entries dropped by capacity rotation.
    pub cache_evictions: u64,
    /// Entries carried across an epoch publish by surgical
    /// invalidation.
    pub cache_surgical_survivals: u64,
    /// Write groups committed by the coalescing apply path.
    pub apply_groups: u64,
    /// Writer submissions that rode a leader's group instead of
    /// publishing their own epoch.
    pub apply_coalesced: u64,
    /// The engine's published epoch when the snapshot was taken.
    pub epoch: u64,
    /// The engine's durable (fsynced-WAL) epoch; `None` without a
    /// durable directory. The engine fsyncs before it publishes, so
    /// this never lags `epoch` — transiently it may *lead* by the
    /// batches sitting between their group commit and publication.
    pub durable_epoch: Option<u64>,
}

impl StatsSnapshot {
    /// Renders the `/stats` body. `durable_epoch` is `null` on a
    /// non-durable engine.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"shed\":{},\"requests\":{},\"queries\":{},\"updates\":{},\
             \"http_4xx\":{},\"http_5xx\":{},\"internal_errors\":{},\"batches\":{},\
             \"batched_requests\":{},\"dedup_saved\":{},\"cache_answered\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_surgical_survivals\":{},\"apply_groups\":{},\"apply_coalesced\":{},\
             \"epoch\":{},\"durable_epoch\":{}}}",
            self.accepted,
            self.shed,
            self.requests,
            self.queries,
            self.updates,
            self.http_4xx,
            self.http_5xx,
            self.internal_errors,
            self.batches,
            self.batched_requests,
            self.dedup_saved,
            self.cache_answered,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_surgical_survivals,
            self.apply_groups,
            self.apply_coalesced,
            self.epoch,
            json_opt_u64(self.durable_epoch),
        )
    }
}

/// One parked connection.
struct Conn {
    http: HttpConn,
    last_active: Instant,
}

/// State shared by every server thread.
struct Shared {
    engine: Arc<PcsEngine>,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Conn>>,
    queued: Condvar,
    shutdown: AtomicBool,
    active: AtomicUsize,
    stats: ServerStats,
    batcher: Batcher,
    vertex_count: usize,
}

impl Shared {
    /// Queue lock with poison recovery: a panicking worker cannot tear
    /// a VecDeque of owned connections, so the contents stay usable.
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Conn>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.queue.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    fn push_conn(&self, conn: Conn) {
        self.lock_queue().push_back(conn);
        self.queued.notify_one();
    }

    /// Pops the next connection; blocks while the queue is empty.
    /// Returns `None` once shutdown is set *and* the queue has
    /// drained.
    fn pop_conn(&self) -> Option<Conn> {
        let mut q = self.lock_queue();
        loop {
            if let Some(c) = q.pop_front() {
                return Some(c);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = match self.queued.wait_timeout(q, Duration::from_millis(50)) {
                Ok((g, _)) => g,
                Err(poisoned) => {
                    self.queue.clear_poison();
                    poisoned.into_inner().0
                }
            };
        }
    }

    fn snapshot_stats(&self) -> StatsSnapshot {
        let b = self.batcher.stats();
        // Read the published epoch *before* the durable epoch: the
        // engine fsyncs before it publishes, so durable ≥ published at
        // every instant — this read order keeps the pair consistent
        // (durable_epoch ≥ epoch) even against a concurrent writer.
        let epoch = self.engine.epoch();
        let durable_epoch = self.engine.durable_epoch();
        let cache = self.engine.cache_stats();
        let coalesce = self.engine.coalesce_stats();
        StatsSnapshot {
            epoch,
            durable_epoch,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_surgical_survivals: cache.surgical_survivals,
            apply_groups: coalesce.groups,
            apply_coalesced: coalesce.coalesced,
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            queries: self.stats.queries.load(Ordering::Relaxed),
            updates: self.stats.updates.load(Ordering::Relaxed),
            http_4xx: self.stats.http_4xx.load(Ordering::Relaxed),
            http_5xx: self.stats.http_5xx.load(Ordering::Relaxed),
            batches: b.batches.load(Ordering::Relaxed),
            batched_requests: b.batched_requests.load(Ordering::Relaxed),
            dedup_saved: b.dedup_saved.load(Ordering::Relaxed),
            cache_answered: b.cache_answered.load(Ordering::Relaxed),
            internal_errors: self.stats.internal_errors.load(Ordering::Relaxed),
        }
    }

    fn count_status(&self, status: u16) {
        if (400..500).contains(&status) {
            self.stats.http_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.stats.http_5xx.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running PCS service. Dropping without calling
/// [`shutdown`](PcsServer::shutdown) aborts the threads with the
/// process; call `shutdown` for a graceful drain.
pub struct PcsServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    listener_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    dispatcher_handle: Option<JoinHandle<()>>,
}

impl PcsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving
    /// `engine`.
    pub fn start(
        engine: Arc<PcsEngine>,
        addr: &str,
        cfg: ServeConfig,
    ) -> Result<PcsServer, ServeError> {
        let listener = TcpListener::bind(addr).map_err(ServeError::Bind)?;
        let local_addr = listener.local_addr().map_err(ServeError::Bind)?;
        let vertex_count = engine.snapshot().graph().num_vertices();
        let shared = Arc::new(Shared {
            batcher: Batcher::new(cfg.batch_window, cfg.batch_max),
            engine,
            cfg: cfg.clone(),
            queue: Mutex::new(VecDeque::new()),
            queued: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            stats: ServerStats::default(),
            vertex_count,
        });

        let dispatcher_handle = {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("pcs-serve-batch".to_string())
                .spawn(move || s.batcher.run_dispatcher(&s.engine))
                .map_err(ServeError::Spawn)?
        };
        let mut worker_handles = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let s = Arc::clone(&shared);
            let h = thread::Builder::new()
                .name(format!("pcs-serve-worker-{i}"))
                .spawn(move || worker_loop(&s))
                .map_err(ServeError::Spawn)?;
            worker_handles.push(h);
        }
        let listener_handle = {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("pcs-serve-accept".to_string())
                .spawn(move || accept_loop(&s, listener))
                .map_err(ServeError::Spawn)?
        };

        Ok(PcsServer {
            shared,
            local_addr,
            listener_handle: Some(listener_handle),
            worker_handles,
            dispatcher_handle: Some(dispatcher_handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot_stats()
    }

    /// Graceful shutdown: stop admitting, drain, join every thread.
    /// Returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.listener_handle.take() {
            let _ = h.join();
        }
        // Wake and join the workers; they drain the queue first.
        self.shared.queued.notify_all();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // No worker is left to submit queries; retire the dispatcher.
        self.shared.batcher.shutdown();
        if let Some(h) = self.dispatcher_handle.take() {
            let _ = h.join();
        }
        self.shared.snapshot_stats()
    }
}

/// The accept loop: admission control happens here.
fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let accepted = listener.accept();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let (stream, _peer) = match accepted {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if shared.active.load(Ordering::Acquire) >= shared.cfg.max_connections {
            // Shed: answer 503 without admitting. Best-effort write —
            // the client may already be gone.
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.write_all(SHED_503);
            let _ = stream.flush();
            continue;
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        // Responses are latency-sensitive and sent in one write; never
        // let Nagle hold them back.
        let _ = stream.set_nodelay(true);
        shared.push_conn(Conn { http: HttpConn::new(stream), last_active: Instant::now() });
    }
}

/// One worker: multiplexes parked connections off the run queue.
fn worker_loop(shared: &Shared) {
    while let Some(mut conn) = shared.pop_conn() {
        let draining = shared.shutdown.load(Ordering::Acquire);
        match conn.http.poll_readable(shared.cfg.poll_window) {
            Ok(Poll::Closed) | Err(_) => {
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
            Ok(Poll::Idle) => {
                if draining || conn.last_active.elapsed() > shared.cfg.keep_alive_timeout {
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                } else {
                    shared.push_conn(conn);
                }
            }
            Ok(Poll::Data) => {
                // During drain, serve this last buffered request with
                // `Connection: close`; otherwise honor keep-alive.
                let keep = serve_one(shared, &mut conn.http, !draining);
                if keep {
                    conn.last_active = Instant::now();
                    shared.push_conn(conn);
                } else {
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}

/// Reads and answers one request. Returns whether to keep the
/// connection.
fn serve_one(shared: &Shared, http: &mut HttpConn, allow_keep_alive: bool) -> bool {
    let req = match http.read_request(shared.cfg.read_timeout, shared.cfg.max_body_bytes) {
        Ok(req) => req,
        Err(HttpError::Closed) => return false,
        Err(HttpError::Io(_)) => return false,
        Err(err) => {
            let status = http_error_status(&err);
            let body = format!(
                "{{\"error\":\"http\",\"detail\":\"{}\"}}",
                crate::protocol::json_escape(&err.to_string())
            );
            shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            shared.count_status(status);
            let _ = http.write_response(&Response::json(status, body, false));
            return false;
        }
    };
    let keep = allow_keep_alive && req.keep_alive;
    let (status, payload) = dispatch(shared, &req);
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    shared.count_status(status);
    let resp = match payload {
        Payload::Json(body) => Response::json(status, body, keep),
        Payload::Octets(body) => Response::octets(status, body, keep),
    };
    if http.write_response(&resp).is_err() {
        return false;
    }
    keep
}

/// A dispatched response body: JSON for every API route, raw bytes
/// for the `/wal` replication feed.
enum Payload {
    Json(String),
    Octets(Vec<u8>),
}

/// Routes one parsed request and produces `(status, body)`.
fn dispatch(shared: &Shared, req: &crate::http::Request) -> (u16, Payload) {
    let routed = route(req, shared.vertex_count, shared.engine.taxonomy());
    let (status, body) = match routed {
        Err(api) => (api.status(), render_api_error(&api)),
        Ok(Route::Health) => {
            (200, format!("{{\"status\":\"ok\",\"epoch\":{}}}", shared.engine.epoch()))
        }
        Ok(Route::Stats) => (200, shared.snapshot_stats().to_json()),
        Ok(Route::Query(q)) => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            match shared.batcher.submit(q) {
                Some(Ok(resp)) => (200, render_query_response(&resp)),
                Some(Err(e)) => {
                    if matches!(e, EngineError::Internal { .. }) {
                        shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    (engine_error_status(&e), render_engine_error(&e))
                }
                None => {
                    shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                    (
                        500,
                        "{\"error\":\"dispatch\",\"detail\":\"batch dispatcher unavailable\"}"
                            .to_string(),
                    )
                }
            }
        }
        Ok(Route::Apply(batch)) => {
            shared.stats.updates.fetch_add(1, Ordering::Relaxed);
            // Coalesced: concurrent `/apply` calls group-commit into
            // one epoch publish (and, on a durable engine, share its
            // fsync) instead of serializing full publishes.
            match shared.engine.apply_coalesced(&batch) {
                Ok(report) => (200, render_update_report(&report)),
                Err(e) => {
                    if matches!(e, EngineError::Internal { .. }) {
                        shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    (engine_error_status(&e), render_engine_error(&e))
                }
            }
        }
        Ok(Route::WalTail { from, max }) => {
            return match shared.engine.wal_tail_since(from, max) {
                Ok(frames) => (200, Payload::Octets(frames)),
                Err(e) => {
                    let (status, tag, detail) = wal_error(&e);
                    (
                        status,
                        Payload::Json(format!(
                            "{{\"error\":\"{tag}\",\"detail\":\"{}\"}}",
                            crate::protocol::json_escape(&detail)
                        )),
                    )
                }
            };
        }
    };
    (status, Payload::Json(body))
}

/// Maps a `/wal` failure to `(status, tag, detail)`.
///
/// * A reclaimed gap (the requested epochs were checkpointed away) is
///   `410 Gone` — the follower cannot catch up from the log and must
///   re-seed from a snapshot.
/// * Asking a non-durable server for its log is a client
///   misconfiguration → 400.
/// * Anything else is a server-side store failure → 500.
fn wal_error(err: &EngineError) -> (u16, &'static str, String) {
    match err {
        EngineError::Store(StoreError::Corrupt { .. }) => (410, "wal_gone", err.to_string()),
        EngineError::NotDurable => (400, "not_durable", err.to_string()),
        _ => (500, "wal", err.to_string()),
    }
}

/// Maps a wire-level parse failure to a status.
fn http_error_status(err: &HttpError) -> u16 {
    match err {
        HttpError::Timeout => 408,
        HttpError::HeadTooLarge => 431,
        HttpError::BodyTooLarge { .. } => 413,
        HttpError::UnsupportedMethod(_) => 405,
        HttpError::UnsupportedVersion(_) => 505,
        _ => 400,
    }
}
