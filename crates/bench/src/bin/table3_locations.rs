//! Table 3: locations of maximal feasible subtrees in the search space.
//!
//! For each dataset, run PCS on the query workload and bucket the
//! lattice level of every returned community's theme subtree into five
//! bands of the search-space depth. The paper's observation — most
//! themes sit in the *middle* bands, motivating the boundary-walking
//! advanced methods — should reproduce.

use pcs_bench::{engine_owning, header, parse_args, pct, row};
use pcs_core::stats::LevelHistogram;
use pcs_core::Algorithm;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_engine::QueryRequest;

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    println!(
        "Table 3 — locations of maximal feasible subtrees ({} queries, k = {})\n",
        args.queries, args.k
    );
    header(&["dataset", "level 1", "level 2", "level 3", "level 4", "level 5", "themes"]);
    for which in SuiteDataset::ALL {
        let ds = build(which, cfg);
        let name = ds.name.clone();
        let (queries, _) = sample_query_vertices(&ds, args.k, args.queries, args.seed ^ 0x717);
        // The dataset is fully sampled; move it into the owned engine.
        let engine = engine_owning(ds);
        let requests: Vec<QueryRequest> = queries
            .iter()
            .map(|&q| QueryRequest::vertex(q).k(args.k).algorithm(Algorithm::AdvP))
            .collect();
        let mut hist = LevelHistogram::new();
        for result in engine.query_batch(&requests) {
            let resp = result.expect("query in range");
            hist.add_outcome(&resp.outcome);
        }
        let fr = hist.fractions();
        row(&[
            name,
            pct(fr[0]),
            pct(fr[1]),
            pct(fr[2]),
            pct(fr[3]),
            pct(fr[4]),
            hist.total().to_string(),
        ]);
    }
    println!("\nPaper (Table 3): levels 3-4 dominate, e.g. PubMed 43% at level 3.");
}
