//! The round-trip invariant, property-tested: for random taxonomies,
//! graphs, and profiles (including empty root-only profiles and
//! isolated vertices), an engine loaded from its own snapshot answers
//! **identically** to the source engine — across all five PCS
//! algorithms and a sweep of `k` — and keeps answering identically
//! after both engines absorb the same mutation.

use pcs_datasets::taxonomy::random_taxonomy;
use pcs_engine::{IndexMode, PcsEngine, QueryRequest, QueryResponse};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique-per-case snapshot path (cases may run concurrently).
fn tmp_path() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pcs-proptest-roundtrip-{}-{}.snapshot",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One community: its theme subtree's labels and its vertex set.
type CommunityPrint = (Vec<u32>, Vec<u32>);

/// Everything observable about a response that callers can depend on.
fn fingerprint(resp: &QueryResponse) -> (Vec<CommunityPrint>, usize, u64) {
    let communities = resp
        .communities()
        .iter()
        .map(|c| (c.subtree.nodes().to_vec(), c.vertices.clone()))
        .collect();
    (communities, resp.total_communities, resp.epoch)
}

/// A random profiled graph: `n` vertices, a random edge subset (leaving
/// some vertices isolated), and profiles where some vertices carry no
/// labels at all (`PTree::root_only`).
#[derive(Debug, Clone)]
struct Instance {
    labels: u8,
    n: u8,
    edges: Vec<(u8, u8)>,
    profile_picks: Vec<Vec<u8>>, // empty inner vec = root-only profile
    seed: u64,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2u8..28, 2u8..24, any::<u64>())
        .prop_flat_map(|(labels, n, seed)| {
            (
                Just(labels),
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..(n as usize * 2)),
                proptest::collection::vec(
                    proptest::collection::vec(0u8..labels, 0..5),
                    n as usize..n as usize + 1,
                ),
                Just(seed),
            )
        })
        .prop_map(|(labels, n, edges, profile_picks, seed)| Instance {
            labels,
            n,
            edges,
            profile_picks,
            seed,
        })
}

fn build_instance(inst: &Instance) -> (Graph, Taxonomy, Vec<PTree>) {
    let tax = random_taxonomy(inst.labels as usize, 4, 5, inst.seed);
    let edges: Vec<(u32, u32)> =
        inst.edges.iter().filter(|(a, b)| a != b).map(|&(a, b)| (a as u32, b as u32)).collect();
    let g = Graph::from_edges(inst.n as usize, &edges).unwrap();
    let profiles: Vec<PTree> = inst
        .profile_picks
        .iter()
        .map(|picks| {
            if picks.is_empty() {
                PTree::root_only()
            } else {
                PTree::from_labels(&tax, picks.iter().map(|&p| p as u32 % tax.len() as u32))
                    .unwrap()
            }
        })
        .collect();
    (g, tax, profiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load → query is indistinguishable from the source engine.
    #[test]
    fn loaded_engine_answers_identically(inst in instance()) {
        let (g, tax, profiles) = build_instance(&inst);
        let engine = PcsEngine::builder()
            .graph(g.clone())
            .taxonomy(tax)
            .profiles(profiles)
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        let path = tmp_path();
        engine.save(&path).unwrap();
        let loaded = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        prop_assert_eq!(loaded.epoch(), engine.epoch());
        let (snap_a, snap_b) = (engine.snapshot(), loaded.snapshot());
        prop_assert_eq!(snap_b.cores().core_numbers(), snap_a.cores().core_numbers());
        let max_k = snap_a.cores().max_core() + 2;
        for q in 0..g.num_vertices() as u32 {
            for k in 0..=max_k {
                for algo in pcs_engine::Algorithm::ALL {
                    let req = QueryRequest::vertex(q).k(k).algorithm(algo);
                    let a = engine.query(&req).unwrap();
                    let b = loaded.query(&req).unwrap();
                    prop_assert_eq!(
                        fingerprint(&a),
                        fingerprint(&b),
                        "q={} k={} algo={}",
                        q,
                        k,
                        algo.name()
                    );
                }
            }
        }

        // Same mutation applied to both keeps them in lockstep: the
        // loaded engine is as mutable as the built one.
        let (u, v) = (0u32, (g.num_vertices() as u32).saturating_sub(1));
        if u != v {
            let ra = engine.apply(&pcs_engine::UpdateBatch::new().add_edge(u, v)).unwrap();
            let rb = loaded.apply(&pcs_engine::UpdateBatch::new().add_edge(u, v)).unwrap();
            prop_assert_eq!(ra.epoch, rb.epoch);
            prop_assert_eq!(ra.edges_added, rb.edges_added);
            let (snap_a, snap_b) = (engine.snapshot(), loaded.snapshot());
            prop_assert_eq!(snap_b.cores().core_numbers(), snap_a.cores().core_numbers());
            for q in 0..g.num_vertices() as u32 {
                let req = QueryRequest::vertex(q).k(2);
                prop_assert_eq!(
                    fingerprint(&engine.query(&req).unwrap()),
                    fingerprint(&loaded.query(&req).unwrap()),
                    "post-update q={}", q
                );
            }
        }
    }

    /// The raw byte container also round-trips: parse(serialize(f)) has
    /// exactly the original sections.
    #[test]
    fn container_round_trips_random_sections(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..6
        )
    ) {
        let mut file = pcs_store::SnapshotFile::new();
        for (i, p) in payloads.iter().enumerate() {
            file.push_section(i as u32 + 1, p.clone());
        }
        let back = pcs_store::SnapshotFile::from_bytes(&file.to_bytes()).unwrap();
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(back.section(i as u32 + 1), Some(p.as_slice()));
        }
    }
}
