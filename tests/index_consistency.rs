//! Cross-crate property tests for the CP-tree index: `get` must agree
//! with a from-scratch computation on arbitrary profiled graphs, and
//! the headMap must restore every profile exactly.

use pcs::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = rng.gen_range(4..=14usize);
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..labels {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    let n = rng.gen_range(6..=22usize);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.3) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=5usize);
            let picks: Vec<LabelId> =
                (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cptree_get_matches_scratch_computation(seed in 0u64..10_000) {
        let (g, tax, profiles) = random_instance(seed);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        let mut sc = pcs::graph::core::SubsetCore::new(g.num_vertices());
        for label in 0..tax.len() as u32 {
            let with_label: Vec<VertexId> = g
                .vertices()
                .filter(|&v| profiles[v as usize].contains(label))
                .collect();
            prop_assert_eq!(index.vertices_with_label(label), &with_label[..]);
            for q in g.vertices() {
                for k in 0..3u32 {
                    let expect = sc.kcore_component_within(&g, &with_label, q, k);
                    prop_assert_eq!(
                        index.get(k, q, label), expect,
                        "label={} q={} k={}", label, q, k
                    );
                }
            }
        }
    }

    #[test]
    fn headmap_restores_every_profile(seed in 0u64..10_000) {
        let (g, tax, profiles) = random_instance(seed);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(&index.restore_ptree(&tax, v), &profiles[v as usize]);
        }
    }

    #[test]
    fn label_cores_nest_along_taxonomy(seed in 0u64..10_000) {
        // I.get(k,q,child) ⊆ I.get(k,q,parent): the containment chain
        // verifyPtree exploits.
        let (g, tax, profiles) = random_instance(seed);
        let index = CpTree::build(&g, &tax, &profiles).unwrap();
        for label in 1..tax.len() as u32 {
            let parent = tax.parent(label);
            for q in g.vertices() {
                for k in 0..3u32 {
                    if let Some(child_core) = index.get(k, q, label) {
                        let parent_core = index.get(k, q, parent)
                            .expect("ancestor label held by a superset of vertices");
                        for v in &child_core {
                            prop_assert!(parent_core.binary_search(v).is_ok());
                        }
                    }
                }
            }
        }
    }
}
