//! Recovering friendship circles in ego networks (Fig. 11 / Table 4).
//!
//! Builds the three FB-like ego networks with planted ground-truth
//! circles, queries members with PCS and the baselines, and scores
//! every method's best-match F1 against the circles containing the
//! query — the accuracy experiment of the paper's Section 5.2.
//!
//! Run with: `cargo run --release --example ego_circles`

use pcs::prelude::*;

fn main() {
    let k = 4;
    let queries_per_net = 30;
    println!("{:<10} {:>8} {:>8} {:>8} {:>8}", "network", "PCS", "ACQ", "Global", "Local");

    for which in pcs::datasets::ego::EgoNetwork::ALL {
        let ds = pcs::datasets::ego::build(which, 11);

        // Query vertices drawn from ground-truth circles (as the paper
        // does), restricted to the k-core so every method can answer.
        let (pool, _) = pcs::datasets::sample_query_vertices(&ds, k, queries_per_net * 3, 23);
        let queries: Vec<VertexId> = pool
            .into_iter()
            .filter(|q| ds.groups.iter().any(|g| g.binary_search(q).is_ok()))
            .take(queries_per_net)
            .collect();

        // The engine takes ownership of the profiled graph; the
        // ground-truth circles stay behind for scoring.
        let groups = ds.groups;
        let engine = PcsEngine::builder()
            .graph(ds.graph)
            .taxonomy(ds.tax)
            .profiles(ds.profiles)
            .index_mode(IndexMode::Eager)
            .build()
            .expect("consistent dataset");

        // PCS answers the whole workload in one order-preserving batch;
        // the baselines borrow the same snapshot the batch ran against.
        let snap = engine.snapshot();
        let requests: Vec<QueryRequest> =
            queries.iter().map(|&q| QueryRequest::vertex(q).k(k)).collect();
        let batch = engine.query_batch(&requests);

        let mut scores = [0.0f64; 4]; // PCS, ACQ, Global, Local
        for (&q, pcs_result) in queries.iter().zip(batch) {
            let truths: Vec<&Vec<VertexId>> =
                groups.iter().filter(|g| g.binary_search(&q).is_ok()).collect();
            let truth_sets: Vec<Vec<VertexId>> = truths.iter().map(|t| (*t).clone()).collect();

            let pcs_found: Vec<Vec<VertexId>> = pcs_result
                .map(|r| r.outcome.communities.into_iter().map(|c| c.vertices).collect())
                .unwrap_or_default();
            scores[0] += best_f1(&pcs_found, &truth_sets);

            let acq_found: Vec<Vec<VertexId>> =
                acq_query(snap.graph(), engine.taxonomy(), snap.profiles(), q, k)
                    .communities
                    .into_iter()
                    .map(|c| c.community.vertices)
                    .collect();
            scores[1] += best_f1(&acq_found, &truth_sets);

            let global_found: Vec<Vec<VertexId>> =
                global_query(snap.graph(), snap.profiles(), q, k)
                    .map(|c| vec![c.vertices])
                    .unwrap_or_default();
            scores[2] += best_f1(&global_found, &truth_sets);

            let local_found: Vec<Vec<VertexId>> =
                local_query(snap.graph(), snap.profiles(), q, k, usize::MAX)
                    .map(|c| vec![c.vertices])
                    .unwrap_or_default();
            scores[3] += best_f1(&local_found, &truth_sets);
        }
        let n = queries.len().max(1) as f64;
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            which.name(),
            scores[0] / n,
            scores[1] / n,
            scores[2] / n,
            scores[3] / n
        );
    }
    println!("\nExpected (paper Fig. 11): PCS stably highest; Global lowest (its");
    println!("structure-only communities overshoot the circles).");
}
