//! Kill-point hooks for crash-fault injection.
//!
//! A durability layer is only as good as its behaviour at the worst
//! possible instant, so the write paths in this crate (and the engine's
//! `apply` sequence built on them) thread named *kill points* through
//! every step of the log → fsync → rename → publish pipeline. In
//! production every hook is a no-op branch on an empty thread-local
//! list. A crash test arms a point by name; the next time execution
//! reaches it the hook returns a typed [`StoreError`] — the moment the
//! process "dies" — and the test then drops the engine and re-opens the
//! durable directory to assert recovery is prefix-consistent.
//!
//! The registry is **thread-local** on purpose: `PcsEngine::apply` and
//! the WAL run on the caller's thread, so parallel tests (cargo's
//! default) can each arm their own kill points without interfering.
//!
//! This module is `#[doc(hidden)]`-reexported and compiled
//! unconditionally, following the precedent of
//! `PcsEngine::poison_scratch_pool_for_test`: the hooks must exist in
//! exactly the binaries the crash matrix exercises, and an un-armed
//! hook costs one thread-local read of an almost-always-empty vector
//! on a path that is about to issue an `fsync`.

use crate::format::{Result, StoreError};
use std::cell::RefCell;

thread_local! {
    static ARMED: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Arms `point` for the current thread: the next call to [`hit`] with
/// the same name fires once and disarms it.
pub fn arm(point: &'static str) {
    ARMED.with(|a| a.borrow_mut().push(point));
}

/// Disarms every kill point on the current thread (test teardown).
pub fn disarm_all() {
    ARMED.with(|a| a.borrow_mut().clear());
}

/// Number of points currently armed on this thread — assert `0` at the
/// end of a test to prove every armed point was actually reached.
pub fn armed_count() -> usize {
    ARMED.with(|a| a.borrow().len())
}

/// The hook the write paths call: returns an injected I/O error if
/// `point` is armed on this thread (consuming the arming), `Ok(())`
/// otherwise.
pub fn hit(point: &'static str) -> Result<()> {
    let fired = ARMED.with(|a| {
        let mut armed = a.borrow_mut();
        match armed.iter().position(|p| *p == point) {
            Some(i) => {
                armed.swap_remove(i);
                true
            }
            None => false,
        }
    });
    if fired {
        return Err(StoreError::Io {
            op: "kill-point",
            detail: format!("injected crash at {point}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hooks_are_noops() {
        assert_eq!(armed_count(), 0);
        assert!(hit("anything").is_ok());
    }

    #[test]
    fn armed_point_fires_once_then_disarms() {
        arm("p1");
        assert_eq!(armed_count(), 1);
        let err = hit("p1").unwrap_err();
        assert!(matches!(err, StoreError::Io { op: "kill-point", .. }));
        assert!(hit("p1").is_ok(), "kill points are one-shot");
        assert_eq!(armed_count(), 0);
    }

    #[test]
    fn points_are_thread_local() {
        arm("p2");
        std::thread::spawn(|| {
            assert!(hit("p2").is_ok(), "other threads must not see this arming");
        })
        .join()
        .unwrap();
        assert!(hit("p2").is_err());
    }
}
