//! k-truss decomposition and localized k-truss extraction.
//!
//! The PCS paper's conclusion names k-truss as the natural alternative
//! structure-cohesiveness measure ("we will study other structure
//! cohesiveness measures (e.g., k-truss and k-clique)"). This module
//! supplies that substrate:
//!
//! * [`TrussDecomposition`] — per-edge truss numbers via support
//!   peeling: an edge has truss `t` when it belongs to the `t`-truss,
//!   the largest subgraph where every edge closes ≥ `t − 2` triangles;
//! * [`SubsetTruss`] — repeated, localized computation of the connected
//!   k-truss containing a query vertex within a candidate vertex
//!   subset, the verification primitive for truss-based profiled
//!   community search (`pcs-core::truss`).

use crate::bitset::EpochSet;
use crate::graph::{Graph, VertexId};
use crate::hash::FxHashMap;

/// Truss numbers for every edge of a graph.
#[derive(Clone, Debug)]
pub struct TrussDecomposition {
    /// Edge list as `(a, b)` with `a < b`, sorted.
    edges: Vec<(VertexId, VertexId)>,
    /// Truss number per edge, parallel with `edges`.
    truss: Vec<u32>,
    max_truss: u32,
}

impl TrussDecomposition {
    /// Runs support peeling in `O(m^1.5)`-ish time (triangle counting
    /// dominated).
    pub fn new(g: &Graph) -> Self {
        let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        let m = edges.len();
        let mut index_of: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for (i, &e) in edges.iter().enumerate() {
            index_of.insert(e, i as u32);
        }
        let edge_id = |a: u32, b: u32| -> u32 {
            let key = if a < b { (a, b) } else { (b, a) };
            index_of[&key]
        };
        // Support = number of triangles through each edge.
        let mut support = vec![0u32; m];
        for (i, &(a, b)) in edges.iter().enumerate() {
            // Merge-count common neighbours (adjacency lists sorted).
            let (mut x, mut y) = (g.neighbors(a), g.neighbors(b));
            while let (Some(&u), Some(&v)) = (x.first(), y.first()) {
                match u.cmp(&v) {
                    std::cmp::Ordering::Less => x = &x[1..],
                    std::cmp::Ordering::Greater => y = &y[1..],
                    std::cmp::Ordering::Equal => {
                        support[i] += 1;
                        x = &x[1..];
                        y = &y[1..];
                    }
                }
            }
        }
        // Peel edges in non-decreasing support order (bucket queue).
        let mut truss = vec![0u32; m];
        let mut removed = vec![false; m];
        let max_sup = support.iter().copied().max().unwrap_or(0) as usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_sup + 1];
        for (i, &s) in support.iter().enumerate() {
            buckets[s as usize].push(i as u32);
        }
        let mut processed = 0usize;
        let mut level = 0usize;
        let mut max_truss = 2;
        while processed < m {
            // Find the lowest non-empty bucket ≤ current supports.
            while level <= max_sup && buckets[level].is_empty() {
                level += 1;
            }
            if level > max_sup {
                break;
            }
            let Some(eid) = buckets[level].pop() else { continue };
            let eid = eid as usize;
            if removed[eid] {
                continue;
            }
            if (support[eid] as usize) > level {
                // Stale entry; reinsert at its true level.
                buckets[support[eid] as usize].push(eid as u32);
                continue;
            }
            removed[eid] = true;
            processed += 1;
            let t = support[eid] + 2;
            truss[eid] = t;
            max_truss = max_truss.max(t);
            // Decrement supports of edges in triangles with eid.
            let (a, b) = edges[eid];
            let (mut x, mut y) = (g.neighbors(a), g.neighbors(b));
            while let (Some(&u), Some(&v)) = (x.first(), y.first()) {
                match u.cmp(&v) {
                    std::cmp::Ordering::Less => x = &x[1..],
                    std::cmp::Ordering::Greater => y = &y[1..],
                    std::cmp::Ordering::Equal => {
                        let e1 = edge_id(a, u) as usize;
                        let e2 = edge_id(b, u) as usize;
                        if !removed[e1] && !removed[e2] {
                            for e in [e1, e2] {
                                // Truss peeling is monotone: support
                                // never drops below the current level.
                                if support[e] as usize > level {
                                    support[e] -= 1;
                                    buckets[support[e] as usize].push(e as u32);
                                    if (support[e] as usize) < level {
                                        support[e] = level as u32;
                                    }
                                }
                            }
                        }
                        x = &x[1..];
                        y = &y[1..];
                    }
                }
            }
            // Supports may have dropped to the current level; restart
            // scanning from it.
        }
        TrussDecomposition { edges, truss, max_truss }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The largest truss level with at least one edge (≥ 2 for any
    /// graph with an edge).
    pub fn max_truss(&self) -> u32 {
        self.max_truss
    }

    /// Truss number of the edge `{a, b}`, if present.
    pub fn truss_of(&self, a: VertexId, b: VertexId) -> Option<u32> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.binary_search(&key).ok().map(|i| self.truss[i])
    }

    /// The connected k-truss containing `q`: vertices reachable from
    /// `q` over edges with truss ≥ k. Returns the sorted vertex set, or
    /// `None` if `q` touches no qualifying edge (for `k ≤ 2`, falls
    /// back to the connected component of `q`).
    pub fn ktruss_component(&self, g: &Graph, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        if (q as usize) >= g.num_vertices() {
            return None;
        }
        if k <= 2 {
            return Some(crate::components::component_containing(g, q));
        }
        let qualifies = |a: u32, b: u32| self.truss_of(a, b).is_some_and(|t| t >= k);
        if !g.neighbors(q).iter().any(|&u| qualifies(q, u)) {
            return None;
        }
        let mut seen = vec![false; g.num_vertices()];
        let mut queue = vec![q];
        seen[q as usize] = true;
        let mut out = Vec::new();
        while let Some(v) = queue.pop() {
            out.push(v);
            for &u in g.neighbors(v) {
                if !seen[u as usize] && qualifies(v, u) {
                    seen[u as usize] = true;
                    queue.push(u);
                }
            }
        }
        out.sort_unstable();
        Some(out)
    }
}

/// Reusable engine computing the connected k-truss containing a query
/// vertex inside an arbitrary candidate vertex subset (the truss
/// analogue of [`crate::core::SubsetCore`]).
#[derive(Clone, Debug)]
pub struct SubsetTruss {
    members: EpochSet,
}

impl SubsetTruss {
    /// Creates scratch state for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        SubsetTruss { members: EpochSet::new(n) }
    }

    /// The connected k-truss containing `q` in the subgraph induced by
    /// `candidates` (sorted result), or `None`.
    ///
    /// Runs a truss decomposition of the induced subgraph; cost is
    /// bounded by the candidate subgraph, not by the host graph.
    pub fn ktruss_component_within(
        &mut self,
        g: &Graph,
        candidates: &[VertexId],
        q: VertexId,
        k: u32,
    ) -> Option<Vec<VertexId>> {
        self.members.reset();
        for &v in candidates {
            self.members.insert(v as usize);
        }
        if !self.members.contains(q as usize) {
            return None;
        }
        let (sub, ids) = g.induced_subgraph(candidates);
        let q_local = ids.binary_search(&q).ok()? as u32;
        let td = TrussDecomposition::new(&sub);
        let local = td.ktruss_component(&sub, q_local, k)?;
        Some(local.into_iter().map(|v| ids[v as usize]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: repeatedly delete edges with support < k-2,
    /// then return the component of q over surviving edges.
    fn naive_ktruss(g: &Graph, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        if k <= 2 {
            return Some(crate::components::component_containing(g, q));
        }
        let mut alive: std::collections::BTreeSet<(u32, u32)> = g.edges().collect();
        loop {
            let mut drop = Vec::new();
            for &(a, b) in &alive {
                let mut sup = 0;
                for &u in g.neighbors(a) {
                    let e1 = if a < u { (a, u) } else { (u, a) };
                    let e2 = if b < u { (b, u) } else { (u, b) };
                    if u != b && alive.contains(&e1) && alive.contains(&e2) {
                        sup += 1;
                    }
                }
                if sup < k - 2 {
                    drop.push((a, b));
                }
            }
            if drop.is_empty() {
                break;
            }
            for e in drop {
                alive.remove(&e);
            }
        }
        // BFS from q over surviving edges.
        if !alive.iter().any(|&(a, b)| a == q || b == q) {
            return None;
        }
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(q);
        let mut queue = vec![q];
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                let e = if v < u { (v, u) } else { (u, v) };
                if alive.contains(&e) && seen.insert(u) {
                    queue.push(u);
                }
            }
        }
        Some(seen.into_iter().collect())
    }

    fn k4_plus_tail() -> Graph {
        // K4 {0,1,2,3} with a tail 3-4-5 and a triangle {4,5,6}.
        Graph::from_edges(
            7,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (4, 6), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn k4_truss_numbers() {
        let g = k4_plus_tail();
        let td = TrussDecomposition::new(&g);
        // K4 edges have truss 4.
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            assert_eq!(td.truss_of(a, b), Some(4), "edge ({a},{b})");
        }
        // Triangle edges have truss 3; the bridge 3-4 has truss 2.
        for (a, b) in [(4, 5), (4, 6), (5, 6)] {
            assert_eq!(td.truss_of(a, b), Some(3), "edge ({a},{b})");
        }
        assert_eq!(td.truss_of(3, 4), Some(2));
        assert_eq!(td.truss_of(0, 6), None);
        assert_eq!(td.max_truss(), 4);
        assert_eq!(td.num_edges(), 10);
    }

    #[test]
    fn ktruss_components() {
        let g = k4_plus_tail();
        let td = TrussDecomposition::new(&g);
        assert_eq!(td.ktruss_component(&g, 0, 4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(td.ktruss_component(&g, 5, 3).unwrap(), vec![4, 5, 6]);
        // k=3 from inside K4 stays in K4 (bridge edge has truss 2).
        assert_eq!(td.ktruss_component(&g, 0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert!(td.ktruss_component(&g, 5, 4).is_none());
        // k<=2: whole component.
        assert_eq!(td.ktruss_component(&g, 5, 2).unwrap().len(), 7);
        assert!(td.ktruss_component(&g, 99, 3).is_none());
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for trial in 0..15 {
            let n = 16 + trial % 5;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.3) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let td = TrussDecomposition::new(&g);
            for q in 0..n as u32 {
                for k in 2..=5u32 {
                    assert_eq!(
                        td.ktruss_component(&g, q, k),
                        naive_ktruss(&g, q, k),
                        "trial={trial} q={q} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn subset_truss_restricts() {
        let g = k4_plus_tail();
        let mut st = SubsetTruss::new(g.num_vertices());
        // Full set behaves like the global decomposition.
        let all: Vec<u32> = g.vertices().collect();
        assert_eq!(st.ktruss_component_within(&g, &all, 0, 4).unwrap(), vec![0, 1, 2, 3]);
        // Restricting to {0,1,2} leaves only a triangle: no 4-truss.
        assert!(st.ktruss_component_within(&g, &[0, 1, 2], 0, 4).is_none());
        assert_eq!(st.ktruss_component_within(&g, &[0, 1, 2], 0, 3).unwrap(), vec![0, 1, 2]);
        // q outside the candidate set.
        assert!(st.ktruss_component_within(&g, &[0, 1, 2], 5, 3).is_none());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::from_edges(3, &[]).unwrap();
        let td = TrussDecomposition::new(&g);
        assert_eq!(td.num_edges(), 0);
        assert!(td.ktruss_component(&g, 0, 3).is_none());
        assert_eq!(td.ktruss_component(&g, 0, 2).unwrap(), vec![0]);
    }
}
