//! Table 3: locations of maximal feasible subtrees in the search space.
//!
//! For each dataset, run PCS on the query workload and bucket the
//! lattice level of every returned community's theme subtree into five
//! bands of the search-space depth. The paper's observation — most
//! themes sit in the *middle* bands, motivating the boundary-walking
//! advanced methods — should reproduce.

use pcs_bench::{header, parse_args, pct, row};
use pcs_core::stats::LevelHistogram;
use pcs_core::{Algorithm, QueryContext};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_index::CpTree;

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    println!(
        "Table 3 — locations of maximal feasible subtrees ({} queries, k = {})\n",
        args.queries, args.k
    );
    header(&["dataset", "level 1", "level 2", "level 3", "level 4", "level 5", "themes"]);
    for which in SuiteDataset::ALL {
        let ds = build(which, cfg);
        let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).expect("consistent dataset");
        let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles)
            .expect("consistent dataset")
            .with_index(&index);
        let (queries, _) = sample_query_vertices(&ds, args.k, args.queries, args.seed ^ 0x717);
        let mut hist = LevelHistogram::new();
        for &q in &queries {
            let out = ctx.query(q, args.k, Algorithm::AdvP).expect("query in range");
            hist.add_outcome(&out);
        }
        let fr = hist.fractions();
        row(&[
            ds.name.clone(),
            pct(fr[0]),
            pct(fr[1]),
            pct(fr[2]),
            pct(fr[3]),
            pct(fr[4]),
            hist.total().to_string(),
        ]);
    }
    println!("\nPaper (Table 3): levels 3-4 dominate, e.g. PubMed 43% at level 3.");
}
