//! A minimal hand-rolled Rust token scanner.
//!
//! This is deliberately *not* a full Rust lexer: it only needs to be exact
//! about the things that would make a regex-based linter lie — comments,
//! string/char/raw-string literals, and lifetimes — so that the rule engine
//! can reason over real code tokens with line/column positions. It never
//! interprets semantics; the rules layer does that with local token context.

/// The token classes the rule engine cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unwrap`, `for`, `r#match` → `match`).
    Ident,
    /// Any literal: numeric, string, raw string, byte string, or char.
    Literal,
    /// A lifetime token such as `'a` (including `'static`).
    Lifetime,
    /// Single punctuation character: `.`, `#`, `!`, `[`, `{`, `(`, etc.
    /// Multi-char operators are emitted as individual chars; the rules only
    /// ever match single characters.
    Punct(char),
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier text (empty for non-identifiers to avoid per-token copies
    /// of literal bodies the rules never inspect).
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// A `// audit:allow(rule): reason` comment found while lexing.
#[derive(Debug, Clone)]
pub struct AllowComment {
    pub rule: String,
    /// Justification text after the colon; empty means malformed.
    pub reason: String,
    pub line: u32,
    /// `true` for the `audit:allow-block` form, which covers the next
    /// brace-delimited block instead of a single line.
    pub block: bool,
}

/// Full lex result: the token stream plus side tables gathered from trivia.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowComment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens plus `audit:allow` annotations.
///
/// Unterminated constructs (string, block comment) consume to end of input
/// rather than erroring: the linter runs on code that already compiles, so
/// this path only matters for fixture robustness.
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                lex_line_comment(&mut cur, &mut out, line);
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                lex_block_comment(&mut cur);
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                lex_raw_or_byte_string(&mut cur);
                out.tokens.push(Token { kind: TokKind::Literal, text: String::new(), line, col });
            }
            _ if is_ident_start(b) => {
                let text = lex_ident(&mut cur);
                out.tokens.push(Token { kind: TokKind::Ident, text, line, col });
            }
            b'0'..=b'9' => {
                lex_number(&mut cur);
                out.tokens.push(Token { kind: TokKind::Literal, text: String::new(), line, col });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(Token { kind: TokKind::Literal, text: String::new(), line, col });
            }
            b'\'' => {
                let kind = lex_quote(&mut cur);
                out.tokens.push(Token { kind, text: String::new(), line, col });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct(b as char),
                    text: String::new(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// `r"`, `r#"`, `br"`, `b"`, `rb` is not valid Rust; detect the prefixes that
/// start a (raw/byte) string so the `r`/`b` is not lexed as an identifier.
fn starts_raw_or_byte_string(cur: &Cursor) -> bool {
    match cur.peek() {
        Some(b'r') => {
            matches!(cur.peek_at(1), Some(b'"') | Some(b'#')) && raw_hashes_then_quote(cur, 1)
        }
        Some(b'b') => match cur.peek_at(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => raw_hashes_then_quote(cur, 2),
            _ => false,
        },
        _ => false,
    }
}

fn raw_hashes_then_quote(cur: &Cursor, mut off: usize) -> bool {
    while cur.peek_at(off) == Some(b'#') {
        off += 1;
    }
    cur.peek_at(off) == Some(b'"')
}

fn lex_ident(cur: &mut Cursor) -> String {
    let start = cur.pos;
    // Raw identifier prefix `r#ident` never reaches here (caught by the raw
    // string probe only when followed by quotes), so handle it explicitly.
    if cur.peek() == Some(b'r')
        && cur.peek_at(1) == Some(b'#')
        && cur.peek_at(2).is_some_and(is_ident_start)
    {
        cur.bump();
        cur.bump();
    }
    let text_start = cur.pos;
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    let _ = start;
    String::from_utf8_lossy(&cur.src[text_start..cur.pos]).into_owned()
}

fn lex_number(cur: &mut Cursor) {
    // Numbers may contain `_`, hex/oct/bin prefixes, a float dot, exponent
    // signs, and a type suffix; consume greedily but stop before `..` ranges
    // and before a method call on a literal (`1.max(2)`).
    while let Some(b) = cur.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            cur.bump();
        } else if b == b'.' {
            if cur.peek_at(1) == Some(b'.') || cur.peek_at(1).is_some_and(is_ident_start) {
                break;
            }
            cur.bump();
        } else if (b == b'+' || b == b'-')
            && cur.pos > 0
            && matches!(cur.src[cur.pos - 1], b'e' | b'E')
        {
            cur.bump();
        } else {
            break;
        }
    }
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Disambiguate char literal vs lifetime after a `'`.
fn lex_quote(cur: &mut Cursor) -> TokKind {
    cur.bump(); // the quote
                // Lifetime: 'ident not followed by a closing quote.
    if cur.peek().is_some_and(is_ident_start) {
        // Look ahead past the identifier for a closing quote ('a' is a char).
        let mut off = 0;
        while cur.peek_at(off).is_some_and(is_ident_continue) {
            off += 1;
        }
        if cur.peek_at(off) != Some(b'\'') {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            return TokKind::Lifetime;
        }
    }
    // Char literal: consume escape or single char, then the closing quote.
    if cur.peek() == Some(b'\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    while let Some(b) = cur.peek() {
        cur.bump();
        if b == b'\'' {
            break;
        }
    }
    TokKind::Literal
}

fn lex_raw_or_byte_string(cur: &mut Cursor) {
    // Optional b, optional r, hashes, then the quoted body.
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'\'') {
        // byte char literal b'x'
        lex_quote(cur);
        return;
    }
    let raw = cur.peek() == Some(b'r');
    if raw {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    if !raw {
        // plain byte string: backslash escapes apply
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        return;
    }
    // raw string: ends at `"` followed by `hashes` hash marks
    while let Some(b) = cur.bump() {
        if b == b'"' {
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek_at(i) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    }
}

fn lex_line_comment(cur: &mut Cursor, out: &mut LexOutput, line: u32) {
    let start = cur.pos;
    while cur.peek().is_some_and(|b| b != b'\n') {
        cur.bump();
    }
    let body = String::from_utf8_lossy(&cur.src[start..cur.pos]);
    // Doc comments (`///`, `//!`) are API prose, not suppression markers;
    // only plain comments can carry allow annotations.
    if body.starts_with("///") || body.starts_with("//!") {
        return;
    }
    // Recognize the line form and the block form (which covers the next
    // brace-delimited block) anywhere in the comment — the line form is
    // commonly a trailing comment on the offending line itself.
    let (block, idx) = match (body.find("audit:allow-block("), body.find("audit:allow(")) {
        (Some(i), _) => (true, Some(i + "audit:allow-block(".len())),
        (None, Some(i)) => (false, Some(i + "audit:allow(".len())),
        (None, None) => (false, None),
    };
    if let Some(idx) = idx {
        let rest = &body[idx..];
        if let Some(close) = rest.find(')') {
            let rule = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let reason = after.strip_prefix(':').map(|r| r.trim().to_string()).unwrap_or_default();
            out.allows.push(AllowComment { rule, reason, line, block });
        } else {
            out.allows.push(AllowComment {
                rule: String::new(),
                reason: String::new(),
                line,
                block,
            });
        }
    }
}

fn lex_block_comment(cur: &mut Cursor) {
    cur.bump();
    cur.bump(); // consume `/*`
    let mut depth = 1usize;
    while depth > 0 {
        match cur.peek() {
            Some(b'/') if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            Some(b'*') if cur.peek_at(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            Some(_) => {
                cur.bump();
            }
            None => break,
        }
    }
}
