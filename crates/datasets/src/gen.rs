//! The community-structured profiled-graph generator.
//!
//! Produces graphs whose communities *mean something in profile space*:
//! vertices are assigned to overlapping planted groups, each group gets
//! a **theme** — a random subtree of the taxonomy — and members' P-trees
//! are their groups' themes plus individual noise paths. Intra-group
//! edge probability is derived from the target average degree. The
//! result is exactly the regime PCS is designed for: k-cores whose
//! members share non-trivial subtrees, embedded in a sparse background.

use pcs_graph::{gen as ggen, Graph, GraphBuilder, VertexId};
use pcs_ptree::{LabelId, PTree, Taxonomy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for one synthetic profiled graph.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Display name (e.g. "ACMDL-like").
    pub name: String,
    /// Number of vertices.
    pub vertices: usize,
    /// Target average degree `d̂` (Table 2).
    pub avg_degree: f64,
    /// Target average P-tree size `P̂` (Table 2).
    pub avg_ptree: f64,
    /// Average planted-group size.
    pub group_size: usize,
    /// Average group memberships per vertex (≥ 1; the fractional part
    /// is the probability of a second membership).
    pub groups_per_vertex: f64,
    /// Fraction of a member's degree that goes to group mates (the rest
    /// is background noise edges).
    pub intra_fraction: f64,
    /// Fraction of the group theme's size relative to `avg_ptree`.
    pub theme_fraction: f64,
    /// RNG seed — everything downstream is deterministic in this.
    pub seed: u64,
}

impl DatasetSpec {
    /// A reasonable default spec for tests and examples.
    pub fn small(name: &str, vertices: usize, seed: u64) -> Self {
        DatasetSpec {
            name: name.to_owned(),
            vertices,
            avg_degree: 13.0,
            avg_ptree: 12.0,
            group_size: 24,
            groups_per_vertex: 1.3,
            intra_fraction: 0.75,
            theme_fraction: 0.5,
            seed,
        }
    }
}

/// A fully materialized profiled graph with optional ground truth.
#[derive(Clone, Debug)]
pub struct ProfiledDataset {
    /// Display name.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// The GP-tree.
    pub tax: Taxonomy,
    /// Per-vertex P-trees.
    pub profiles: Vec<PTree>,
    /// Planted groups (ground-truth communities), when generated.
    pub groups: Vec<Vec<VertexId>>,
}

impl ProfiledDataset {
    /// Average P-tree size `P̂`.
    pub fn avg_ptree_size(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        self.profiles.iter().map(|p| p.len()).sum::<usize>() as f64 / self.profiles.len() as f64
    }

    /// One Table 2 row: name, |V|, |E|, d̂, P̂, |GP-tree|.
    pub fn table2_row(&self) -> (String, usize, usize, f64, f64, usize) {
        (
            self.name.clone(),
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.graph.avg_degree(),
            self.avg_ptree_size(),
            self.tax.len(),
        )
    }
}

/// A random P-tree over `tax` with roughly `target` nodes, built by
/// unioning root-to-leaf paths of random taxonomy nodes. The closed
/// size is tracked exactly, so the result has `target` ± one-path
/// nodes.
pub fn random_ptree(tax: &Taxonomy, target: usize, rng: &mut SmallRng) -> PTree {
    grow_profile(tax, std::iter::once(Taxonomy::ROOT), target, &[], rng)
}

/// Extends `theme` with noise paths (drawn near `anchor_pool`) until
/// the profile reaches roughly `target` nodes.
fn profile_around_theme(
    tax: &Taxonomy,
    theme: &PTree,
    target: usize,
    anchor_pool: &[LabelId],
    rng: &mut SmallRng,
) -> PTree {
    grow_profile(tax, theme.nodes().iter().copied(), target, anchor_pool, rng)
}

/// Shared growth loop: start from a closed seed set and add taxonomy
/// nodes (with their ancestor paths) until the closed set reaches
/// `target` nodes.
///
/// Additions are concentrated into a handful of **interest areas**
/// (random anchor nodes whose subtrees supply all picks, via a short
/// random walk down). Real profiles — an author's CCS subjects, a
/// user's tagged topics — cluster in a few branches rather than
/// spraying the whole taxonomy; without this concentration, shallow
/// one-label overlaps between unrelated vertices dominate the feasible
/// themes and the Table 3 level distribution collapses to level 1.
fn grow_profile(
    tax: &Taxonomy,
    seed_nodes: impl IntoIterator<Item = LabelId>,
    target: usize,
    anchor_pool: &[LabelId],
    rng: &mut SmallRng,
) -> PTree {
    let mut have: pcs_graph::FxHashSet<LabelId> = seed_nodes.into_iter().collect();
    have.insert(Taxonomy::ROOT);
    // Interest anchors come from the supplied pool (group-correlated
    // noise) when available, topped up with one personal area.
    let want_anchors = (target / 8).clamp(1, 3);
    let mut anchors: Vec<LabelId> = Vec::with_capacity(want_anchors + 1);
    if !anchor_pool.is_empty() {
        for _ in 0..want_anchors {
            anchors.push(anchor_pool[rng.gen_range(0..anchor_pool.len())]);
        }
    }
    while anchors.len() < want_anchors + usize::from(!anchor_pool.is_empty()) {
        anchors.push(rng.gen_range(0..tax.len() as u32));
    }
    let mut stall = 0usize;
    let mut guard = 0usize;
    while have.len() < target && guard < 8 * target + 32 {
        // Random walk down from a random anchor.
        let mut cur = anchors[rng.gen_range(0..anchors.len())];
        while !tax.children(cur).is_empty() && rng.gen_bool(0.75) {
            let kids = tax.children(cur);
            cur = kids[rng.gen_range(0..kids.len())];
        }
        let before = have.len();
        for a in tax.ancestors_inclusive(cur) {
            if !have.insert(a) {
                break; // the rest of the path is already present
            }
        }
        // A saturated interest area stops contributing; open a new one.
        if have.len() == before {
            stall += 1;
            if stall > 8 {
                anchors.push(rng.gen_range(0..tax.len() as u32));
                stall = 0;
            }
        } else {
            stall = 0;
        }
        guard += 1;
    }
    PTree::from_labels(tax, have.into_iter().filter(|&l| l != Taxonomy::ROOT))
        .expect("labels drawn from tax")
}

/// Visits each unordered pair `(i, j)` with `i < j < s` independently
/// with probability `p`, in expected `O(s + p·s²)` time instead of the
/// naive `O(s²)` Bernoulli sweep: within each row the gap to the next
/// success is drawn from the geometric distribution directly
/// (`skip = ⌊ln U / ln(1−p)⌋`), so work is proportional to the pairs
/// *produced*. Equivalent in distribution to per-pair coin flips.
pub fn sample_pairs(s: usize, p: f64, rng: &mut SmallRng, mut visit: impl FnMut(usize, usize)) {
    if s < 2 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..s {
            for j in (i + 1)..s {
                visit(i, j);
            }
        }
        return;
    }
    let ln_q = (1.0 - p).ln(); // finite and strictly negative here
    for i in 0..s - 1 {
        let mut j = i; // cursor just before the first candidate column
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (u.ln() / ln_q).floor();
            if skip >= (s - 1 - j) as f64 {
                break; // the rest of the row is all misses
            }
            j += skip as usize + 1;
            visit(i, j);
            if j + 1 >= s {
                break;
            }
        }
    }
}

/// Generates a dataset from a spec and a prebuilt taxonomy.
pub fn generate(spec: &DatasetSpec, tax: Taxonomy) -> ProfiledDataset {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n = spec.vertices;
    assert!(n > 0, "dataset needs vertices");

    // --- Group memberships -------------------------------------------------
    let num_groups =
        ((n as f64 * spec.groups_per_vertex) / spec.group_size as f64).ceil().max(1.0) as usize;
    let mut memberships: Vec<Vec<u32>> = vec![Vec::new(); n];
    let extra_p = (spec.groups_per_vertex - 1.0).clamp(0.0, 1.0);
    for m in memberships.iter_mut() {
        let first = rng.gen_range(0..num_groups as u32);
        m.push(first);
        if rng.gen_bool(extra_p) {
            let second = rng.gen_range(0..num_groups as u32);
            if second != first {
                m.push(second);
            }
        }
    }
    let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); num_groups];
    for (v, ms) in memberships.iter().enumerate() {
        for &g in ms {
            groups[g as usize].push(v as VertexId);
        }
    }

    // --- Edges --------------------------------------------------------------
    // Within a group of size s, p_in is chosen so a member gains about
    // `intra_fraction · d̂ / groups_per_vertex` intra edges. Pairs are
    // drawn by geometric skip-sampling (`sample_pairs`), so the cost is
    // proportional to the edges produced, not to s² — the difference
    // between minutes and hours at scale 1.0.
    let mut builder = GraphBuilder::new(n);
    let target_intra = spec.avg_degree * spec.intra_fraction / spec.groups_per_vertex;
    for group in &groups {
        let s = group.len();
        if s < 2 {
            continue;
        }
        let p_in = (target_intra / (s as f64 - 1.0)).clamp(0.0, 1.0);
        sample_pairs(s, p_in, &mut rng, |i, j| builder.add_edge(group[i], group[j]));
    }
    // Background edges to reach the degree target, preferential-ish by
    // pairing uniform endpoints (hubs arise from group overlap).
    let m_target = (n as f64 * spec.avg_degree / 2.0) as usize;
    let m_now = builder.num_edges_raw();
    for _ in m_now..m_target {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            builder.add_edge(a, b);
        }
    }
    let graph = ggen::connectify(&builder.build(), spec.seed ^ 0x5eed);

    // --- Profiles -----------------------------------------------------------
    let theme_target = ((spec.avg_ptree * spec.theme_fraction) as usize).max(2);
    let themes: Vec<PTree> =
        (0..num_groups).map(|_| random_ptree(&tax, theme_target, &mut rng)).collect();
    // Each group also gets a pool of "interest areas" its members draw
    // noise from, so noise overlaps deeply *within* communities (as it
    // does for real co-authors) instead of only at top levels.
    let anchor_pools: Vec<Vec<LabelId>> = themes
        .iter()
        .map(|theme| {
            let mut pool = theme.leaves(&tax);
            pool.push(rng.gen_range(0..tax.len() as u32));
            pool
        })
        .collect();
    let profiles: Vec<PTree> = memberships
        .iter()
        .map(|ms| {
            let mut theme = PTree::root_only();
            let mut pool: Vec<LabelId> = Vec::new();
            for &g in ms {
                theme = theme.union(&themes[g as usize]);
                pool.extend_from_slice(&anchor_pools[g as usize]);
            }
            // Per-vertex size jitter around P̂.
            let jitter = rng.gen_range(0.75..1.25);
            let target = ((spec.avg_ptree * jitter) as usize).max(theme.len());
            profile_around_theme(&tax, &theme, target, &pool, &mut rng)
        })
        .collect();

    for g in &mut groups {
        g.sort_unstable();
        g.dedup();
    }

    ProfiledDataset { name: spec.name.clone(), graph, tax, profiles, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::random_taxonomy;

    fn small() -> ProfiledDataset {
        let tax = random_taxonomy(300, 5, 10, 9);
        generate(&DatasetSpec::small("test", 600, 42), tax)
    }

    #[test]
    fn statistics_near_targets() {
        let ds = small();
        assert_eq!(ds.graph.num_vertices(), 600);
        let d = ds.graph.avg_degree();
        assert!((d - 13.0).abs() < 3.0, "avg degree {d}");
        let p = ds.avg_ptree_size();
        assert!((p - 12.0).abs() < 4.0, "avg ptree {p}");
        // Connected by construction.
        let (_, comps) = pcs_graph::connected_components(&ds.graph);
        assert_eq!(comps, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&DatasetSpec::small("a", 200, 7), random_taxonomy(100, 4, 8, 1));
        let b = generate(&DatasetSpec::small("a", 200, 7), random_taxonomy(100, 4, 8, 1));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.profiles, b.profiles);
        let c = generate(&DatasetSpec::small("a", 200, 8), random_taxonomy(100, 4, 8, 1));
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn groups_cover_vertices_and_share_themes() {
        let ds = small();
        assert!(!ds.groups.is_empty());
        // Every group member's profile contains the group's common
        // theme... at least the theme intersected over members is
        // non-trivial for most groups.
        let mut nontrivial = 0;
        for g in &ds.groups {
            if g.len() < 3 {
                continue;
            }
            let m = PTree::intersect_all(g.iter().map(|&v| &ds.profiles[v as usize])).unwrap();
            if m.len() > 1 {
                nontrivial += 1;
            }
        }
        assert!(
            nontrivial * 2 > ds.groups.len(),
            "most groups should share a theme: {nontrivial}/{}",
            ds.groups.len()
        );
    }

    #[test]
    fn six_core_exists_for_query_sampling() {
        let ds = small();
        let cd = pcs_graph::core::CoreDecomposition::new(&ds.graph);
        let in_6core =
            (0..ds.graph.num_vertices() as u32).filter(|&v| cd.core_number(v) >= 6).count();
        assert!(in_6core > 50, "6-core too small: {in_6core}");
    }

    #[test]
    fn random_ptree_sizes_track_target() {
        let tax = random_taxonomy(500, 5, 10, 3);
        let mut rng = SmallRng::seed_from_u64(1);
        for target in [2usize, 8, 20] {
            let sizes: Vec<usize> =
                (0..30).map(|_| random_ptree(&tax, target, &mut rng).len()).collect();
            let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
            assert!(
                avg >= target as f64 * 0.5 && avg <= target as f64 * 2.5 + 2.0,
                "target {target}, avg {avg}"
            );
        }
    }

    #[test]
    fn skip_sampling_matches_bernoulli_statistics() {
        let mut rng = SmallRng::seed_from_u64(99);
        let (s, p) = (500usize, 0.02f64);
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        for _ in 0..20 {
            sample_pairs(s, p, &mut rng, |i, j| {
                assert!(i < j && j < s);
                seen.insert((i, j));
                count += 1;
            });
        }
        // 20 rounds × C(500,2) × 0.02 ≈ 49 900 expected hits; allow a
        // wide statistical band.
        let expect = 20.0 * (s * (s - 1) / 2) as f64 * p;
        assert!(
            (count as f64) > expect * 0.9 && (count as f64) < expect * 1.1,
            "expected ≈{expect}, got {count}"
        );
        assert!(seen.len() > count / 3, "pairs should spread across the space");
        // Degenerate regimes.
        sample_pairs(1, 0.5, &mut rng, |_, _| panic!("no pairs for s=1"));
        sample_pairs(10, 0.0, &mut rng, |_, _| panic!("no pairs at p=0"));
        let mut all = 0;
        sample_pairs(10, 1.0, &mut rng, |_, _| all += 1);
        assert_eq!(all, 45, "p=1 visits every pair exactly once");
    }

    #[test]
    fn table2_row_shape() {
        let ds = small();
        let (name, v, e, d, p, gp) = ds.table2_row();
        assert_eq!(name, "test");
        assert_eq!(v, 600);
        assert!(e > 0 && d > 0.0 && p > 1.0 && gp == 300);
    }
}
