//! Persist-then-serve: the warm-start workflow.
//!
//! A serving fleet should pay the offline cost (validation, core
//! decomposition, CP-tree construction) **once**, persist the result,
//! and boot every replica from the snapshot. This example builds a
//! DBLP-like profiled graph, warms and saves an engine, then loads it
//! back and shows that the loaded replica answers identically, resumes
//! at the saved epoch, and keeps absorbing live updates — at a cold
//! start one to two orders of magnitude cheaper than rebuilding.
//!
//! Run with: `cargo run --release --example persist_serve`

use pcs::datasets::suite::{build, SuiteConfig};
use pcs::datasets::{sample_query_vertices, SuiteDataset};
use pcs::prelude::*;
use std::time::Instant;

fn main() {
    let scale = 0.005;
    let ds = build(SuiteDataset::Dblp, SuiteConfig { scale, ..SuiteConfig::default() });
    println!(
        "dataset: {} vertices, {} edges, {} labels (DBLP-like @ {scale})",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        ds.tax.len()
    );

    // --- Offline: build once, eagerly, and persist -----------------------
    let start = Instant::now();
    let primary = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .build()
        .expect("consistent inputs");
    let build_time = start.elapsed();

    let path =
        std::env::temp_dir().join(format!("pcs-persist-serve-{}.snapshot", std::process::id()));
    let start = Instant::now();
    primary.save(&path).expect("snapshot written");
    let save_time = start.elapsed();
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    // --- Online: every replica warm-starts from the file -----------------
    let start = Instant::now();
    let replica = PcsEngine::builder()
        .index_mode(IndexMode::Eager)
        .load(&path)
        .expect("snapshot validated and loaded");
    let load_time = start.elapsed();

    println!("eager build : {build_time:>10.2?}");
    println!("save        : {save_time:>10.2?}  ({:.1} MB on disk)", file_len as f64 / 1e6);
    println!(
        "load        : {load_time:>10.2?}  ({:.0}x faster than building)",
        build_time.as_secs_f64() / load_time.as_secs_f64()
    );

    // Identical answers, same epoch.
    let k = 5;
    let (queries, _) = sample_query_vertices(&ds, k, 5, 0x7e);
    for &q in &queries {
        let a = primary.query(&QueryRequest::vertex(q).k(k)).unwrap();
        let b = replica.query(&QueryRequest::vertex(q).k(k)).unwrap();
        assert_eq!(a.communities(), b.communities(), "replica diverged at q={q}");
    }
    println!(
        "replica answers {} sampled queries identically (epoch {} on both)",
        queries.len(),
        replica.epoch()
    );

    // The loaded replica is fully live: updates apply incrementally.
    let (u, v) = (queries[0], queries[1 % queries.len()]);
    if u != v && !ds.graph.has_edge(u, v) {
        let report = replica.add_edge(u, v).unwrap();
        println!(
            "applied a live edge insertion on the replica: epoch {} -> {}, index {:?}",
            report.epoch - 1,
            report.epoch,
            report.index
        );
    }

    let _ = std::fs::remove_file(&path);
}
