//! Deferred graph materialization for file-backed snapshots.
//!
//! A [`GraphHandle`] is either a resident [`Graph`] or a cell that
//! materializes one on first touch from a [`GraphSource`] (in practice
//! a positioned-read view over an on-disk snapshot, implemented in
//! `pcs-store`). Cheap to clone; clones share the same cell, so the
//! backing section is read and decoded at most once per load.
//!
//! The handle always knows the vertex and edge counts (they come from
//! the snapshot's META section), so size queries never force
//! materialization — only adjacency access does.

use crate::{Graph, GraphError};
use std::sync::{Arc, OnceLock};

/// Supplies a decoded [`Graph`] on demand. Implementations live next to
/// the storage format (see `pcs-store`); failures are descriptive
/// strings here — the storage layer records its own typed error before
/// returning one, so callers that need the typed cause consult the
/// store's fault cell.
pub trait GraphSource: Send + Sync {
    /// Reads, validates, and decodes the full graph. Called at most
    /// once per handle (the cell memoizes the outcome).
    fn load_graph(&self) -> Result<Graph, String>;
}

struct LazyGraphCell {
    source: Arc<dyn GraphSource>,
    cell: OnceLock<Result<Arc<Graph>, GraphError>>,
    n: usize,
    m: usize,
}

/// A graph that is either resident or lazily materialized on first
/// adjacency access.
#[derive(Clone)]
pub struct GraphHandle {
    inner: HandleInner,
}

#[derive(Clone)]
enum HandleInner {
    Ready(Arc<Graph>),
    Lazy(Arc<LazyGraphCell>),
}

impl GraphHandle {
    /// Wraps an already-materialized graph.
    pub fn ready(graph: Arc<Graph>) -> GraphHandle {
        GraphHandle { inner: HandleInner::Ready(graph) }
    }

    /// Defers materialization to `source`. `n`/`m` are the counts the
    /// snapshot's metadata promises; [`GraphHandle::get`] rejects a
    /// decoded graph that disagrees.
    pub fn lazy(source: Arc<dyn GraphSource>, n: usize, m: usize) -> GraphHandle {
        GraphHandle {
            inner: HandleInner::Lazy(Arc::new(LazyGraphCell {
                source,
                cell: OnceLock::new(),
                n,
                m,
            })),
        }
    }

    /// Vertex count, without materializing.
    pub fn num_vertices(&self) -> usize {
        match &self.inner {
            HandleInner::Ready(g) => g.num_vertices(),
            HandleInner::Lazy(l) => l.n,
        }
    }

    /// Edge count, without materializing.
    pub fn num_edges(&self) -> usize {
        match &self.inner {
            HandleInner::Ready(g) => g.num_edges(),
            HandleInner::Lazy(l) => l.m,
        }
    }

    /// True when the graph is already decoded (always for
    /// [`GraphHandle::ready`]).
    pub fn is_materialized(&self) -> bool {
        match &self.inner {
            HandleInner::Ready(_) => true,
            HandleInner::Lazy(l) => l.cell.get().is_some(),
        }
    }

    /// The graph, materializing it on first call. A decode failure is
    /// memoized: every subsequent call reports the same error instead
    /// of re-reading a file known to be damaged.
    pub fn get(&self) -> Result<&Arc<Graph>, GraphError> {
        match &self.inner {
            HandleInner::Ready(g) => Ok(g),
            HandleInner::Lazy(l) => {
                let out = l.cell.get_or_init(|| {
                    let g = l
                        .source
                        .load_graph()
                        .map_err(|detail| GraphError::MalformedGraph { detail })?;
                    if g.num_vertices() != l.n || g.num_edges() != l.m {
                        return Err(GraphError::MalformedGraph {
                            detail: format!(
                                "lazily decoded graph has {}v/{}e but metadata promised {}v/{}e",
                                g.num_vertices(),
                                g.num_edges(),
                                l.n,
                                l.m
                            ),
                        });
                    }
                    Ok(Arc::new(g))
                });
                match out {
                    Ok(g) => Ok(g),
                    Err(e) => Err(e.clone()),
                }
            }
        }
    }

    /// Like [`GraphHandle::get`], returning an owned `Arc`.
    pub fn get_arc(&self) -> Result<Arc<Graph>, GraphError> {
        self.get().map(Arc::clone)
    }
}

impl std::fmt::Debug for GraphHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphHandle")
            .field("vertices", &self.num_vertices())
            .field("edges", &self.num_edges())
            .field("materialized", &self.is_materialized())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingSource {
        loads: AtomicUsize,
        fail: bool,
    }

    impl GraphSource for CountingSource {
        fn load_graph(&self) -> Result<Graph, String> {
            self.loads.fetch_add(1, Ordering::SeqCst);
            if self.fail {
                return Err("synthetic decode failure".into());
            }
            Graph::from_edges(3, &[(0, 1), (1, 2)]).map_err(|e| e.to_string())
        }
    }

    #[test]
    fn ready_handles_never_touch_a_source() {
        let g = Arc::new(Graph::from_edges(2, &[(0, 1)]).unwrap());
        let h = GraphHandle::ready(Arc::clone(&g));
        assert!(h.is_materialized());
        assert_eq!(h.num_vertices(), 2);
        assert_eq!(h.num_edges(), 1);
        assert!(Arc::ptr_eq(h.get().unwrap(), &g));
    }

    #[test]
    fn lazy_loads_once_and_shares_across_clones() {
        let src = Arc::new(CountingSource { loads: AtomicUsize::new(0), fail: false });
        let h = GraphHandle::lazy(Arc::<CountingSource>::clone(&src), 3, 2);
        let h2 = h.clone();
        assert!(!h.is_materialized());
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(src.loads.load(Ordering::SeqCst), 0, "size queries must not materialize");
        assert_eq!(h.get().unwrap().num_edges(), 2);
        assert_eq!(h2.get().unwrap().num_edges(), 2);
        assert_eq!(src.loads.load(Ordering::SeqCst), 1, "clones share one materialization");
        assert!(h2.is_materialized());
    }

    #[test]
    fn count_mismatch_is_rejected_and_memoized() {
        let src = Arc::new(CountingSource { loads: AtomicUsize::new(0), fail: false });
        let h = GraphHandle::lazy(Arc::<CountingSource>::clone(&src), 3, 7);
        assert!(matches!(h.get(), Err(GraphError::MalformedGraph { .. })));
        assert!(matches!(h.get(), Err(GraphError::MalformedGraph { .. })));
        assert_eq!(src.loads.load(Ordering::SeqCst), 1, "failures are memoized too");
    }

    #[test]
    fn source_failure_surfaces_as_malformed() {
        let src = Arc::new(CountingSource { loads: AtomicUsize::new(0), fail: true });
        let h = GraphHandle::lazy(src, 3, 2);
        let err = h.get().unwrap_err();
        assert!(err.to_string().contains("synthetic decode failure"));
    }
}
