//! End-to-end serving tests over real loopback sockets: protocol
//! round-trips, typed 4xx rejections, load shedding under an admission
//! cap, snapshot consistency of concurrent clients against a live
//! writer, and graceful shutdown.

use pcs_core::{Algorithm, QueryContext};
use pcs_engine::{EngineSnapshot, PcsEngine, UpdateBatch};
use pcs_graph::{Graph, VertexId};
use pcs_ptree::{PTree, Taxonomy};
use pcs_serve::{LoadConfig, LoadOp, PcsServer, ServeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// --- fixture ---------------------------------------------------------

fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..10 {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    let n = 30usize;
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.18) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=4usize);
            let picks: Vec<u32> = (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles)
}

fn engine(seed: u64) -> Arc<PcsEngine> {
    let (g, tax, profiles) = random_instance(seed);
    Arc::new(PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap())
}

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        batch_window: Duration::from_micros(100),
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

// --- tiny raw client -------------------------------------------------

fn connect(server: &PcsServer) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Sends one request and reads one response on a keep-alive stream.
fn roundtrip(stream: &mut TcpStream, request: &str) -> (u16, String) {
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let got = stream.read(&mut chunk).expect("read response head");
        assert!(got > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..got]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let got = stream.read(&mut chunk).expect("read response body");
        assert!(got > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..got]);
    }
    (status, String::from_utf8(body).unwrap())
}

fn get(stream: &mut TcpStream, path_and_query: &str) -> (u16, String) {
    roundtrip(
        stream,
        &format!("GET {path_and_query} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n"),
    )
}

fn post(stream: &mut TcpStream, path: &str, body: &str) -> (u16, String) {
    roundtrip(
        stream,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

// --- body parsing helpers -------------------------------------------

fn json_u64(body: &str, key: &str) -> u64 {
    let tail = body
        .split(&format!("\"{key}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("no key {key} in {body}"));
    tail.chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
}

fn parse_communities(body: &str) -> Vec<Vec<VertexId>> {
    body.split("\"vertices\":[")
        .skip(1)
        .map(|seg| {
            seg.split(']')
                .next()
                .unwrap()
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect()
        })
        .collect()
}

// --- tests -----------------------------------------------------------

#[test]
fn end_to_end_roundtrip_on_one_keep_alive_connection() {
    let engine = engine(7);
    let server = PcsServer::start(Arc::clone(&engine), "127.0.0.1:0", test_config()).unwrap();
    let mut conn = connect(&server);

    let (status, body) = get(&mut conn, "/health");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "epoch"), engine.epoch());

    // A query answers 200 with the current epoch and sane payload.
    let (status, body) = get(&mut conn, "/query?v=3&k=2&stats=1");
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_u64(&body, "epoch"), engine.epoch());
    assert!(body.contains("\"algorithm\":"));
    let communities = parse_communities(&body);
    assert_eq!(communities.len() as u64, json_u64(&body, "total_communities"));

    // A write bumps the epoch; the report shows the effect.
    let before = engine.epoch();
    let (status, body) = post(&mut conn, "/apply", "add 0 17\nremove 0 17\n");
    assert_eq!(status, 200, "{body}");
    assert!(json_u64(&body, "epoch") > before);
    let accounted = json_u64(&body, "edges_added")
        + json_u64(&body, "edges_removed")
        + json_u64(&body, "noops");
    assert_eq!(accounted, 2, "{body}");

    // Stats reflect the traffic so far, all on this one connection.
    let (status, body) = get(&mut conn, "/stats");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "accepted"), 1);
    assert_eq!(json_u64(&body, "queries"), 1);
    assert_eq!(json_u64(&body, "updates"), 1);
    assert_eq!(json_u64(&body, "http_5xx"), 0);

    let stats = server.shutdown();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.http_5xx, 0);
}

#[test]
fn every_rejection_is_a_typed_4xx() {
    let engine = engine(11);
    let n = engine.snapshot().graph().num_vertices();
    let server = PcsServer::start(engine, "127.0.0.1:0", test_config()).unwrap();
    let mut conn = connect(&server);

    let cases: Vec<(u16, &str, (u16, String))> = vec![
        // Out-of-range vertex: rejected before the snapshot is touched.
        (400, "vertex_out_of_range", get(&mut conn, &format!("/query?v={n}&k=2"))),
        // k = 0.
        (400, "zero_k", get(&mut conn, "/query?v=1&k=0")),
        // Absurd community cap.
        (400, "max_communities_too_large", get(&mut conn, "/query?v=1&k=2&max=99999999")),
        // Unknown algorithm.
        (400, "unknown_algorithm", get(&mut conn, "/query?v=1&k=2&algo=bfs")),
        // Missing required parameter.
        (400, "missing_param", get(&mut conn, "/query?k=2")),
        // Unknown parameter.
        (400, "unknown_param", get(&mut conn, "/query?v=1&k=2&depth=9")),
        // Unknown route.
        (404, "unknown_path", get(&mut conn, "/communities")),
        // Wrong method on a real route.
        (405, "method_not_allowed", post(&mut conn, "/query", "")),
        // Malformed apply body.
        (400, "malformed_body", post(&mut conn, "/apply", "explode 1 2\n")),
        // Apply naming an out-of-range vertex.
        (400, "vertex_out_of_range", post(&mut conn, "/apply", &format!("add 0 {n}\n"))),
        // Apply with a label outside the taxonomy.
        (400, "unknown_label", post(&mut conn, "/apply", "profile 1 9999\n")),
    ];
    for (want_status, want_tag, (status, body)) in &cases {
        assert_eq!(status, want_status, "{body}");
        assert!(
            body.contains(&format!("\"error\":\"{want_tag}\"")),
            "expected tag {want_tag} in {body}"
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.http_4xx, cases.len() as u64);
    assert_eq!(stats.http_5xx, 0);
    // None of the rejects reached the engine: no query was batched and
    // no update was applied.
    assert_eq!(stats.batches, 0);
    assert_eq!(stats.queries, 0);
    assert_eq!(stats.updates, 0);
}

#[test]
fn overload_sheds_503_instead_of_stalling() {
    let engine = engine(13);
    let cfg = ServeConfig { max_connections: 2, ..test_config() };
    let server = PcsServer::start(engine, "127.0.0.1:0", cfg).unwrap();

    // Fill the admission budget with two live keep-alive connections.
    let mut a = connect(&server);
    let mut b = connect(&server);
    assert_eq!(get(&mut a, "/health").0, 200);
    assert_eq!(get(&mut b, "/health").0, 200);

    // Everything beyond the cap is shed with an immediate 503.
    let mut shed = 0;
    for _ in 0..5 {
        let mut c = connect(&server);
        let (status, body) = read_response(&mut c);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("overloaded"));
        shed += 1;
    }
    assert_eq!(shed, 5);

    // The admitted connections kept working the whole time.
    assert_eq!(get(&mut a, "/query?v=1&k=2").0, 200);

    // Dropping one admitted connection frees a slot: the server
    // recovers rather than staying wedged.
    drop(b);
    let recovered = std::iter::repeat_with(|| {
        std::thread::sleep(Duration::from_millis(20));
        let mut c = connect(&server);
        c.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        read_response(&mut c).0
    })
    .take(50)
    .any(|status| status == 200);
    assert!(recovered, "a freed slot was never re-admitted");

    let stats = server.shutdown();
    assert!(stats.shed >= 5);
    assert_eq!(stats.http_5xx, 0, "shed 503s are counted as shed, not served 5xx");
}

#[test]
fn concurrent_clients_stay_snapshot_consistent_with_a_live_writer() {
    let (g, tax, profiles) = random_instance(17);
    let n = g.num_vertices() as u32;
    let label_pool: Vec<u32> = (0..tax.len() as u32).collect();
    let engine = Arc::new(
        PcsEngine::builder().graph(g).taxonomy(tax.clone()).profiles(profiles).build().unwrap(),
    );
    let server = PcsServer::start(Arc::clone(&engine), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();

    let published: Mutex<Vec<EngineSnapshot>> = Mutex::new(vec![engine.snapshot()]);
    let done = AtomicBool::new(false);
    type Observation = (u64, VertexId, u32, Vec<Vec<VertexId>>);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    let engine_ref = &engine;
    let tax_ref = &tax;
    let published_ref = &published;
    let done_ref = &done;
    let observations_ref = &observations;
    std::thread::scope(|s| {
        // Writer: mutates through the engine handle, recording every
        // published snapshot — the ground truth for the check below.
        s.spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xbeef);
            for _ in 0..24 {
                let mut batch = UpdateBatch::new();
                for _ in 0..rng.gen_range(1..=3) {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    match rng.gen_range(0..3) {
                        0 if a != b => batch = batch.add_edge(a, b),
                        1 if a != b => batch = batch.remove_edge(a, b),
                        _ => {
                            let picks: Vec<u32> = (0..rng.gen_range(0..=3usize))
                                .map(|_| label_pool[rng.gen_range(0..label_pool.len())])
                                .collect();
                            batch =
                                batch.set_profile(a, PTree::from_labels(tax_ref, picks).unwrap());
                        }
                    }
                }
                let report = engine_ref.apply(&batch).expect("scripted batch is valid");
                if report.changed() {
                    published_ref.lock().unwrap().push(engine_ref.snapshot());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            done_ref.store(true, Ordering::Release);
        });
        // Clients: query over real sockets until the writer finishes.
        for t in 0..3u64 {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xc11e + t);
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut local = Vec::new();
                while local.len() < 12 || !done_ref.load(Ordering::Acquire) {
                    let q = rng.gen_range(0..n);
                    let k = rng.gen_range(1..3u32);
                    let (status, body) = get(&mut stream, &format!("/query?v={q}&k={k}"));
                    assert_eq!(status, 200, "{body}");
                    local.push((json_u64(&body, "epoch"), q, k, parse_communities(&body)));
                }
                observations_ref.lock().unwrap().extend(local);
            });
        }
    });

    // Every response must equal what a from-scratch engine for the
    // graph/profiles of its reported epoch returns.
    let published = published.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert!(observations.len() >= 36);
    for (epoch, q, k, comms) in &observations {
        let snap = published
            .iter()
            .find(|s| s.epoch() == *epoch)
            .unwrap_or_else(|| panic!("epoch {epoch} was never published"));
        let ctx = QueryContext::new(snap.graph(), &tax, snap.profiles()).unwrap();
        let reference = ctx.query(*q, *k, Algorithm::Basic).unwrap();
        let expect: Vec<Vec<VertexId>> =
            reference.communities.iter().map(|c| c.vertices.clone()).collect();
        assert_eq!(comms, &expect, "epoch {epoch} q {q} k {k}: not snapshot-consistent");
    }

    let stats = server.shutdown();
    assert_eq!(stats.http_5xx, 0);
    assert!(stats.batches >= 1);
}

#[test]
fn loadgen_round_trips_through_a_live_server() {
    let engine = engine(23);
    let server = PcsServer::start(engine, "127.0.0.1:0", test_config()).unwrap();
    let mut ops = Vec::new();
    for i in 0..120u32 {
        if i % 10 == 9 {
            let (a, b) = (i % 30, (i + 7) % 30);
            ops.push(LoadOp::Apply(format!("add {a} {b}\n")));
        } else {
            ops.push(LoadOp::Query { vertex: i % 30, k: 1 + i % 3 });
        }
    }
    let report = pcs_serve::run_load(
        server.local_addr(),
        &ops,
        &LoadConfig { concurrency: 3, ..LoadConfig::default() },
    );
    assert_eq!(report.total, 120);
    assert_eq!(report.ok, 120, "{report:?}");
    assert_eq!(report.http_5xx, 0);
    assert_eq!(report.failed, 0);
    assert!(report.qps > 0.0);
    assert!(report.read_latency.samples > 0 && report.read_latency.p50 > 0);
    assert!(report.write_latency.samples > 0);
    assert!(report.read_latency.p50 <= report.read_latency.p99);
    assert!(report.read_latency.p99 <= report.read_latency.p999);

    let stats = server.shutdown();
    // Dedup across concurrent repeats of the small hot set is the
    // batcher's whole point; with 3 closed-loop clients it usually
    // fires, but a slow machine may never overlap twins — so only
    // sanity-check the counters' consistency here.
    assert!(stats.batched_requests >= stats.batches);
    assert_eq!(stats.http_5xx, 0);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests_and_closes_the_listener() {
    let engine = engine(29);
    let server = PcsServer::start(engine, "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();

    // A request written but (deliberately) not yet read back: it must
    // be answered during the drain, not dropped.
    let mut conn = connect(&server);
    assert_eq!(get(&mut conn, "/health").0, 200); // warm the connection
    conn.write_all(b"GET /query?v=1&k=2 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    conn.flush().unwrap();

    let stats = server.shutdown();
    let (status, body) = read_response(&mut conn);
    assert_eq!(status, 200, "in-flight request was dropped: {body}");
    assert!(stats.requests >= 2);

    // The listener is gone: new connections are refused (or reset on
    // platforms that accept briefly from the backlog).
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            s.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n").is_err()
                || s.read(&mut [0u8; 16]).map(|got| got == 0).unwrap_or(true)
        }
    };
    assert!(refused, "listener still serving after shutdown");
}
