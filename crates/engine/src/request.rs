//! Request/response types for the serving facade.

use pcs_core::{Algorithm, PcsOutcome, ProfiledCommunity, QueryStats};
use pcs_graph::VertexId;
use std::time::Duration;

/// One community-search query, built fluently:
///
/// ```
/// use pcs_engine::QueryRequest;
/// use pcs_core::Algorithm;
///
/// let req = QueryRequest::vertex(7)
///     .k(4)
///     .algorithm(Algorithm::AdvP)
///     .max_communities(10)
///     .collect_stats(true);
/// assert_eq!(req.vertex_id(), 7);
/// ```
///
/// Defaults: `k = 6` (the paper's evaluation default),
/// [`Algorithm::Auto`], no community cap, stats off, cache allowed.
///
/// The struct derives `Hash` + `Eq` so deduplication layers (the
/// serving batcher, caches) can key on the request **itself** instead
/// of mirroring its fields into a hand-maintained tuple that silently
/// drops any field added later.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryRequest {
    vertex: VertexId,
    k: u32,
    algorithm: Algorithm,
    max_communities: Option<usize>,
    collect_stats: bool,
    bypass_cache: bool,
}

impl QueryRequest {
    /// Starts a request for the communities of `vertex`.
    pub fn vertex(vertex: VertexId) -> Self {
        QueryRequest {
            vertex,
            k: 6,
            algorithm: Algorithm::Auto,
            max_communities: None,
            collect_stats: false,
            bypass_cache: false,
        }
    }

    /// Sets the minimum internal degree bound.
    pub fn k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Picks the algorithm (default [`Algorithm::Auto`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Caps how many communities the response carries. The search
    /// itself still enumerates all maximal feasible subtrees (they are
    /// needed to establish maximality); only the response is truncated.
    pub fn max_communities(mut self, max: usize) -> Self {
        self.max_communities = Some(max);
        self
    }

    /// Surfaces search-effort counters on
    /// [`QueryResponse::stats`]. The algorithms always maintain their
    /// counters (they are plain integers, effectively free) and the
    /// raw values stay reachable via `outcome.stats` regardless; this
    /// flag only controls whether the response's serving-level field
    /// is populated, so dashboards can opt in explicitly.
    pub fn collect_stats(mut self, collect: bool) -> Self {
        self.collect_stats = collect;
        self
    }

    /// Opts this request out of the engine's result cache (default:
    /// cache allowed). A bypassing request neither reads a cached
    /// answer nor fills the cache — the knob for freshness-critical
    /// clients and for A/B-measuring the cache itself.
    pub fn bypass_cache(mut self, bypass: bool) -> Self {
        self.bypass_cache = bypass;
        self
    }

    /// The query vertex.
    pub fn vertex_id(&self) -> VertexId {
        self.vertex
    }

    /// The degree bound.
    pub fn degree_bound(&self) -> u32 {
        self.k
    }

    /// The requested (pre-resolution) algorithm.
    pub fn requested_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The response cap, if any.
    pub fn community_cap(&self) -> Option<usize> {
        self.max_communities
    }

    /// Whether stats were requested.
    pub fn wants_stats(&self) -> bool {
        self.collect_stats
    }

    /// Whether this request opted out of the result cache.
    pub fn bypasses_cache(&self) -> bool {
        self.bypass_cache
    }
}

/// The answer to one [`QueryRequest`]: the paper-layer
/// [`PcsOutcome`] plus serving metadata.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The communities (possibly truncated to the request's cap) and
    /// raw algorithm counters.
    pub outcome: PcsOutcome,
    /// The concrete algorithm that ran ([`Algorithm::Auto`] resolved).
    pub algorithm: Algorithm,
    /// True when the CP-tree index answered the query.
    pub index_used: bool,
    /// Wall-clock time of the algorithm run. One-time lazy index
    /// construction is excluded; to pay (and measure) that cost up
    /// front, time a call to [`PcsEngine::warm`](crate::PcsEngine::warm)
    /// before querying.
    pub elapsed: Duration,
    /// Search-effort counters, present when the request opted in via
    /// [`QueryRequest::collect_stats`] (a copy of `outcome.stats`,
    /// which is always populated by the algorithms).
    pub stats: Option<QueryStats>,
    /// How many communities the search found before truncation.
    pub total_communities: usize,
    /// Epoch of the snapshot that answered this query. Responses from
    /// one [`query_batch`](crate::PcsEngine::query_batch) call always
    /// share an epoch; comparing against
    /// [`PcsEngine::epoch`](crate::PcsEngine::epoch) tells whether the
    /// answer is already stale relative to concurrent updates.
    pub epoch: u64,
}

impl QueryResponse {
    /// The communities carried by this response.
    pub fn communities(&self) -> &[ProfiledCommunity] {
        &self.outcome.communities
    }

    /// True when the cap dropped communities from the response.
    pub fn truncated(&self) -> bool {
        self.outcome.communities.len() < self.total_communities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let req = QueryRequest::vertex(3);
        assert_eq!(req.vertex_id(), 3);
        assert_eq!(req.degree_bound(), 6);
        assert_eq!(req.requested_algorithm(), Algorithm::Auto);
        assert_eq!(req.community_cap(), None);
        assert!(!req.wants_stats());
        assert!(!req.bypasses_cache());
    }

    #[test]
    fn builder_chains() {
        let req = QueryRequest::vertex(0)
            .k(2)
            .algorithm(Algorithm::Basic)
            .max_communities(1)
            .collect_stats(true)
            .bypass_cache(true);
        assert_eq!(req.degree_bound(), 2);
        assert_eq!(req.requested_algorithm(), Algorithm::Basic);
        assert_eq!(req.community_cap(), Some(1));
        assert!(req.wants_stats());
        assert!(req.bypasses_cache());
    }
}
