//! The shared, memoized community-verification engine.
//!
//! Every PCS algorithm ultimately asks one question over and over: given
//! a candidate subtree `T ⊆ T(q)`, does `Gk[T]` — the connected k-core
//! containing `q` restricted to vertices whose P-trees contain `T` —
//! exist, and what are its vertices? This module centralizes that
//! question and keeps it off the allocator:
//!
//! * candidates are **interned** ([`pcs_ptree::SubtreeInterner`]) into
//!   dense [`SubtreeId`]s, so the memo table is a flat `Vec` indexed by
//!   id — no `Subtree` cloning or hashing per probe (each distinct
//!   subtree is hashed exactly once, at interning time);
//! * index probes use [`pcs_index::CpTree::get_ref`], a **borrowed
//!   arena slice** (O(CL-tree depth), zero-copy) instead of the owned
//!   collect-and-sort `get`;
//! * all intermediate buffers live in a reusable [`QueryScratch`]
//!   (candidate seeds, per-vertex profile masks, the localized-peel
//!   state, the `Gk` position index), which an engine can pool across
//!   queries;
//! * every level-k label ĉore is a subset of the global k-ĉore `Gk`,
//!   so `I.get(k, q, ·)` results are cached per query as **bitsets
//!   over `Gk` positions** — seeding a candidate is a handful of
//!   word-wise ANDs, and `base ∩ I.get(...)` is one bit test per base
//!   member.
//!
//! Candidate seeding follows the paper:
//! * without an index (`basic`): candidates = `Gk` (the global k-ĉore
//!   of `q`) filtered by lazy per-vertex profile masks — Algorithm 1's
//!   "compute `Gk[T]` from `Gk`";
//! * with an index and a parent community (`incre`): candidates =
//!   `Gk[T'] ∩ I.get(k, q, t)` where `t` is the newly added label —
//!   Lemma 3;
//! * with an index and no parent (`advanced`'s `verifyPtree`):
//!   candidates = `⋂ I.get(k, q, tni)` over the candidate's leaves —
//!   the paper's bound, which by ancestor closure already implies the
//!   profile containment test.

use std::rc::Rc;

use pcs_graph::core::SubsetCore;
use pcs_graph::VertexId;
use pcs_ptree::{QuerySpace, Subtree, SubtreeId, SubtreeInterner};

use crate::problem::{QueryContext, QueryStats};

/// A verification answer: `None` ⇔ infeasible, otherwise the sorted
/// community vertices (shared, since the memo and callers both hold
/// them).
pub type Community = Option<Rc<Vec<VertexId>>>;

/// Reusable per-query working memory: everything a [`Verifier`] needs
/// beyond the answer vectors themselves. Creating one is O(n); reusing
/// one across queries (see [`Verifier::with_scratch`]) makes the whole
/// verification loop allocation-free in steady state — per-vertex state
/// is invalidated by epoch stamping, never re-zeroed.
#[derive(Debug)]
pub struct QueryScratch {
    /// The localized k-core peel engine (itself epoch-stamped).
    core: SubsetCore,
    /// Per-vertex projection of `T(v)` onto the current query space.
    masks: Vec<Option<Subtree>>,
    /// `masks[v]` is valid iff `mask_epoch[v] == epoch`.
    mask_epoch: Vec<u32>,
    epoch: u32,
    /// Filtered candidate seed for the localized peel.
    seed: Vec<VertexId>,
    /// `gk_pos[v]` = dense index of `v` inside the current query's `Gk`
    /// (valid iff `gk_pos_epoch[v] == epoch`). Lets label-ĉore bitsets
    /// over `Gk` answer membership in O(1).
    gk_pos: Vec<u32>,
    gk_pos_epoch: Vec<u32>,
    /// Word buffer for ANDing label-ĉore bitsets.
    words_buf: Vec<u64>,
}

impl QueryScratch {
    /// Creates scratch state for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        QueryScratch {
            core: SubsetCore::new(n),
            masks: vec![None; n],
            mask_epoch: vec![0; n],
            epoch: 0,
            seed: Vec::new(),
            gk_pos: vec![0; n],
            gk_pos_epoch: vec![0; n],
            words_buf: Vec::new(),
        }
    }

    /// Readies the scratch for a new query over `n` vertices:
    /// invalidates all cached masks in O(1) and grows per-vertex state
    /// if the graph outgrew the scratch.
    fn begin(&mut self, n: usize) {
        if n > self.masks.len() {
            self.core = SubsetCore::new(n);
            self.masks.resize(n, None);
            self.mask_epoch.resize(n, 0);
            self.gk_pos.resize(n, 0);
            self.gk_pos_epoch.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mask_epoch.iter_mut().for_each(|e| *e = 0);
                self.gk_pos_epoch.iter_mut().for_each(|e| *e = 0);
                1
            }
        };
    }

    /// The dense `Gk` position of `v`, if `v` was stamped this epoch.
    /// Fully bounds-checked: a vertex beyond the scratch (impossible
    /// after `begin(n)`) reads as unstamped.
    #[inline]
    fn gk_pos_of(&self, v: VertexId) -> Option<u32> {
        let vi = v as usize;
        if self.gk_pos_epoch.get(vi).copied() == Some(self.epoch) {
            self.gk_pos.get(vi).copied()
        } else {
            None
        }
    }

    /// Stamps `v` at dense `Gk` position `i` for the current epoch.
    #[inline]
    fn stamp_gk_pos(&mut self, v: VertexId, i: u32) {
        let vi = v as usize;
        if let (Some(p), Some(e)) = (self.gk_pos.get_mut(vi), self.gk_pos_epoch.get_mut(vi)) {
            *p = i;
            *e = self.epoch;
        }
    }
}

/// One label's k-ĉore of the query vertex, as a bitset over `Gk`.
#[derive(Clone, Debug)]
enum LabelCoreSet {
    /// Not asked for yet.
    Unbuilt,
    /// `I.get(k, q, label)` does not exist.
    Missing,
    /// The ĉore's members, as set bits over `Gk` positions.
    Built { bits: Box<[u64]>, count: u32 },
}

/// The shared fallback for out-of-range label positions (impossible by
/// construction — `label_sets` is sized to the query space — but the
/// checked accessor needs a value, and "missing" is the conservative
/// answer: the candidate is simply infeasible).
const MISSING_SET: LabelCoreSet = LabelCoreSet::Missing;

/// Checked [`LabelCoreSet`] lookup. A free function (not a method) so
/// callers holding disjoint `&mut` borrows of other `Verifier` fields
/// can still use it.
#[inline]
fn label_set(sets: &[LabelCoreSet], pos: u32) -> &LabelCoreSet {
    sets.get(pos as usize).unwrap_or(&MISSING_SET)
}

/// Either owned (one-shot queries) or borrowed (pooled) scratch.
enum ScratchSlot<'a> {
    Owned(Box<QueryScratch>),
    Borrowed(&'a mut QueryScratch),
}

impl ScratchSlot<'_> {
    #[inline]
    fn get(&mut self) -> &mut QueryScratch {
        match self {
            ScratchSlot::Owned(s) => s,
            ScratchSlot::Borrowed(s) => s,
        }
    }
}

/// Memoized `Gk[T]` oracle for one query `(q, k)`.
///
/// Also owns the query's [`SubtreeInterner`]: the algorithms run
/// entirely in [`SubtreeId`] space and only materialize owned
/// [`Subtree`]s when assembling the final outcome.
pub struct Verifier<'a> {
    ctx: &'a QueryContext<'a>,
    space: &'a QuerySpace,
    q: VertexId,
    k: u32,
    interner: SubtreeInterner<'a>,
    /// Memo table indexed by [`SubtreeId`]; `None` = not verified yet.
    memo: Vec<Option<Community>>,
    /// Maximality verdicts per id: 0 = unknown, 1 = maximal, 2 = not.
    /// The boundary walk asks about the same subtree from many cuts;
    /// the verdict is a pure function of the subtree.
    maximal_memo: Vec<u8>,
    /// Per DFS position of `T(q)`: `I.get(k, q, label)` as a bitset
    /// over `Gk` indices (every label ĉore at level k is a subset of
    /// the global k-ĉore `Gk`). Built lazily, once per query; turns
    /// candidate seeding into word-wise ANDs and base intersection
    /// into O(1) bit tests.
    label_sets: Vec<LabelCoreSet>,
    /// Scratch for leaf-position scans.
    leaf_buf: Vec<u32>,
    scratch: ScratchSlot<'a>,
    /// Scratch for `is_maximal_feasible_id`'s child scan.
    maximal_buf: Vec<u32>,
    /// `Gk`: the global k-ĉore containing `q` (feasibility of the
    /// root-only candidate — and of the empty tree).
    gk: Community,
    /// Instrumentation counters.
    pub stats: QueryStats,
}

impl<'a> Verifier<'a> {
    /// Creates the oracle with its own scratch and computes `Gk` once.
    pub fn new(ctx: &'a QueryContext<'a>, space: &'a QuerySpace, q: VertexId, k: u32) -> Self {
        let scratch = ScratchSlot::Owned(Box::new(QueryScratch::new(ctx.graph.num_vertices())));
        Self::build(ctx, space, q, k, scratch)
    }

    /// Creates the oracle on pooled scratch (the engine's hot path):
    /// repeated queries over one graph reuse every buffer.
    pub fn with_scratch(
        ctx: &'a QueryContext<'a>,
        space: &'a QuerySpace,
        q: VertexId,
        k: u32,
        scratch: &'a mut QueryScratch,
    ) -> Self {
        Self::build(ctx, space, q, k, ScratchSlot::Borrowed(scratch))
    }

    fn build(
        ctx: &'a QueryContext<'a>,
        space: &'a QuerySpace,
        q: VertexId,
        k: u32,
        mut scratch: ScratchSlot<'a>,
    ) -> Self {
        let scr = scratch.get();
        scr.begin(ctx.graph.num_vertices());
        let gk = ctx.cores.kcore_component(ctx.graph, q, k).map(Rc::new);
        // Stamp every Gk member with its dense Gk index, so label-ĉore
        // bitsets over Gk answer membership in O(1).
        if let Some(gk) = &gk {
            for (i, &v) in gk.iter().enumerate() {
                scr.stamp_gk_pos(v, i as u32);
            }
        }
        let stats = QueryStats { query_tree_size: space.len() as u32, ..Default::default() };
        Verifier {
            ctx,
            space,
            q,
            k,
            interner: SubtreeInterner::new(space),
            memo: Vec::new(),
            maximal_memo: Vec::new(),
            label_sets: vec![LabelCoreSet::Unbuilt; space.len()],
            leaf_buf: Vec::new(),
            scratch,
            maximal_buf: Vec::new(),
            gk,
            stats,
        }
    }

    /// The query vertex.
    pub fn q(&self) -> VertexId {
        self.q
    }

    /// The degree bound.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The frozen search space (borrowed from the caller, so the
    /// reference outlives any later `&mut self` use).
    pub fn space(&self) -> &'a QuerySpace {
        self.space
    }

    /// The query's subtree interner (for id-space lattice moves).
    pub fn ids(&self) -> &SubtreeInterner<'a> {
        &self.interner
    }

    /// Mutable interner access (interning and memoized ±one-node moves).
    pub fn ids_mut(&mut self) -> &mut SubtreeInterner<'a> {
        &mut self.interner
    }

    /// The global k-ĉore `Gk` of the query vertex (the community of the
    /// empty and root-only candidates), if it exists.
    pub fn gk(&self) -> Community {
        self.gk.clone()
    }

    /// True when vertex `v`'s profile contains candidate `s`.
    pub fn vertex_contains(&mut self, v: VertexId, s: &Subtree) -> bool {
        let id = self.interner.intern(s);
        let ctx = self.ctx;
        let space = self.space;
        let scr = self.scratch.get();
        let interner = &self.interner;
        ensure_mask(scr, ctx, space, v)
            .is_some_and(|mask| interner.is_subset_of_words(id, mask.words()))
    }

    /// The memoized verdict for `id`, growing the table on first sight.
    fn memo_get(&mut self, id: SubtreeId) -> Option<Community> {
        if id.index() >= self.memo.len() {
            self.memo.resize(self.interner.num_interned().max(id.index() + 1), None);
        }
        self.memo.get(id.index()).and_then(Clone::clone)
    }

    fn memo_set(&mut self, id: SubtreeId, result: Community) {
        if let Some(slot) = self.memo.get_mut(id.index()) {
            *slot = Some(result);
        }
    }

    /// `Gk[T]` with automatic candidate seeding, memoized per
    /// [`SubtreeId`]. The indexed path probes a borrowed CL-tree arena
    /// slice and filters it into reusable scratch — no allocation
    /// unless the candidate turns out feasible (the answer vector).
    pub fn verify_id(&mut self, id: SubtreeId) -> Community {
        if self.interner.count(id) <= 1 {
            // The empty tree and the root-only tree constrain nothing:
            // every vertex contains the taxonomy root.
            return self.gk.clone();
        }
        if let Some(hit) = self.memo_get(id) {
            self.stats.memo_hits += 1;
            return hit;
        }
        let result = if self.ctx.index.is_some() {
            self.verify_indexed(id)
        } else {
            // Algorithm 1: start from the global k-ĉore, filtered by
            // the per-vertex profile masks.
            match &self.gk {
                Some(gk) => {
                    let gk = Rc::clone(gk);
                    self.stats.seed_scanned += gk.len() as u64;
                    let (ctx, space) = (self.ctx, self.space);
                    filter_seed(&self.interner, id, ctx, space, self.scratch.get(), gk.as_slice());
                    self.peel()
                }
                None => None,
            }
        };
        if result.is_some() {
            self.stats.feasible += 1;
        }
        self.memo_set(id, result.clone());
        result
    }

    /// Indexed seeding (the `verifyPtree` bound, strengthened): the
    /// candidates are `⋂ I.get(k, q, leaf)` over **every** leaf of the
    /// candidate — by ancestor closure, a vertex inside all leaf ĉores
    /// carries the whole subtree, so no mask pass is needed — computed
    /// as word-wise ANDs of the per-label bitsets over `Gk`.
    fn verify_indexed(&mut self, id: SubtreeId) -> Community {
        // Leaves of `id` (into reusable scratch).
        let mut leaves = std::mem::take(&mut self.leaf_buf);
        self.interner.leaves_into(id, &mut leaves);
        debug_assert!(!leaves.is_empty(), "non-empty candidate has a leaf");
        // Ensure every leaf's ĉore bitset exists; find the smallest.
        // `ensure_label_set` never leaves a set `Unbuilt`, so an
        // `Unbuilt` here is a logic error — treated as missing (the
        // conservative verdict) rather than a panic.
        let mut best: Option<(u32, u32)> = None; // (count, pos)
        let mut missing = false;
        for &p in &leaves {
            match self.ensure_label_set(p) {
                LabelCoreSet::Built { count, .. } => {
                    let count = *count;
                    if best.is_none_or(|(c, _)| count < c) {
                        best = Some((count, p));
                    }
                }
                state => {
                    debug_assert!(
                        matches!(state, LabelCoreSet::Missing),
                        "ensure_label_set builds"
                    );
                    missing = true;
                    break;
                }
            }
        }
        let best = if missing { None } else { best };
        let result = match (best, self.gk.clone()) {
            (Some((best_count, best_pos)), Some(gk)) => {
                self.stats.seed_scanned += best_count as u64;
                // AND all leaf sets into the scratch word buffer.
                let scr = self.scratch.get();
                let QueryScratch { words_buf, seed, .. } = scr;
                words_buf.clear();
                if let LabelCoreSet::Built { bits, .. } = label_set(&self.label_sets, best_pos) {
                    words_buf.extend_from_slice(bits);
                }
                for &p in &leaves {
                    if p != best_pos {
                        if let LabelCoreSet::Built { bits, .. } = label_set(&self.label_sets, p) {
                            for (a, b) in words_buf.iter_mut().zip(bits.iter()) {
                                *a &= *b;
                            }
                        }
                    }
                }
                // Materialize: Gk is sorted, so the seed comes out
                // sorted. Set bits only exist at stamped Gk positions,
                // so the checked lookup never actually misses.
                seed.clear();
                for (wi, &w) in words_buf.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if let Some(&v) = gk.get(wi * 64 + b) {
                            seed.push(v);
                        }
                    }
                }
                if seed.len() == best_count as usize {
                    // The smallest leaf ĉore survived the intersection
                    // whole: the candidates ARE that ĉore — a connected
                    // k-core containing q — so the peel is a no-op.
                    self.stats.verifications += 1;
                    Some(Rc::new(seed.clone()))
                } else {
                    self.peel()
                }
            }
            (Some(_), None) => {
                debug_assert!(false, "a built label ĉore implies Gk exists");
                None
            }
            (None, _) => None,
        };
        self.leaf_buf = leaves;
        result
    }

    /// Builds (once) the bitset of `I.get(k, q, label_at(pos))` over
    /// `Gk` positions. Only meaningful on the indexed path; with no
    /// index attached the set reads as `Missing` (callers guard on
    /// `ctx.index` before reaching here).
    fn ensure_label_set(&mut self, pos: u32) -> &LabelCoreSet {
        if matches!(label_set(&self.label_sets, pos), LabelCoreSet::Unbuilt) {
            let built = match self.ctx.index {
                None => {
                    debug_assert!(false, "ensure_label_set on the unindexed path");
                    LabelCoreSet::Missing
                }
                Some(index) => {
                    let label = self.space.label_at(pos);
                    match index.get_ref(self.k, self.q, label) {
                        None => LabelCoreSet::Missing,
                        Some(slice) => {
                            let gk_len = self.gk.as_ref().map_or(0, |g| g.len());
                            let mut bits =
                                vec![0u64; gk_len.div_ceil(64).max(1)].into_boxed_slice();
                            let scr = self.scratch.get();
                            let mut count = 0u32;
                            for &v in slice {
                                // Every level-k label ĉore is a subset
                                // of Gk; an unstamped vertex would mean
                                // the index disagrees with the core
                                // decomposition, so skip it.
                                if let Some(i) = scr.gk_pos_of(v) {
                                    if let Some(w) = bits.get_mut(i as usize / 64) {
                                        *w |= 1 << (i % 64);
                                        count += 1;
                                    }
                                }
                            }
                            LabelCoreSet::Built { bits, count }
                        }
                    }
                }
            };
            if let Some(slot) = self.label_sets.get_mut(pos as usize) {
                *slot = built;
            }
        }
        label_set(&self.label_sets, pos)
    }

    /// `Gk[T]` computed by narrowing a known parent community
    /// (`incre`'s Lemma 3 step): candidates = `base ∩ I.get(k,q,t)`
    /// where `t` is the label at the freshly added position. The
    /// intersection never walks the label's (potentially huge) ĉore:
    /// each `base` vertex is one bit test against the label's cached
    /// `Gk` bitset — total O(|base|), allocation-free.
    pub fn verify_from_base_id(
        &mut self,
        id: SubtreeId,
        base: &Rc<Vec<VertexId>>,
        added_pos: u32,
    ) -> Community {
        if let Some(hit) = self.memo_get(id) {
            self.stats.memo_hits += 1;
            return hit;
        }
        debug_assert!(
            self.ctx.index.is_some(),
            "verify_from_base is only used by index-based algorithms"
        );
        self.ensure_label_set(added_pos);
        let result = match label_set(&self.label_sets, added_pos) {
            LabelCoreSet::Built { bits, .. } => {
                self.stats.seed_scanned += base.len() as u64;
                // candidates = base ∩ I.get(k, q, t): one O(1) bit test
                // per base member, never a walk of the label's ĉore.
                let scr = self.scratch.get();
                let epoch = scr.epoch;
                let QueryScratch { seed, gk_pos, gk_pos_epoch, .. } = scr;
                seed.clear();
                for &v in base.iter() {
                    let vi = v as usize;
                    if gk_pos_epoch.get(vi).copied() == Some(epoch) {
                        let i = gk_pos.get(vi).copied().unwrap_or(u32::MAX) as usize;
                        if bits.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0) {
                            seed.push(v);
                        }
                    }
                }
                if seed.len() == base.len() {
                    // The label removed nothing: `base` is already a
                    // connected k-core containing q made of carriers of
                    // the grown subtree, so it IS the answer — share
                    // the Rc, skip the peel.
                    self.stats.verifications += 1;
                    Some(Rc::clone(base))
                } else {
                    self.peel()
                }
            }
            // `ensure_label_set` never leaves `Unbuilt`; either way a
            // non-built set means the narrowed candidate is infeasible.
            _ => None,
        };
        if result.is_some() {
            self.stats.feasible += 1;
        }
        self.memo_set(id, result.clone());
        result
    }

    /// Localized peel over the candidates currently in `scratch.seed`.
    fn peel(&mut self) -> Community {
        self.stats.verifications += 1;
        self.stats.peel_candidates += self.scratch.get().seed.len() as u64;
        let graph = self.ctx.graph;
        let (q, k) = (self.q, self.k);
        let scr = self.scratch.get();
        let QueryScratch { core, seed, .. } = scr;
        core.kcore_component_within(graph, seed, q, k).map(Rc::new)
    }

    /// Feasibility shorthand.
    pub fn is_feasible_id(&mut self, id: SubtreeId) -> bool {
        self.verify_id(id).is_some()
    }

    /// True when `id` is feasible and every lattice child is infeasible
    /// — the paper's "T′ is maximal" check.
    ///
    /// With an index attached, each child is verified by Lemma-3
    /// narrowing from `id`'s own (already memoized) community, so the
    /// scan costs O(children · |community|) instead of O(children ·
    /// |label ĉore|).
    pub fn is_maximal_feasible_id(&mut self, id: SubtreeId) -> bool {
        if id.index() >= self.maximal_memo.len() {
            self.maximal_memo.resize(self.interner.num_interned().max(id.index() + 1), 0);
        }
        match self.maximal_memo.get(id.index()).copied() {
            Some(1) => return true,
            Some(2) => return false,
            _ => {}
        }
        let Some(community) = self.verify_id(id) else {
            self.set_maximal_verdict(id, 2);
            return false;
        };
        let mut buf = std::mem::take(&mut self.maximal_buf);
        self.interner.lattice_children_into(id, &mut buf);
        let use_base = self.ctx.index.is_some();
        let mut maximal = true;
        for &p in &buf {
            self.stats.subtrees_generated += 1;
            let child = self.interner.with(id, p);
            let feasible = if use_base {
                self.verify_from_base_id(child, &community, p).is_some()
            } else {
                self.verify_id(child).is_some()
            };
            if feasible {
                maximal = false;
                break;
            }
        }
        self.maximal_buf = buf;
        self.set_maximal_verdict(id, if maximal { 1 } else { 2 });
        maximal
    }

    /// Records a maximality verdict (the table was grown by the caller;
    /// the checked write tolerates a stale length).
    #[inline]
    fn set_maximal_verdict(&mut self, id: SubtreeId, verdict: u8) {
        if let Some(slot) = self.maximal_memo.get_mut(id.index()) {
            *slot = verdict;
        }
    }

    // ------------------------------------------------------------------
    // Owned-`Subtree` compatibility layer: interns and delegates. Fine
    // for tests and one-shot probes; the algorithms stay in id space.
    // ------------------------------------------------------------------

    /// `Gk[T]` for an owned candidate (interns `s` first).
    pub fn verify(&mut self, s: &Subtree) -> Community {
        if s.is_empty() {
            return self.gk.clone();
        }
        let id = self.interner.intern(s);
        self.verify_id(id)
    }

    /// [`Verifier::verify_from_base_id`] for an owned candidate.
    pub fn verify_from_base(
        &mut self,
        s: &Subtree,
        base: &Rc<Vec<VertexId>>,
        added_pos: u32,
    ) -> Community {
        let id = self.interner.intern(s);
        self.verify_from_base_id(id, base, added_pos)
    }

    /// Feasibility shorthand for an owned candidate.
    pub fn is_feasible(&mut self, s: &Subtree) -> bool {
        self.verify(s).is_some()
    }

    /// [`Verifier::is_maximal_feasible_id`] for an owned candidate.
    pub fn is_maximal_feasible(&mut self, s: &Subtree) -> bool {
        let id = self.interner.intern(s);
        self.is_maximal_feasible_id(id)
    }

    /// Count one generated candidate (enumeration bookkeeping).
    pub fn note_generated(&mut self, n: u64) {
        self.stats.subtrees_generated += n;
    }
}

/// Builds (or revalidates) the lazy mask of `v`: `T(v)` projected onto
/// the query space's bit positions. Returns the mask, or `None` for a
/// vertex with no profile (out of range — impossible after `begin(n)`,
/// but the conservative answer is "contains nothing").
fn ensure_mask<'s>(
    scr: &'s mut QueryScratch,
    ctx: &QueryContext<'_>,
    space: &QuerySpace,
    v: VertexId,
) -> Option<&'s Subtree> {
    let vi = v as usize;
    if scr.mask_epoch.get(vi).copied() != Some(scr.epoch) {
        let profile = ctx.profiles.get(vi)?;
        let mut m = space.empty();
        for pos in 0..space.len() as u32 {
            if profile.contains(space.label_at(pos)) {
                m.insert(pos);
            }
        }
        let ep = scr.epoch;
        if let (Some(slot), Some(e)) = (scr.masks.get_mut(vi), scr.mask_epoch.get_mut(vi)) {
            *slot = Some(m);
            *e = ep;
        }
    }
    scr.masks.get(vi)?.as_ref()
}

/// Filters `seed` by the per-vertex mask test for candidate `id` into
/// `scr.seed` (cleared first).
fn filter_seed(
    interner: &SubtreeInterner<'_>,
    id: SubtreeId,
    ctx: &QueryContext<'_>,
    space: &QuerySpace,
    scr: &mut QueryScratch,
    seed: &[VertexId],
) {
    scr.seed.clear();
    for &v in seed {
        let ok = ensure_mask(scr, ctx, space, v)
            .is_some_and(|mask| interner.is_subset_of_words(id, mask.words()));
        if ok {
            scr.seed.push(v);
        }
    }
}

/// Intersection of two sorted vertex lists (kept for callers outside
/// the hot path; the verifier itself intersects via `Gk` bitsets).
pub fn intersect_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while let (Some(&x), Some(&y)) = (a.get(i), b.get(j)) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QueryContext;
    use pcs_graph::Graph;
    use pcs_index::CpTree;
    use pcs_ptree::{PTree, Taxonomy};

    fn setup() -> (Graph, Taxonomy, Vec<PTree>) {
        // Fig. 1(a) again: the canonical 8-vertex example.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (g, t, profiles)
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn verifier_matches_bruteforce_with_and_without_index() {
        let (g, t, profiles) = setup();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        for use_index in [false, true] {
            let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
            let ctx = if use_index { ctx.with_index(&index) } else { ctx };
            for q in [3u32, 0, 5] {
                for k in 1..=3u32 {
                    let space = ctx.space_for(q).unwrap();
                    let mut ver = Verifier::new(&ctx, &space, q, k);
                    // Brute force every valid candidate.
                    let all = pcs_ptree::enumerate::enumerate_rooted_subtrees(&space);
                    for s in &all {
                        let expect = brute_gk(&g, &profiles, &space, s, q, k);
                        let got = ver.verify(s).map(|rc| rc.as_ref().clone());
                        assert_eq!(got, expect, "use_index={use_index} q={q} k={k}");
                        // Second call hits the memo and agrees.
                        let again = ver.verify(s).map(|rc| rc.as_ref().clone());
                        assert_eq!(again, expect);
                    }
                }
            }
        }
    }

    /// Pooled scratch answers exactly like fresh scratch across a
    /// sequence of different queries (mask epochs must isolate them).
    #[test]
    fn scratch_reuse_is_transparent() {
        let (g, t, profiles) = setup();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let mut scratch = QueryScratch::new(g.num_vertices());
        for q in 0..8u32 {
            for k in 1..=3u32 {
                let space = ctx.space_for(q).unwrap();
                let mut pooled = Verifier::with_scratch(&ctx, &space, q, k, &mut scratch);
                let mut fresh = Verifier::new(&ctx, &space, q, k);
                for s in pcs_ptree::enumerate::enumerate_rooted_subtrees(&space) {
                    assert_eq!(
                        pooled.verify(&s).map(|rc| rc.as_ref().clone()),
                        fresh.verify(&s).map(|rc| rc.as_ref().clone()),
                        "q={q} k={k}"
                    );
                }
            }
        }
    }

    /// Reference implementation: filter all vertices, peel naively.
    fn brute_gk(
        g: &Graph,
        profiles: &[PTree],
        space: &QuerySpace,
        s: &Subtree,
        q: VertexId,
        k: u32,
    ) -> Option<Vec<VertexId>> {
        let want = space.to_ptree(s);
        let cands: Vec<VertexId> = (0..g.num_vertices() as u32)
            .filter(|&v| want.is_subtree_of(&profiles[v as usize]))
            .collect();
        let mut sc = SubsetCore::new(g.num_vertices());
        sc.kcore_component_within(g, &cands, q, k)
    }

    #[test]
    fn verify_from_base_agrees_with_direct() {
        let (g, t, profiles) = setup();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let q = 3u32;
        let k = 2;
        let space = ctx.space_for(q).unwrap();
        let mut direct = Verifier::new(&ctx, &space, q, k);
        let mut incr = Verifier::new(&ctx, &space, q, k);
        // Walk rightmost extensions, comparing incremental narrowing
        // against direct verification at every step.
        let mut stack = vec![(space.root_only(), incr.gk())];
        while let Some((s, community)) = stack.pop() {
            let Some(base) = community else { continue };
            for p in space.rightmost_extensions(&s) {
                let child = s.with(p);
                let via_base = incr.verify_from_base(&child, &base, p);
                let via_direct = direct.verify(&child);
                assert_eq!(
                    via_base.as_ref().map(|r| r.as_ref()),
                    via_direct.as_ref().map(|r| r.as_ref())
                );
                stack.push((child, via_base));
            }
        }
    }

    #[test]
    fn maximality_check() {
        let (g, t, profiles) = setup();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let q = 3u32;
        let space = ctx.space_for(q).unwrap();
        let mut ver = Verifier::new(&ctx, &space, q, 2);
        // Fig. 2(b): {B,C,D} share r->CM->{ML,AI}; that candidate is
        // feasible and maximal at k=2.
        let cm = space.position_of(t.id_of("CM").unwrap()).unwrap();
        let ml = space.position_of(t.id_of("ML").unwrap()).unwrap();
        let ai = space.position_of(t.id_of("AI").unwrap()).unwrap();
        let cand = space.closure([cm, ml, ai]);
        assert!(ver.is_feasible(&cand));
        assert!(ver.is_maximal_feasible(&cand));
        assert_eq!(
            ver.verify(&cand).unwrap().as_ref(),
            &vec![1, 2, 3] // B, C, D
        );
        // The root-only candidate is feasible but NOT maximal.
        assert!(ver.is_feasible(&space.root_only()));
        assert!(!ver.is_maximal_feasible(&space.root_only()));
    }

    #[test]
    fn vertex_contains_matches_profiles() {
        let (g, t, profiles) = setup();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let space = ctx.space_for(3).unwrap();
        let mut ver = Verifier::new(&ctx, &space, 3, 2);
        for v in 0..8u32 {
            for s in pcs_ptree::enumerate::enumerate_rooted_subtrees(&space) {
                let expect = space.to_ptree(&s).is_subtree_of(&profiles[v as usize]);
                assert_eq!(ver.vertex_contains(v, &s), expect, "v={v}");
            }
        }
    }

    #[test]
    fn infeasible_when_gk_missing() {
        let (g, t, profiles) = setup();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let space = ctx.space_for(2).unwrap();
        // Vertex C has core 2; k=3 leaves no Gk.
        let mut ver = Verifier::new(&ctx, &space, 2, 3);
        assert!(ver.gk().is_none());
        assert!(!ver.is_feasible(&space.root_only()));
        assert!(!ver.is_feasible(&space.full()));
    }

    #[test]
    fn stats_accumulate() {
        let (g, t, profiles) = setup();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let space = ctx.space_for(3).unwrap();
        let mut ver = Verifier::new(&ctx, &space, 3, 2);
        let full = space.full();
        let _ = ver.verify(&full);
        let _ = ver.verify(&full);
        assert_eq!(ver.stats.verifications, 1);
        assert_eq!(ver.stats.memo_hits, 1);
        ver.note_generated(3);
        assert_eq!(ver.stats.subtrees_generated, 3);
        assert_eq!(ver.stats.query_tree_size, space.len() as u32);
    }

    use pcs_graph::core::SubsetCore;
}
