//! Facebook-ego-network substitutes with ground-truth circles
//! (Table 4 / Fig. 11).
//!
//! | dataset | vertices | edges  | d̂    | P̂    |
//! |---------|----------|--------|-------|-------|
//! | FB1     | 1 233    | 11 972 | 19.41 | 34.54 |
//! | FB2     | 1 447    | 17 533 | 24.23 | 29.12 |
//! | FB3     | 982      | 10 112 | 20.59 | 31.10 |
//!
//! Each network plants overlapping *friendship circles* whose members
//! share a circle theme subtree — the ground truth the F1 experiment
//! scores against, mirroring how the paper hash-maps real Facebook
//! profiles onto CCS subjects.

use crate::gen::{generate, DatasetSpec, ProfiledDataset};
use crate::taxonomy;

/// Which ego-network to synthesize (the paper's FB1–FB3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EgoNetwork {
    /// 1 233 vertices, d̂ 19.41, P̂ 34.54.
    Fb1,
    /// 1 447 vertices, d̂ 24.23, P̂ 29.12.
    Fb2,
    /// 982 vertices, d̂ 20.59, P̂ 31.10.
    Fb3,
}

impl EgoNetwork {
    /// All three, in Table 4 order.
    pub const ALL: [EgoNetwork; 3] = [EgoNetwork::Fb1, EgoNetwork::Fb2, EgoNetwork::Fb3];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EgoNetwork::Fb1 => "FB1-like",
            EgoNetwork::Fb2 => "FB2-like",
            EgoNetwork::Fb3 => "FB3-like",
        }
    }

    /// Table 4 vertex count.
    pub fn vertices(self) -> usize {
        match self {
            EgoNetwork::Fb1 => 1233,
            EgoNetwork::Fb2 => 1447,
            EgoNetwork::Fb3 => 982,
        }
    }

    /// Table 4 average degree.
    pub fn avg_degree(self) -> f64 {
        match self {
            EgoNetwork::Fb1 => 19.41,
            EgoNetwork::Fb2 => 24.23,
            EgoNetwork::Fb3 => 20.59,
        }
    }

    /// Table 4 average P-tree size.
    pub fn avg_ptree(self) -> f64 {
        match self {
            EgoNetwork::Fb1 => 34.54,
            EgoNetwork::Fb2 => 29.12,
            EgoNetwork::Fb3 => 31.10,
        }
    }
}

/// Builds one ego network with planted circles as ground truth.
///
/// Circles are denser and more theme-coherent than the suite datasets'
/// groups (friendship circles are tight), so that profile-aware methods
/// can actually recover them — the premise of the paper's F1 study.
pub fn build(which: EgoNetwork, seed: u64) -> ProfiledDataset {
    let tax = taxonomy::ccs_like(seed ^ 0xe90);
    let spec = DatasetSpec {
        name: which.name().to_owned(),
        vertices: which.vertices(),
        avg_degree: which.avg_degree(),
        avg_ptree: which.avg_ptree(),
        group_size: 40,
        groups_per_vertex: 1.4,
        intra_fraction: 0.85,
        theme_fraction: 0.55,
        seed: seed ^ (which as u64 + 1).wrapping_mul(0x517c_c1b7_2722_0a95),
    };
    generate(&spec, tax)
}

/// Builds all three ego networks.
pub fn build_all(seed: u64) -> Vec<ProfiledDataset> {
    EgoNetwork::ALL.iter().map(|&e| build(e, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fb_statistics_close_to_table4() {
        for which in EgoNetwork::ALL {
            let ds = build(which, 5);
            assert_eq!(ds.graph.num_vertices(), which.vertices());
            let d = ds.graph.avg_degree();
            assert!((d - which.avg_degree()).abs() < 5.0, "{}: degree {d}", ds.name);
            let p = ds.avg_ptree_size();
            assert!((p - which.avg_ptree()).abs() < 8.0, "{}: ptree {p}", ds.name);
            assert!(!ds.groups.is_empty());
        }
    }

    #[test]
    fn circles_are_recoverable_communities() {
        let ds = build(EgoNetwork::Fb3, 6);
        // Most circles should contain a 4-core (dense enough for
        // query-based methods to find structure inside).
        let mut sc = pcs_graph::core::SubsetCore::new(ds.graph.num_vertices());
        let mut with_core = 0;
        let mut checked = 0;
        for circle in &ds.groups {
            if circle.len() < 8 {
                continue;
            }
            checked += 1;
            let q = circle[0];
            if sc.kcore_component_within(&ds.graph, circle, q, 4).is_some() {
                with_core += 1;
            }
        }
        assert!(checked > 0);
        assert!(
            with_core * 3 >= checked * 2,
            "only {with_core}/{checked} circles contain a 4-core"
        );
    }

    #[test]
    fn deterministic_and_distinct() {
        let a = build(EgoNetwork::Fb1, 9);
        let b = build(EgoNetwork::Fb1, 9);
        assert_eq!(a.graph, b.graph);
        let c = build(EgoNetwork::Fb2, 9);
        assert_ne!(a.graph.num_vertices(), c.graph.num_vertices());
    }
}
