//! The corruption matrix: every way a snapshot file can be damaged —
//! truncation at arbitrary points, bit flips in the header, the
//! section table, and every section payload, wrong magic, a future
//! format version, and section-length overflows — must surface as a
//! typed [`StoreError`], never as a panic, a hang, or a silently wrong
//! engine. Each case runs under `std::panic::catch_unwind` so a panic
//! anywhere in the load path fails the test with the offending case.

use pcs_engine::UpdateBatch;
use pcs_engine::{Error, IndexMode, PcsEngine, QueryRequest, StoreError};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};
use pcs_store::{xxh64, SnapshotFile, FORMAT_VERSION, SECTION_TABLE};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pcs-fault-{}-{tag}-{}.snapshot",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A healthy snapshot (graph + profiles + cores + built index) plus the
/// engine that wrote it.
fn healthy_snapshot() -> (Vec<u8>, PcsEngine) {
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(a, "b").unwrap();
    let c = tax.add_child(Taxonomy::ROOT, "c").unwrap();
    let g = Graph::from_edges(
        8,
        &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (5, 6), (4, 6)],
    )
    .unwrap();
    let profiles = vec![
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [b, c]).unwrap(),
        PTree::from_labels(&tax, [a, c]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [c]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::root_only(), // isolated vertex
    ];
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let path = tmp_path("healthy");
    engine.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    (bytes, engine)
}

/// Loads corrupted bytes through the full *eager* engine path inside
/// `catch_unwind`; returns the typed error. Panics (= test failure)
/// when the load panicked or — worse — succeeded. Eager mode decodes
/// and checksums every section up front, so all damage must be caught
/// at load time; the lazy path's deferred-validation contract is
/// pinned separately by the first-touch tests below.
fn must_fail_typed(bytes: &[u8], case: &str) -> Error {
    let path = tmp_path("case");
    std::fs::write(&path, bytes).unwrap();
    let result = catch_unwind(|| PcsEngine::builder().index_mode(IndexMode::Eager).load(&path));
    std::fs::remove_file(&path).unwrap();
    match result {
        Err(_) => panic!("case {case}: load PANICKED instead of returning an error"),
        Ok(Ok(_)) => panic!("case {case}: corrupted snapshot loaded successfully"),
        Ok(Err(e)) => e,
    }
}

/// The section table region, as (start, end) byte offsets.
fn table_range(bytes: &[u8]) -> (usize, usize) {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    (24, 24 + 32 * count)
}

#[test]
fn truncation_at_every_interesting_length_is_typed() {
    let (bytes, _engine) = healthy_snapshot();
    let (_, table_end) = table_range(&bytes);
    // Every header byte, every table boundary, a sweep through the
    // payloads, and one-short-of-complete.
    let mut cuts: Vec<usize> = (0..24.min(bytes.len())).collect();
    cuts.extend([24, table_end - 1, table_end]);
    cuts.extend((table_end..bytes.len()).step_by(97));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = must_fail_typed(&bytes[..cut], &format!("truncate@{cut}"));
        assert!(
            matches!(
                err,
                Error::Store(
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::SectionOverflow { .. }
                        | StoreError::ChecksumMismatch { .. }
                )
            ),
            "truncate@{cut}: unexpected error {err:?}"
        );
    }
    // The empty file too.
    let err = must_fail_typed(&[], "empty");
    assert!(matches!(err, Error::Store(StoreError::Truncated { needed: 24, actual: 0 })));
}

#[test]
fn bit_flips_in_every_region_are_typed() {
    let (bytes, _engine) = healthy_snapshot();
    let (table_start, table_end) = table_range(&bytes);
    // Flip one bit at a spread of positions covering the magic, the
    // version, the count, the table checksum, every table entry, and
    // every payload (all six sections lie in [table_end, len)).
    let mut positions: Vec<usize> = (0..table_end).step_by(3).collect();
    positions.extend((table_end..bytes.len()).step_by(53));
    positions.push(bytes.len() - 1);
    for pos in positions {
        for bit in [0u8, 7] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 << bit;
            let case = format!("flip byte {pos} bit {bit}");
            let err = must_fail_typed(&corrupted, &case);
            let expected_class = match pos {
                0..=7 => matches!(err, Error::Store(StoreError::BadMagic { .. })),
                8..=11 => matches!(err, Error::Store(StoreError::UnsupportedVersion { .. })),
                // Count / table checksum: the section-count cap, the
                // table checksum, or a bounds check on the re-declared
                // layout must catch it.
                p if p < table_start => matches!(
                    err,
                    Error::Store(
                        StoreError::ChecksumMismatch { .. }
                            | StoreError::Truncated { .. }
                            | StoreError::Corrupt { section: SECTION_TABLE, .. }
                    )
                ),
                p if p < table_end => matches!(
                    err,
                    Error::Store(StoreError::ChecksumMismatch { section: SECTION_TABLE, .. })
                ),
                // Payload flips: the per-section checksum names the
                // damaged section.
                _ => matches!(
                    err,
                    Error::Store(StoreError::ChecksumMismatch { section, .. })
                        if section != SECTION_TABLE
                ),
            };
            assert!(expected_class, "{case}: unexpected error {err:?}");
        }
    }
}

#[test]
fn wrong_magic_is_typed() {
    let (bytes, _engine) = healthy_snapshot();
    let mut corrupted = bytes.clone();
    corrupted[..8].copy_from_slice(b"NOTASNAP");
    assert_eq!(
        must_fail_typed(&corrupted, "wrong magic"),
        Error::Store(StoreError::BadMagic { found: *b"NOTASNAP" })
    );
    // A zip file, say.
    let err = must_fail_typed(b"PK\x03\x04 anything else entirely", "zip");
    assert!(matches!(err, Error::Store(StoreError::BadMagic { .. })));
}

#[test]
fn future_format_version_is_typed() {
    let (bytes, _engine) = healthy_snapshot();
    let mut corrupted = bytes.clone();
    corrupted[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert_eq!(
        must_fail_typed(&corrupted, "future version"),
        Error::Store(StoreError::UnsupportedVersion {
            found: FORMAT_VERSION + 1,
            supported: FORMAT_VERSION,
        })
    );
}

/// Crafting an *internally consistent* overflow: the table entry's
/// length is inflated and the table checksum recomputed, so the read
/// reaches the dedicated bounds check rather than the checksum guard.
#[test]
fn section_length_overflow_is_typed() {
    let (bytes, _engine) = healthy_snapshot();
    for (case, new_len) in [("huge", u64::MAX), ("past-eof", bytes.len() as u64)] {
        let mut corrupted = bytes.clone();
        let (table_start, table_end) = table_range(&corrupted);
        // First entry: id at +0, offset at +8, len at +16.
        corrupted[table_start + 16..table_start + 24].copy_from_slice(&new_len.to_le_bytes());
        let table_sum = xxh64(&corrupted[table_start..table_end], FORMAT_VERSION as u64);
        corrupted[16..24].copy_from_slice(&table_sum.to_le_bytes());
        let err = must_fail_typed(&corrupted, case);
        assert!(
            matches!(err, Error::Store(StoreError::SectionOverflow { len, .. }) if len == new_len),
            "{case}: unexpected error {err:?}"
        );
    }
}

/// A forged header declaring an absurd section count must be rejected
/// up front (bounded work), not ground through a quadratic table scan
/// or a giant allocation.
#[test]
fn absurd_section_count_is_rejected_fast() {
    let (bytes, _engine) = healthy_snapshot();
    let mut forged = bytes.clone();
    forged[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    let start = std::time::Instant::now();
    let err = must_fail_typed(&forged, "forged count");
    assert!(
        matches!(err, Error::Store(StoreError::Corrupt { section: SECTION_TABLE, .. })),
        "unexpected error {err:?}"
    );
    assert!(start.elapsed().as_secs() < 5, "count check must run before any scaled work");
}

/// Saves are atomic: overwriting an existing snapshot goes through a
/// temp file + rename, so the destination always holds either the old
/// or the new complete file (and no temp litter survives).
#[test]
fn save_over_existing_snapshot_is_atomic_and_clean() {
    let (bytes, engine) = healthy_snapshot();
    let path = tmp_path("atomic");
    std::fs::write(&path, b"previous contents, not even a snapshot").unwrap();
    engine.save(&path).unwrap();
    let reread = std::fs::read(&path).unwrap();
    assert_eq!(reread, bytes, "rename replaced the file with the complete new snapshot");
    let dir = path.parent().unwrap();
    let stem = path.file_name().unwrap().to_string_lossy().into_owned();
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&stem) && n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    std::fs::remove_file(&path).unwrap();
}

/// A checksum-valid file whose *contents* lie (a section decodes but
/// disagrees with its siblings) must still be rejected: swap in a
/// cores section computed for a different graph.
#[test]
fn internally_inconsistent_sections_are_typed() {
    let (bytes, _engine) = healthy_snapshot();
    let file = SnapshotFile::from_bytes(&bytes).unwrap();
    let mut forged = SnapshotFile::new();
    for id in file.section_ids() {
        if id == pcs_store::section::CORES {
            // Degree-violating core numbers for vertex 7 (isolated),
            // written at the file's (narrow) id width so the decode
            // reaches the semantic degree check.
            let mut w = pcs_store::SectionWriter::new();
            w.put_u64(8);
            w.put_id_slice(&[2, 2, 3, 2, 3, 2, 2, 9], true);
            forged.push_section(id, w.finish());
        } else {
            forged.push_section(id, file.section(id).unwrap().to_vec());
        }
    }
    let err = must_fail_typed(&forged.to_bytes(), "forged cores");
    assert!(
        matches!(err, Error::Store(StoreError::Corrupt { section: pcs_store::section::CORES, .. })),
        "unexpected error {err:?}"
    );
}

/// After surviving the whole gauntlet, the pristine bytes still load
/// and answer like the source engine — the matrix harness itself is
/// not what makes loads fail.
#[test]
fn pristine_bytes_still_load_and_answer() {
    let (bytes, engine) = healthy_snapshot();
    let path = tmp_path("pristine");
    std::fs::write(&path, &bytes).unwrap();
    let loaded = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    for q in 0..8u32 {
        let a = engine.query(&QueryRequest::vertex(q).k(2)).unwrap();
        let b = loaded.query(&QueryRequest::vertex(q).k(2)).unwrap();
        assert_eq!(a.communities(), b.communities(), "q={q}");
    }
}

// ---------------------------------------------------------------------
// Lazy-path corruption matrix: the lazy load defers GRAPH and PROFILES
// payload validation to first touch. The contract is *fail-stop, never
// wrong*: a bit flip in a deferred range may let the load succeed, but
// the first query (or materialization) that touches the damaged bytes
// must surface a typed ChecksumMismatch/Corrupt naming the section —
// and every answer produced before that moment must equal the healthy
// engine's. No panic, no silent drift.
// ---------------------------------------------------------------------

/// All section (id, start, end) byte ranges, decoded from the table.
fn section_ranges(bytes: &[u8]) -> Vec<(u32, usize, usize)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let at = 24 + 32 * i;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let off = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap()) as usize;
            (id, off, off + len)
        })
        .collect()
}

#[test]
fn lazy_graph_and_profile_flips_are_typed_on_first_touch_never_wrong() {
    let (bytes, healthy) = healthy_snapshot();
    let deferred: Vec<(u32, usize, usize)> = section_ranges(&bytes)
        .into_iter()
        .filter(|(id, _, _)| {
            *id == pcs_store::section::GRAPH || *id == pcs_store::section::PROFILES
        })
        .collect();
    assert_eq!(deferred.len(), 2, "fixture persists both deferred sections");
    for (id, start, end) in deferred {
        let mut positions: Vec<usize> = (start..end).step_by(11).collect();
        positions.push(end - 1);
        for pos in positions {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x10;
            let case = format!("section {id} flip byte {pos}");
            let path = tmp_path("lazyflip");
            std::fs::write(&path, &corrupted).unwrap();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let loaded = match PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path) {
                    // Structural prefixes (the profile chunk directory)
                    // are validated at open; failing there is fine as
                    // long as the error is typed.
                    Err(e) => return e,
                    Ok(engine) => engine,
                };
                // Drive the replica through a full first touch: every
                // vertex at several k, then force both deferred
                // sections all the way resident. The first typed error
                // wins; until then every answer must match the healthy
                // engine bit for bit.
                for q in 0..8u32 {
                    for k in 1..4u32 {
                        match loaded.query(&QueryRequest::vertex(q).k(k)) {
                            Ok(resp) => {
                                let want = healthy.query(&QueryRequest::vertex(q).k(k)).unwrap();
                                assert_eq!(
                                    want.communities(),
                                    resp.communities(),
                                    "{case}: WRONG ANSWER at q={q} k={k}"
                                );
                            }
                            Err(e) => return e,
                        }
                    }
                }
                let snap = loaded.snapshot();
                if let Err(e) = snap.try_graph().map(|_| ()) {
                    return e;
                }
                match snap.try_profiles() {
                    Err(e) => e,
                    Ok(_) => panic!("{case}: damage never surfaced after full touch"),
                }
            }));
            std::fs::remove_file(&path).unwrap();
            let err = match outcome {
                Err(_) => panic!("{case}: PANICKED instead of returning a typed error"),
                Ok(e) => e,
            };
            let named_ok = matches!(
                &err,
                Error::Store(
                    StoreError::ChecksumMismatch { section, .. }
                        | StoreError::Corrupt { section, .. }
                ) if *section == id
            );
            let structural_ok = matches!(
                &err,
                Error::Store(StoreError::Truncated { .. } | StoreError::SectionOverflow { .. })
            );
            assert!(named_ok || structural_ok, "{case}: unexpected error {err:?}");
        }
    }
}

/// The differential pin: an eager-loaded replica, a lazily-loaded
/// replica, and the original from-scratch engine stay answer-equal
/// through a mixed stream of edge and profile updates. Lazy loading
/// changes *when* bytes are read, never *what* the engine computes.
#[test]
fn eager_lazy_and_scratch_engines_agree_under_a_mixed_update_stream() {
    let (bytes, scratch) = healthy_snapshot();
    let path = tmp_path("diff");
    std::fs::write(&path, &bytes).unwrap();
    let eager = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path).unwrap();
    let lazy = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    // Same taxonomy shape as the fixture, so label ids line up.
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(a, "b").unwrap();
    let c = tax.add_child(Taxonomy::ROOT, "c").unwrap();
    let batches = [
        UpdateBatch::new().add_edge(7, 0).add_edge(7, 1),
        UpdateBatch::new()
            .remove_edge(2, 3)
            .set_profile(5, PTree::from_labels(&tax, [a, b]).unwrap()),
        UpdateBatch::new().add_edge(3, 5).add_edge(3, 6).remove_edge(7, 0),
        UpdateBatch::new().set_profile(7, PTree::from_labels(&tax, [c]).unwrap()).add_edge(0, 4),
    ];
    for (i, batch) in batches.iter().enumerate() {
        scratch.apply(batch).unwrap();
        eager.apply(batch).unwrap();
        lazy.apply(batch).unwrap();
        for q in 0..8u32 {
            for k in 1..4u32 {
                let want = scratch.query(&QueryRequest::vertex(q).k(k)).unwrap();
                let from_eager = eager.query(&QueryRequest::vertex(q).k(k)).unwrap();
                let from_lazy = lazy.query(&QueryRequest::vertex(q).k(k)).unwrap();
                assert_eq!(
                    want.communities(),
                    from_eager.communities(),
                    "batch {i} q={q} k={k}: eager replica diverged"
                );
                assert_eq!(
                    want.communities(),
                    from_lazy.communities(),
                    "batch {i} q={q} k={k}: lazy replica diverged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sharded-INDEX corruption matrix (v3 layout): forged (re-checksummed)
// INDEX sections whose shard directory lies must fail with typed
// errors — the directory is validated eagerly in *both* eager and
// partial load modes. Forged shard *payloads* are rejected by the
// eager decode; the partial path defers their decode and transparently
// rebuilds the shard from the graph instead, so a bad payload can
// never produce a wrong answer.
// ---------------------------------------------------------------------

/// Byte offset of the shard directory inside the healthy v3 INDEX
/// payload, plus the shard count found there. Mirrors the reader's
/// cursor walk (n, num_labels, member lens, per-label member sums,
/// total, member ids, then the directory); META's `narrow` flag
/// decides the id width.
fn index_directory_offset(index_payload: &[u8], num_labels: usize, narrow: bool) -> (usize, usize) {
    let id = if narrow { 2 } else { 4 };
    let mut at = 16; // n + num_labels
    at += 4 * num_labels; // member lens (u32 each)
    at += 8 * num_labels; // v3 per-label member checksums (u64 each)
    let total = u64::from_le_bytes(index_payload[at..at + 8].try_into().unwrap()) as usize;
    at += 8 + id * total;
    let count = u64::from_le_bytes(index_payload[at..at + 8].try_into().unwrap()) as usize;
    (at + 8, count)
}

/// Rebuilds the container around a mutated INDEX payload (checksums
/// recomputed, so only the structural validators can catch it) and
/// asserts the typed rejection — under the eager load path, where
/// every shard is decoded up front.
fn forge_index(bytes: &[u8], case: &str, mutate: impl Fn(&mut Vec<u8>)) -> Error {
    let file = SnapshotFile::from_bytes(bytes).unwrap();
    let mut forged = SnapshotFile::new();
    for id in file.section_ids() {
        let mut payload = file.section(id).unwrap().to_vec();
        if id == pcs_store::section::INDEX {
            mutate(&mut payload);
        }
        forged.push_section(id, payload);
    }
    let path = tmp_path("v2idx");
    std::fs::write(&path, forged.to_bytes()).unwrap();
    let result = catch_unwind(|| PcsEngine::builder().index_mode(IndexMode::Eager).load(&path));
    std::fs::remove_file(&path).unwrap();
    match result {
        Err(_) => panic!("case {case}: eager load PANICKED instead of returning an error"),
        Ok(Ok(_)) => panic!("case {case}: forged shard table loaded successfully"),
        Ok(Err(e)) => e,
    }
}

#[test]
fn v2_shard_table_corruptions_are_typed() {
    let (bytes, _engine) = healthy_snapshot();
    let file = SnapshotFile::from_bytes(&bytes).unwrap();
    let payload = file.section(pcs_store::section::INDEX).unwrap();
    let num_labels = u64::from_le_bytes(payload[8..16].try_into().unwrap()) as usize;
    let (dir_at, shard_count) = index_directory_offset(payload, num_labels, true);
    assert!(shard_count >= 2, "healthy eager snapshot persists several shards");
    let expect_corrupt = |case: &str, err: Error| {
        assert!(
            matches!(
                err,
                Error::Store(StoreError::Corrupt { section: pcs_store::section::INDEX, .. })
            ),
            "{case}: unexpected error {err:?}"
        );
    };
    // Entry layout: u32 label, u64 offset, u64 len, u64 payload
    // checksum (28 bytes each in v3).
    expect_corrupt(
        "label out of range",
        forge_index(&bytes, "label out of range", |p| {
            p[dir_at..dir_at + 4].copy_from_slice(&(num_labels as u32).to_le_bytes());
        }),
    );
    expect_corrupt(
        "labels not ascending",
        forge_index(&bytes, "labels not ascending", |p| {
            let second = u32::from_le_bytes(p[dir_at + 28..dir_at + 32].try_into().unwrap());
            p[dir_at..dir_at + 4].copy_from_slice(&second.to_le_bytes());
        }),
    );
    expect_corrupt(
        "offset does not tile",
        forge_index(&bytes, "offset does not tile", |p| {
            p[dir_at + 4..dir_at + 12].copy_from_slice(&1u64.to_le_bytes());
        }),
    );
    expect_corrupt(
        "length overflows",
        forge_index(&bytes, "length overflows", |p| {
            p[dir_at + 12..dir_at + 20].copy_from_slice(&u64::MAX.to_le_bytes());
        }),
    );
    expect_corrupt(
        "more shards than labels",
        forge_index(&bytes, "more shards than labels", |p| {
            p[dir_at - 8..dir_at].copy_from_slice(&(num_labels as u64 + 1).to_le_bytes());
        }),
    );
    // Member-table lie that keeps the list sorted and the grand total
    // intact, so only the carrier cross-pin can catch it: label "b"
    // (id 2) is carried by vertices [1, 2, 4]; replacing the trailing
    // 4 with 3 (vertex 3 carries a and c, not b) stays strictly
    // ascending — the forged table survives every structural check
    // and must be rejected by the members↔profiles pin.
    expect_corrupt(
        "member not a carrier",
        forge_index(&bytes, "member not a carrier", |p| {
            let lens: Vec<u32> = (0..num_labels)
                .map(|l| u32::from_le_bytes(p[16 + 4 * l..20 + 4 * l].try_into().unwrap()))
                .collect();
            assert_eq!(lens[2], 3, "fixture: label b carried by exactly [1, 2, 4]");
            let sums_at = 16 + 4 * num_labels;
            let ids_at = sums_at + 8 * num_labels + 8;
            let slot = ids_at + 2 * (lens[0] + lens[1] + 2) as usize;
            assert_eq!(&p[slot..slot + 2], &4u16.to_le_bytes()[..], "fixture drifted");
            p[slot..slot + 2].copy_from_slice(&3u16.to_le_bytes());
            // Re-checksum label 2's member run so only the carrier
            // cross-pin (not the v3 per-label checksum) can catch the
            // lie — this test pins the semantic check specifically.
            let run_at = ids_at + 2 * (lens[0] + lens[1]) as usize;
            let run = p[run_at..run_at + 2 * lens[2] as usize].to_vec();
            let sum = xxh64(&run, pcs_store::member_sum_seed(2));
            p[sums_at + 8 * 2..sums_at + 8 * 3].copy_from_slice(&sum.to_le_bytes());
        }),
    );
    // Forged shard payload (flip one byte inside the blob): the eager
    // decode rejects it...
    let blob_last = payload.len() - 1;
    let err = forge_index(&bytes, "forged payload", |p| {
        p[blob_last] ^= 0x01;
    });
    expect_corrupt("forged payload", err);
}

/// ...while the partial (lazy) load defers the payload decode, spots
/// the damage at materialization, and rebuilds the shard from the
/// graph — the replica still answers exactly like the source. A bad
/// payload can cost time, never correctness.
#[test]
fn v2_forged_shard_payload_is_rebuilt_under_partial_load() {
    let (bytes, engine) = healthy_snapshot();
    let file = SnapshotFile::from_bytes(&bytes).unwrap();
    let mut forged = SnapshotFile::new();
    for id in file.section_ids() {
        let mut payload = file.section(id).unwrap().to_vec();
        if id == pcs_store::section::INDEX {
            let last = payload.len() - 1;
            payload[last] ^= 0x01; // inside the final shard's blob
        }
        forged.push_section(id, payload);
    }
    let path = tmp_path("lazyrepair");
    std::fs::write(&path, forged.to_bytes()).unwrap();
    let loaded = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    for q in 0..8u32 {
        for k in 1..4u32 {
            let a = engine.query(&QueryRequest::vertex(q).k(k)).unwrap();
            let b = loaded.query(&QueryRequest::vertex(q).k(k)).unwrap();
            assert_eq!(a.communities(), b.communities(), "q={q} k={k}");
        }
    }
}
