//! The owned engine and its builder.

use pcs_core::{Algorithm, QueryContext};
use pcs_graph::core::CoreDecomposition;
use pcs_graph::Graph;
use pcs_index::{CpTree, IndexError};
use pcs_ptree::{PTree, Taxonomy};
use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::time::Instant;

use crate::error::{BuildError, Error, Result};
use crate::request::{QueryRequest, QueryResponse};

/// When the engine constructs its CP-tree index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexMode {
    /// Build on the first query that needs it (default). The build is
    /// raced at most once across threads via [`OnceLock`].
    #[default]
    Lazy,
    /// Build inside [`EngineBuilder::build`], trading startup latency
    /// for predictable first-query latency.
    Eager,
    /// Never build; index-dependent algorithms fail with
    /// [`Error::IndexDisabled`] and [`Algorithm::Auto`] resolves to
    /// `Basic`. Useful for memory-constrained replicas.
    Disabled,
}

/// Fluent constructor for [`PcsEngine`]; validates everything once so
/// queries never re-validate.
///
/// ```
/// use pcs_engine::PcsEngine;
/// use pcs_graph::Graph;
/// use pcs_ptree::{PTree, Taxonomy};
///
/// let mut tax = Taxonomy::new("r");
/// let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
/// let profiles: Vec<PTree> =
///     (0..3).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect();
/// let engine = PcsEngine::builder()
///     .graph(g)
///     .taxonomy(tax)
///     .profiles(profiles)
///     .build()
///     .unwrap();
/// ```
#[derive(Debug, Default)]
pub struct EngineBuilder {
    graph: Option<Graph>,
    tax: Option<Taxonomy>,
    profiles: Vec<PTree>,
    index_mode: IndexMode,
    index_build_threads: usize,
    batch_threads: Option<NonZeroUsize>,
}

impl EngineBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes ownership of the host graph.
    pub fn graph(mut self, graph: Graph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Takes ownership of the GP-tree.
    pub fn taxonomy(mut self, tax: Taxonomy) -> Self {
        self.tax = Some(tax);
        self
    }

    /// Takes ownership of the per-vertex P-trees
    /// (`profiles[v] = T(v)`).
    pub fn profiles(mut self, profiles: Vec<PTree>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Chooses the index construction policy (default
    /// [`IndexMode::Lazy`]).
    pub fn index_mode(mut self, mode: IndexMode) -> Self {
        self.index_mode = mode;
        self
    }

    /// Number of worker threads for CP-tree construction
    /// (default 1, matching `CpTree::build`).
    pub fn index_build_threads(mut self, threads: usize) -> Self {
        self.index_build_threads = threads.max(1);
        self
    }

    /// Worker threads [`PcsEngine::query_batch`] fans out over
    /// (default: the machine's available parallelism).
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = NonZeroUsize::new(threads.max(1));
        self
    }

    /// Validates the inputs and produces the engine. With
    /// [`IndexMode::Eager`] this also builds the CP-tree index and the
    /// core decomposition.
    pub fn build(self) -> Result<PcsEngine> {
        let graph = self.graph.ok_or(BuildError::MissingGraph)?;
        let tax = self.tax.ok_or(BuildError::MissingTaxonomy)?;
        if graph.num_vertices() != self.profiles.len() {
            return Err(BuildError::ProfileCountMismatch {
                vertices: graph.num_vertices(),
                profiles: self.profiles.len(),
            }
            .into());
        }
        for (v, p) in self.profiles.iter().enumerate() {
            let in_range = p.nodes().iter().all(|&l| (l as usize) < tax.len());
            if !in_range || !tax.is_ancestor_closed(p.nodes()) {
                return Err(BuildError::InvalidProfile { vertex: v as u32 }.into());
            }
        }
        let batch_threads = self
            .batch_threads
            .or_else(|| std::thread::available_parallelism().ok())
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let engine = PcsEngine {
            graph,
            tax,
            profiles: self.profiles,
            index_mode: self.index_mode,
            index_build_threads: self.index_build_threads.max(1),
            batch_threads,
            index: OnceLock::new(),
            cores: OnceLock::new(),
        };
        if self.index_mode == IndexMode::Eager {
            engine.warm()?;
        }
        Ok(engine)
    }
}

/// An owned, `Send + Sync` profiled-community-search engine: the
/// serving-ready facade over the paper's algorithms.
///
/// Owns the graph, taxonomy, and profiles (so it can live in server
/// state and cross threads), lazily builds and caches the CP-tree
/// index and global core decomposition, and answers
/// [`QueryRequest`]s — one at a time with [`query`](Self::query) or
/// fanned out over scoped threads with
/// [`query_batch`](Self::query_batch).
///
/// Internally each query still runs through the borrowed
/// [`QueryContext`] layer, assembled per call via
/// [`QueryContext::from_parts`] at zero recomputation cost.
pub struct PcsEngine {
    graph: Graph,
    tax: Taxonomy,
    profiles: Vec<PTree>,
    index_mode: IndexMode,
    index_build_threads: usize,
    batch_threads: usize,
    index: OnceLock<std::result::Result<CpTree, IndexError>>,
    cores: OnceLock<CoreDecomposition>,
}

impl PcsEngine {
    /// Starts a builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The host graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The GP-tree.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.tax
    }

    /// The per-vertex P-trees.
    pub fn profiles(&self) -> &[PTree] {
        &self.profiles
    }

    /// The configured index policy.
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    /// The CP-tree index, if it has been built already. Never triggers
    /// construction.
    pub fn index(&self) -> Option<&CpTree> {
        self.index.get().and_then(|r| r.as_ref().ok())
    }

    /// Forces construction of the index (policy permitting) and the
    /// core decomposition, so the first query pays no warm-up cost.
    /// Idempotent; cheap once everything is cached.
    pub fn warm(&self) -> Result<()> {
        self.cores();
        if self.index_mode != IndexMode::Disabled {
            self.ensure_index()?;
        }
        Ok(())
    }

    fn cores(&self) -> &CoreDecomposition {
        self.cores.get_or_init(|| CoreDecomposition::new(&self.graph))
    }

    fn ensure_index(&self) -> Result<&CpTree> {
        let built = self.index.get_or_init(|| {
            CpTree::build_with_threads(
                &self.graph,
                &self.tax,
                &self.profiles,
                self.index_build_threads,
            )
        });
        built.as_ref().map_err(|e| Error::Index(e.clone()))
    }

    /// Resolves [`Algorithm::Auto`] against this engine's index
    /// policy: `AdvP` whenever an index exists or may be built lazily,
    /// `Basic` when the index is disabled.
    pub fn resolve_algorithm(&self, algorithm: Algorithm) -> Algorithm {
        algorithm.resolve(self.index_mode != IndexMode::Disabled)
    }

    /// Answers one request.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let algorithm = self.resolve_algorithm(request.requested_algorithm());
        let index = if algorithm.needs_index() {
            if self.index_mode == IndexMode::Disabled {
                return Err(Error::IndexDisabled { algorithm: algorithm.name() });
            }
            Some(self.ensure_index()?)
        } else {
            // `basic` ignores the index, but an already-built one still
            // serves P-tree restoration; never *trigger* a build for it.
            self.index()
        };
        let cores = self.cores();
        let ctx = QueryContext::from_parts(&self.graph, &self.tax, &self.profiles, index, cores)?;
        let start = Instant::now();
        let mut outcome = ctx.query(request.vertex_id(), request.degree_bound(), algorithm)?;
        let elapsed = start.elapsed();
        let total_communities = outcome.communities.len();
        if let Some(cap) = request.community_cap() {
            outcome.communities.truncate(cap);
        }
        let stats = request.wants_stats().then_some(outcome.stats);
        Ok(QueryResponse {
            outcome,
            algorithm,
            index_used: algorithm.needs_index(),
            elapsed,
            stats,
            total_communities,
        })
    }

    /// Runs `f` against the borrowed paper-layer [`QueryContext`]
    /// (sharing this engine's cached core decomposition and whatever
    /// index is already built). The bridge for algorithms that are not
    /// lifted into the request API yet — `truss_query`, the §5.3
    /// metric variants — without giving up engine ownership.
    pub fn with_context<R>(&self, f: impl FnOnce(&QueryContext<'_>) -> R) -> Result<R> {
        let ctx = QueryContext::from_parts(
            &self.graph,
            &self.tax,
            &self.profiles,
            self.index(),
            self.cores(),
        )?;
        Ok(f(&ctx))
    }

    /// Answers a batch of requests, fanning out over scoped threads
    /// (up to the builder's `batch_threads`) while preserving request
    /// order in the returned vector: `out[i]` answers `requests[i]`.
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        // Warm shared state up front so workers never race a build
        // (OnceLock would serialize them anyway; this keeps the
        // per-request timings honest).
        if requests.iter().any(|r| self.resolve_algorithm(r.requested_algorithm()).needs_index())
            && self.index_mode != IndexMode::Disabled
        {
            let _ = self.ensure_index();
        }
        self.cores();

        let threads = self.batch_threads.min(requests.len()).max(1);
        if threads == 1 {
            return requests.iter().map(|r| self.query(r)).collect();
        }
        // Workers pull the next unclaimed request from a shared
        // counter, so one expensive cluster of queries cannot strand
        // the work on a single thread the way static chunking would.
        let mut out: Vec<Option<Result<QueryResponse>>> = Vec::new();
        out.resize_with(requests.len(), || None);
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut answered = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(req) = requests.get(i) else { break };
                            answered.push((i, self.query(req)));
                        }
                        answered
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("batch worker panicked") {
                    out[i] = Some(result);
                }
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every request index was claimed by a worker"))
            .collect()
    }
}

impl std::fmt::Debug for PcsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcsEngine")
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .field("labels", &self.tax.len())
            .field("index_mode", &self.index_mode)
            .field("index_built", &self.index.get().is_some())
            .field("batch_threads", &self.batch_threads)
            .finish()
    }
}
