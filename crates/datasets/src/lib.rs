//! # pcs-datasets — synthetic profiled-graph datasets
//!
//! The paper evaluates on ACMDL, PubMed (real co-authorship networks
//! with CCS/MeSH profiles), Flickr, DBLP (hash-synthesized profiles),
//! and three Facebook ego-networks with ground-truth circles. None of
//! those dumps ship with this repository, so this crate generates
//! **calibrated substitutes**: seeded random profiled graphs matching
//! the statistics that drive algorithmic behaviour (vertex/edge counts
//! at a configurable scale, average degree `d̂`, average P-tree size
//! `P̂`, GP-tree size, planted overlapping communities with shared
//! *theme* subtrees). See DESIGN.md §3 for the substitution argument.
//!
//! * [`taxonomy`] — random GP-trees with CCS-like (1 908 labels) and
//!   MeSH-like (10 132 labels) shapes;
//! * [`gen`] — the community-structured profiled-graph generator;
//! * [`suite`] — the four paper datasets at a chosen scale (Table 2);
//! * [`ego`] — FB1–FB3 ego-network substitutes with ground-truth
//!   circles (Table 4);
//! * [`scale`] — vertex / P-tree / GP-tree percentage sub-sampling for
//!   the scalability sweeps (Figs. 13–14);
//! * [`queries`] — query-vertex sampling from the 6-core, as in the
//!   paper's setup.

//! * [`updates`] — timestamped edge/profile mutation streams for the
//!   engine's live-update path.

#![deny(unsafe_code)]

pub mod ego;
pub mod gen;
pub mod io;
pub mod queries;
pub mod scale;
pub mod suite;
pub mod taxonomy;
pub mod traffic;
pub mod updates;

pub use gen::{DatasetSpec, ProfiledDataset};
pub use io::{load_dataset, save_dataset};
pub use queries::sample_query_vertices;
pub use suite::{SuiteConfig, SuiteDataset};
pub use traffic::{serve_traffic, ServeOp, TrafficSpec, ZipfRanks};
pub use updates::{update_stream, StreamOp, TimedOp, UpdateStreamSpec};
