//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the surface the workspace's property tests use:
//! the [`proptest!`] macro with a `proptest_config` attribute,
//! [`Strategy`] with `prop_flat_map`, [`prelude::any`] for unsigned
//! integers, range and tuple strategies, [`collection::vec`],
//! [`prelude::Just`], and the `prop_assert*` macros. Cases are drawn
//! from a seeded deterministic RNG; failures report the generated
//! input but (unlike real proptest) are not shrunk.

#![deny(unsafe_code)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// A failed property: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type property bodies must return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Generates random values of an output type.
///
/// Real proptest separates strategies from value trees to support
/// shrinking; this shim only needs generation.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Transforms each generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy returned by [`prelude::any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    //! Collection strategies.

    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() { 0 } else { rng.gen_range(self.len.clone()) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop behind the [`proptest!`](crate::proptest) macro.

    use super::{SmallRng, Strategy, TestCaseResult};
    use rand::SeedableRng;

    /// Alias matching real proptest's prelude name.
    pub use Config as ProptestConfig;

    /// Runner configuration; only the case count is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Drives a property over `config.cases` generated inputs.
    pub struct TestRunner {
        config: Config,
        rng: SmallRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed (override with
        /// `PROPTEST_SEED`) so failures reproduce across runs.
        pub fn new(config: Config) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x70_72_6f_70); // "prop"
            TestRunner { config, rng: SmallRng::seed_from_u64(seed) }
        }

        /// Runs `property` on fresh inputs; panics (failing the
        /// enclosing `#[test]`) on the first unsatisfied case.
        pub fn run<S, F>(&mut self, strategy: &S, property: F)
        where
            S: Strategy,
            S::Value: std::fmt::Debug + Clone,
            F: Fn(S::Value) -> TestCaseResult,
        {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                if let Err(e) = property(input.clone()) {
                    panic!(
                        "property failed at case {case}/{}: {e}\ninput: {input:?}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

/// Canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, AnyStrategy, Just, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs over `proptest_config`-many generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
