//! The HTTP follower: a read-only replica that tails a primary's WAL
//! over the `/wal` route.
//!
//! Replication topology:
//!
//! ```text
//!   primary (durable PcsEngine behind PcsServer)
//!      │  GET /wal?from=<follower epoch>&max=<bytes>
//!      ▼
//!   HttpFollower ── apply_wal_frames ──▶ local PcsEngine (in memory)
//! ```
//!
//! The follower is seeded from a snapshot of the primary (shipped out
//! of band — `PcsEngine::save` / `EngineBuilder::load`), then polls
//! `/wal` with its own epoch as the resume point. Each response is a
//! run of raw WAL frames for durable epochs strictly after `from`;
//! [`PcsEngine::apply_wal_frames`] re-validates every frame (length,
//! checksum, epoch continuity) before applying, so a damaged or
//! truncated transfer is a typed error and the replica stays on its
//! last consistent epoch — exactly the crash-recovery contract, applied
//! to the network.
//!
//! Consistency contract: after a [`poll`](HttpFollower::poll) that
//! returns without error and applies zero epochs, the follower has
//! every epoch the primary had *fsynced* when the request was served.
//! The follower never sees an unsynced (and therefore possibly
//! lost-on-crash) epoch, so a primary crash can only make the follower
//! *wait*, never rewind.
//!
//! If the primary answers `410 Gone`, the requested epochs were
//! reclaimed by a checkpoint — the log no longer reaches back to the
//! follower's epoch. That is [`ReplicaError::SnapshotGap`]: the caller
//! re-seeds from a fresh snapshot and resumes tailing.

use pcs_engine::PcsEngine;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a replication poll failed. Every variant leaves the follower's
/// engine on a consistent epoch — a failed poll is always retryable
/// (after re-seeding, for [`SnapshotGap`](ReplicaError::SnapshotGap)).
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplicaError {
    /// The transport failed (connect, write, read, or timeout).
    Io(io::Error),
    /// The primary's response could not be parsed as HTTP.
    Malformed(&'static str),
    /// `410 Gone`: the primary reclaimed the requested epochs — the
    /// follower must re-seed from a newer snapshot.
    SnapshotGap {
        /// The primary's error body.
        detail: String,
    },
    /// Any other non-200 status.
    Status {
        /// The HTTP status.
        status: u16,
        /// The response body (JSON error from the primary).
        detail: String,
    },
    /// The frames arrived but failed validation or application —
    /// damaged in transit, or epoch-discontinuous.
    Engine(pcs_engine::Error),
    /// A re-seed snapshot is older than the epoch the replica already
    /// serves; applying it would rewind reads. The follower keeps its
    /// current engine.
    StaleSeed {
        /// Epoch of the offered snapshot.
        snapshot_epoch: u64,
        /// Epoch the replica currently serves.
        follower_epoch: u64,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Io(e) => write!(f, "replication transport failed: {e}"),
            ReplicaError::Malformed(what) => {
                write!(f, "primary sent an unparsable response: {what}")
            }
            ReplicaError::SnapshotGap { detail } => write!(
                f,
                "primary reclaimed the requested wal epochs (re-seed from a snapshot): {detail}"
            ),
            ReplicaError::Status { status, detail } => {
                write!(f, "primary answered {status}: {detail}")
            }
            ReplicaError::Engine(e) => write!(f, "replication stream rejected: {e}"),
            ReplicaError::StaleSeed { snapshot_epoch, follower_epoch } => write!(
                f,
                "re-seed snapshot is at epoch {snapshot_epoch} but the replica already \
                 serves epoch {follower_epoch} — refusing to rewind"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Io(e) => Some(e),
            ReplicaError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReplicaError {
    fn from(e: io::Error) -> Self {
        ReplicaError::Io(e)
    }
}

impl From<pcs_engine::Error> for ReplicaError {
    fn from(e: pcs_engine::Error) -> Self {
        ReplicaError::Engine(e)
    }
}

/// Follower tunables.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Per-request byte budget passed as `max=` (the server clamps it
    /// to its own ceiling regardless).
    pub max_bytes: u64,
    /// Socket read timeout per response.
    pub read_timeout: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig { max_bytes: 1 << 20, read_timeout: Duration::from_secs(5) }
    }
}

/// A WAL-tailing replica over HTTP. Owns its engine; queries against
/// it are ordinary [`PcsEngine`] queries at the replicated epoch.
pub struct HttpFollower {
    engine: PcsEngine,
    primary: SocketAddr,
    cfg: ReplicaConfig,
    /// Kept-alive connection to the primary; dropped and redialed on
    /// any transport error.
    stream: Option<TcpStream>,
}

impl HttpFollower {
    /// Wraps an engine (seeded from a snapshot of the primary) as a
    /// follower of `primary`.
    pub fn new(engine: PcsEngine, primary: SocketAddr, cfg: ReplicaConfig) -> HttpFollower {
        HttpFollower { engine, primary, cfg, stream: None }
    }

    /// The local engine, for serving reads at the replicated epoch.
    pub fn engine(&self) -> &PcsEngine {
        &self.engine
    }

    /// The follower's current epoch.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Polls the primary until caught up with its durable epoch (as of
    /// the final request). Returns the number of epochs applied.
    pub fn poll(&mut self) -> Result<usize, ReplicaError> {
        let mut applied = 0usize;
        loop {
            let from = self.engine.epoch();
            let (status, body) = self.fetch(from)?;
            match status {
                200 => {}
                410 => {
                    return Err(ReplicaError::SnapshotGap {
                        detail: String::from_utf8_lossy(&body).into_owned(),
                    });
                }
                other => {
                    return Err(ReplicaError::Status {
                        status: other,
                        detail: String::from_utf8_lossy(&body).into_owned(),
                    });
                }
            }
            if body.is_empty() {
                return Ok(applied); // caught up
            }
            let got = self.engine.apply_wal_frames(&body)?;
            applied += got;
            if got == 0 {
                // Defensive: a non-empty response whose epochs we
                // already hold must not spin the loop.
                return Ok(applied);
            }
        }
    }

    /// Re-seeds the replica in place from a checkpoint snapshot file
    /// (shipped out of band after a
    /// [`SnapshotGap`](ReplicaError::SnapshotGap)). The snapshot is
    /// loaded **lazily** — structure only; the graph and profiles
    /// fault in on the replica's next query — so a re-seed stays cheap
    /// even against a scale-1.0 snapshot. A snapshot older than the
    /// epoch already served is refused
    /// ([`StaleSeed`](ReplicaError::StaleSeed)): a follower never
    /// rewinds. Returns the re-seeded epoch; call
    /// [`poll`](Self::poll) afterwards to catch up the WAL tail.
    pub fn reseed_from_snapshot(
        &mut self,
        snapshot: impl AsRef<std::path::Path>,
    ) -> Result<u64, ReplicaError> {
        let engine = pcs_engine::PcsEngine::builder()
            .index_mode(pcs_engine::IndexMode::Lazy)
            .load(snapshot.as_ref())
            .map_err(ReplicaError::Engine)?;
        if engine.epoch() < self.engine.epoch() {
            return Err(ReplicaError::StaleSeed {
                snapshot_epoch: engine.epoch(),
                follower_epoch: self.engine.epoch(),
            });
        }
        self.engine = engine;
        Ok(self.engine.epoch())
    }

    /// Consumes the follower, returning the engine at its replicated
    /// epoch (e.g. to promote it after re-opening durably elsewhere).
    pub fn into_engine(self) -> PcsEngine {
        self.engine
    }

    /// One `GET /wal` exchange: returns `(status, body)`. On any
    /// transport error the cached connection is dropped so the next
    /// poll redials.
    fn fetch(&mut self, from: u64) -> Result<(u16, Vec<u8>), ReplicaError> {
        let result = self.try_fetch(from);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn try_fetch(&mut self, from: u64) -> Result<(u16, Vec<u8>), ReplicaError> {
        let stream = match self.stream.as_mut() {
            Some(stream) => stream,
            None => {
                let stream = TcpStream::connect(self.primary)?;
                stream.set_read_timeout(Some(self.cfg.read_timeout))?;
                stream.set_nodelay(true)?;
                self.stream.insert(stream)
            }
        };
        let request = format!(
            "GET /wal?from={from}&max={} HTTP/1.1\r\nHost: replica\r\n\
             Connection: keep-alive\r\n\r\n",
            self.cfg.max_bytes
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;
        read_http_response(stream)
    }
}

impl std::fmt::Debug for HttpFollower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpFollower")
            .field("primary", &self.primary)
            .field("epoch", &self.engine.epoch())
            .finish_non_exhaustive()
    }
}

/// Reads one HTTP/1.1 response: status line, headers (only
/// `Content-Length` is interpreted), and exactly that many body bytes.
/// The connection stays positioned at the next response.
fn read_http_response(stream: &mut TcpStream) -> Result<(u16, Vec<u8>), ReplicaError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(ReplicaError::Malformed("response head exceeds 64 KiB"));
        }
        let got = stream.read(&mut chunk)?;
        if got == 0 {
            return Err(ReplicaError::Malformed("connection closed mid-head"));
        }
        // audit:allow(no-index): `got` is the byte count this read returned, which is at most chunk.len() by the Read contract
        buf.extend_from_slice(&chunk[..got]);
    };
    // audit:allow(no-index): `head_end` is a window position from the loop above, so strictly less than buf.len()
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReplicaError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(ReplicaError::Malformed("missing status code"))?;
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value.trim().parse().map_err(|_| ReplicaError::Malformed("bad Content-Length"))?,
            );
        }
    }
    let content_length = content_length.ok_or(ReplicaError::Malformed("missing Content-Length"))?;
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let got = stream.read(&mut chunk)?;
        if got == 0 {
            return Err(ReplicaError::Malformed("connection closed mid-body"));
        }
        // audit:allow(no-index): `got` is the byte count this read returned, which is at most chunk.len() by the Read contract
        body.extend_from_slice(&chunk[..got]);
    }
    if body.len() != content_length {
        return Err(ReplicaError::Malformed("body overran Content-Length"));
    }
    Ok((status, body))
}
