//! The per-query search space: candidate subtrees of `T(q)`.
//!
//! Every PCS algorithm explores the lattice of induced rooted subtrees
//! of the query vertex's P-tree. [`QuerySpace`] freezes `T(q)` into DFS
//! preorder positions; a candidate [`Subtree`] is then a fixed-width
//! bitset over those positions. A bitset is a *valid* subtree iff it is
//! downward-closed (every set bit's parent bit is set, except the root
//! at position 0).
//!
//! Three move generators drive the algorithms:
//!
//! * [`QuerySpace::rightmost_extensions`] — the non-redundant generation
//!   rule of Asai et al. used by `basic`/`incre`: add a node whose
//!   preorder position exceeds every current position and whose parent
//!   is present. Every subtree is generated exactly once (it is reached
//!   only from its preorder-prefix chain).
//! * [`QuerySpace::lattice_children`] — all one-node supersets (MARGIN's
//!   "child" direction).
//! * [`QuerySpace::lattice_parents`] — all one-node subsets, i.e. remove
//!   a leaf (MARGIN's "parent" direction).

use pcs_graph::FxHashMap;

use crate::ptree::PTree;
use crate::taxonomy::{LabelId, Taxonomy};
use crate::{PTreeError, Result};

/// A candidate subtree of one query's `T(q)`, as a fixed-width bitset
/// over DFS preorder positions. Position 0 is the taxonomy root.
///
/// All `Subtree`s produced by the same [`QuerySpace`] share a word
/// width, so `Eq`/`Hash`/`Ord` behave set-wise.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subtree {
    words: Box<[u64]>,
}

impl Subtree {
    fn zeroed(words: usize) -> Self {
        Subtree { words: vec![0; words].into_boxed_slice() }
    }

    /// Wraps a raw word image (used by the [`crate::SubtreeInterner`]
    /// to hand interned subtrees back out).
    pub(crate) fn from_words(words: Box<[u64]>) -> Self {
        Subtree { words }
    }

    /// The raw bitset words, least-significant position first. All
    /// `Subtree`s of one [`QuerySpace`] share a width, so word images
    /// compare and intersect directly.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Adds `pos` in place (the allocation-free sibling of
    /// [`Subtree::with`], for building masks incrementally).
    #[inline]
    pub fn insert(&mut self, pos: u32) {
        self.words[pos as usize / 64] |= 1 << (pos as usize % 64);
    }

    /// Number of nodes in the subtree (lattice level).
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True for the empty tree (lattice bottom).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership of a DFS position.
    #[inline]
    pub fn contains(&self, pos: u32) -> bool {
        let (w, b) = (pos as usize / 64, pos as usize % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// A copy with `pos` added.
    #[must_use]
    pub fn with(&self, pos: u32) -> Subtree {
        let mut s = self.clone();
        s.words[pos as usize / 64] |= 1 << (pos as usize % 64);
        s
    }

    /// A copy with `pos` removed.
    #[must_use]
    pub fn without(&self, pos: u32) -> Subtree {
        let mut s = self.clone();
        s.words[pos as usize / 64] &= !(1 << (pos as usize % 64));
        s
    }

    /// Subset test (`self ⊆ other`).
    pub fn is_subset_of(&self, other: &Subtree) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(a, b)| a & !b == 0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(&self, other: &Subtree) -> Subtree {
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a & b)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Subtree { words }
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &Subtree) -> Subtree {
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a | b)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Subtree { words }
    }

    /// Largest set position, if any.
    pub fn max_pos(&self) -> Option<u32> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some((wi * 64 + 63 - w.leading_zeros() as usize) as u32);
            }
        }
        None
    }

    /// Iterates set positions in increasing order.
    pub fn positions(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }
}

/// The frozen search space for one query: `T(q)` in DFS preorder.
#[derive(Clone, Debug)]
pub struct QuerySpace {
    labels: Vec<LabelId>,
    parent_pos: Vec<u32>,
    children_pos: Vec<Vec<u32>>,
    depth: Vec<u32>,
    pos_of: FxHashMap<LabelId, u32>,
    words: usize,
}

impl QuerySpace {
    /// Freezes `tq` (which must be a P-tree over `tax`) into a search
    /// space. Positions follow a DFS preorder of `tq` under the
    /// taxonomy's child ordering, so parents precede children.
    pub fn new(tax: &Taxonomy, tq: &PTree) -> Result<Self> {
        for &id in tq.nodes() {
            if id as usize >= tax.len() {
                return Err(PTreeError::UnknownLabel(id));
            }
        }
        let mut labels = Vec::with_capacity(tq.len());
        let mut parent_pos = Vec::with_capacity(tq.len());
        let mut children_pos: Vec<Vec<u32>> = Vec::with_capacity(tq.len());
        let mut depth = Vec::with_capacity(tq.len());
        let mut pos_of = FxHashMap::default();
        // Iterative DFS preorder; taxonomy children are visited in
        // reverse so the stack pops them in ascending-id order.
        let mut stack: Vec<(LabelId, u32)> = vec![(Taxonomy::ROOT, 0)];
        while let Some((id, par)) = stack.pop() {
            let pos = labels.len() as u32;
            labels.push(id);
            parent_pos.push(if pos == 0 { 0 } else { par });
            children_pos.push(Vec::new());
            depth.push(tax.depth(id));
            if pos != 0 {
                children_pos[par as usize].push(pos);
            }
            pos_of.insert(id, pos);
            for &c in tax.children(id).iter().rev() {
                if tq.contains(c) {
                    stack.push((c, pos));
                }
            }
        }
        debug_assert_eq!(labels.len(), tq.len());
        let words = labels.len().div_ceil(64).max(1);
        Ok(QuerySpace { labels, parent_pos, children_pos, depth, pos_of, words })
    }

    /// Number of nodes in `T(q)`.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// A query space is never empty (it contains at least the root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Taxonomy label at a DFS position.
    #[inline]
    pub fn label_at(&self, pos: u32) -> LabelId {
        self.labels[pos as usize]
    }

    /// DFS position of a taxonomy label, if it is part of `T(q)`.
    pub fn position_of(&self, label: LabelId) -> Option<u32> {
        self.pos_of.get(&label).copied()
    }

    /// DFS position of `pos`'s parent (0 maps to itself).
    #[inline]
    pub fn parent_of(&self, pos: u32) -> u32 {
        self.parent_pos[pos as usize]
    }

    /// Children positions of `pos` in ascending DFS order.
    #[inline]
    pub fn children_of(&self, pos: u32) -> &[u32] {
        &self.children_pos[pos as usize]
    }

    /// Taxonomy depth of the label at `pos`.
    #[inline]
    pub fn depth_of(&self, pos: u32) -> u32 {
        self.depth[pos as usize]
    }

    /// The empty candidate (lattice bottom).
    pub fn empty(&self) -> Subtree {
        Subtree::zeroed(self.words)
    }

    /// The single-node candidate containing only the root.
    pub fn root_only(&self) -> Subtree {
        self.empty().with(0)
    }

    /// The full candidate `T(q)` itself (lattice top).
    pub fn full(&self) -> Subtree {
        let mut s = self.empty();
        for p in 0..self.len() as u32 {
            s = s.with(p);
        }
        s
    }

    /// True when `s` is downward-closed (a legal induced rooted subtree,
    /// or the empty tree).
    pub fn is_valid(&self, s: &Subtree) -> bool {
        s.positions().all(|p| p == 0 || s.contains(self.parent_of(p)))
    }

    /// Non-redundant rightmost-path extensions (Asai et al.): positions
    /// `p` greater than every position in `s` whose parent is in `s`.
    /// For the empty tree the only extension is the root. Each subtree
    /// of `T(q)` is generated exactly once along the chain of its
    /// preorder prefixes.
    pub fn rightmost_extensions(&self, s: &Subtree) -> Vec<u32> {
        if s.is_empty() {
            return vec![0];
        }
        let lo = s.max_pos().unwrap() + 1;
        (lo..self.len() as u32).filter(|&p| s.contains(self.parent_of(p))).collect()
    }

    /// All lattice children: positions addable while keeping closure
    /// (MARGIN's one-step supersets).
    pub fn lattice_children(&self, s: &Subtree) -> Vec<u32> {
        if s.is_empty() {
            return vec![0];
        }
        (1..self.len() as u32)
            .filter(|&p| !s.contains(p) && s.contains(self.parent_of(p)))
            .collect()
    }

    /// All lattice parents: removable positions = leaves of `s` (nodes
    /// with no child inside `s`). Removing the root is only possible
    /// when it is alone (yielding the empty tree).
    pub fn lattice_parents(&self, s: &Subtree) -> Vec<u32> {
        self.leaves(s).into_iter().filter(|&p| p != 0 || s.count() == 1).collect()
    }

    /// Leaves of `s`: members with no member child.
    pub fn leaves(&self, s: &Subtree) -> Vec<u32> {
        s.positions()
            .filter(|&p| self.children_pos[p as usize].iter().all(|&c| !s.contains(c)))
            .collect()
    }

    /// Materializes a candidate as a [`PTree`] (panics if `s` is the
    /// empty tree — use [`QuerySpace::is_valid`] + emptiness checks
    /// first; the empty tree is not a P-tree).
    pub fn to_ptree(&self, s: &Subtree) -> PTree {
        assert!(!s.is_empty(), "the empty candidate is not a P-tree");
        debug_assert!(self.is_valid(s));
        let mut nodes: Vec<LabelId> = s.positions().map(|p| self.label_at(p)).collect();
        nodes.sort_unstable();
        PTree::from_closed_sorted_unchecked(nodes)
    }

    /// Converts a P-tree into a candidate, if all its labels appear in
    /// `T(q)`.
    pub fn from_ptree(&self, p: &PTree) -> Option<Subtree> {
        let mut s = self.empty();
        for &id in p.nodes() {
            s = s.with(self.position_of(id)?);
        }
        Some(s)
    }

    /// Upward closure: the smallest valid subtree containing `positions`.
    pub fn closure<I: IntoIterator<Item = u32>>(&self, positions: I) -> Subtree {
        let mut s = self.empty();
        for p in positions {
            let mut cur = p;
            loop {
                s = s.with(cur);
                if cur == 0 {
                    break;
                }
                cur = self.parent_of(cur);
            }
        }
        s
    }

    /// The path-subtree from the root down to `pos` (inclusive) — used
    /// by `find-P`'s per-path verification.
    pub fn path_to(&self, pos: u32) -> Subtree {
        self.closure([pos])
    }
}

impl PTree {
    /// Internal constructor used by [`QuerySpace::to_ptree`]: the input
    /// is sorted and closed by construction.
    pub(crate) fn from_closed_sorted_unchecked(nodes: Vec<LabelId>) -> PTree {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        // SAFETY-like invariant: callers guarantee ancestor closure.
        // PTree fields are private to this crate, so go through a
        // crate-private path.
        PTree::new_unchecked(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r -> {a, b}; a -> {c, d}; b -> {e}.  Preorder: r a c d b e.
    fn space() -> (Taxonomy, QuerySpace) {
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let c = t.add_child(a, "c").unwrap();
        let d = t.add_child(a, "d").unwrap();
        let e = t.add_child(b, "e").unwrap();
        let tq = PTree::from_labels(&t, [c, d, e]).unwrap();
        let qs = QuerySpace::new(&t, &tq).unwrap();
        (t, qs)
    }

    #[test]
    fn preorder_layout() {
        let (t, qs) = space();
        let names: Vec<&str> = (0..qs.len() as u32).map(|p| t.label(qs.label_at(p))).collect();
        assert_eq!(names, vec!["r", "a", "c", "d", "b", "e"]);
        assert_eq!(qs.parent_of(0), 0);
        assert_eq!(qs.parent_of(2), 1);
        assert_eq!(qs.parent_of(4), 0);
        assert_eq!(qs.parent_of(5), 4);
        assert_eq!(qs.children_of(1), &[2, 3]);
        assert_eq!(qs.depth_of(0), 0);
        assert_eq!(qs.depth_of(5), 2);
    }

    #[test]
    fn subtree_bit_ops() {
        let (_, qs) = space();
        let s = qs.root_only().with(1).with(2);
        assert_eq!(s.count(), 3);
        assert!(s.contains(2) && !s.contains(3));
        assert_eq!(s.max_pos(), Some(2));
        assert_eq!(s.positions().collect::<Vec<_>>(), vec![0, 1, 2]);
        let t = s.without(2);
        assert!(t.is_subset_of(&s));
        assert!(!s.is_subset_of(&t));
        assert_eq!(s.intersect(&t), t);
        assert_eq!(s.union(&t), s);
        assert!(qs.empty().is_empty());
        assert_eq!(qs.full().count(), 6);
    }

    #[test]
    fn validity_is_downward_closure() {
        let (_, qs) = space();
        assert!(qs.is_valid(&qs.empty()));
        assert!(qs.is_valid(&qs.root_only()));
        assert!(qs.is_valid(&qs.root_only().with(1).with(3)));
        // c without a is invalid.
        assert!(!qs.is_valid(&qs.root_only().with(2)));
        // a without r is invalid.
        assert!(!qs.is_valid(&qs.empty().with(1)));
    }

    #[test]
    fn rightmost_extensions_are_nonredundant_and_complete() {
        let (_, qs) = space();
        // Generate everything reachable via rightmost extension.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![qs.empty()];
        while let Some(s) = stack.pop() {
            for p in qs.rightmost_extensions(&s) {
                let child = s.with(p);
                assert!(qs.is_valid(&child), "invalid candidate generated");
                assert!(seen.insert(child.clone()), "duplicate candidate {child:?}");
                stack.push(child);
            }
        }
        // Count all valid non-empty subtrees by brute force.
        let mut brute = 0;
        for mask in 1u32..(1 << 6) {
            let mut s = qs.empty();
            for p in 0..6 {
                if mask & (1 << p) != 0 {
                    s = s.with(p);
                }
            }
            if qs.is_valid(&s) {
                brute += 1;
            }
        }
        assert_eq!(seen.len(), brute);
    }

    #[test]
    fn lattice_moves() {
        let (_, qs) = space();
        let s = qs.root_only().with(1); // {r, a}
        let kids = qs.lattice_children(&s);
        assert_eq!(kids, vec![2, 3, 4]); // c, d, b
        let parents = qs.lattice_parents(&s);
        assert_eq!(parents, vec![1]); // only `a` removable
        assert_eq!(qs.lattice_parents(&qs.root_only()), vec![0]);
        assert_eq!(qs.lattice_children(&qs.empty()), vec![0]);
        assert!(qs.lattice_children(&qs.full()).is_empty());
    }

    #[test]
    fn leaves_of_candidate() {
        let (_, qs) = space();
        let s = qs.root_only().with(1).with(2).with(4); // r a c b
        let mut leaves = qs.leaves(&s);
        leaves.sort_unstable();
        assert_eq!(leaves, vec![2, 4]);
    }

    #[test]
    fn ptree_roundtrip() {
        let (t, qs) = space();
        let s = qs.closure([2, 5]); // c and e with ancestors
        let p = qs.to_ptree(&s);
        assert!(t.is_ancestor_closed(p.nodes()));
        assert_eq!(qs.from_ptree(&p).unwrap(), s);
        // A P-tree outside T(q) yields None.
        let mut t2 = t.clone();
        let z = t2.add_child(0, "z").unwrap();
        let foreign = PTree::from_labels(&t2, [z]).unwrap();
        assert!(qs.from_ptree(&foreign).is_none());
    }

    #[test]
    fn path_to_builds_root_paths() {
        let (t, qs) = space();
        let path = qs.path_to(5); // e -> b -> r
        let labels: Vec<&str> = path.positions().map(|p| t.label(qs.label_at(p))).collect();
        assert_eq!(labels, vec!["r", "b", "e"]);
    }

    #[test]
    #[should_panic(expected = "empty candidate")]
    fn empty_to_ptree_panics() {
        let (_, qs) = space();
        qs.to_ptree(&qs.empty());
    }
}
