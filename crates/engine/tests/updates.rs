//! Integration tests for the update subsystem: batch semantics, epoch
//! snapshots, validation atomicity, and index maintenance policies.

use pcs_core::Algorithm;
use pcs_engine::{
    Error, IndexMaintenance, IndexMode, PcsEngine, QueryRequest, UpdateBatch, UpdateError,
};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};

/// Two triangles sharing vertex 0 (labels `a` and `b`), plus an
/// isolated vertex 5 for edge growth.
fn fixture() -> (Graph, Taxonomy, Vec<PTree>) {
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(Taxonomy::ROOT, "b").unwrap();
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)]).unwrap();
    let profiles = vec![
        PTree::from_labels(&tax, [a, b]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
    ];
    (g, tax, profiles)
}

fn engine_with(mode: IndexMode) -> PcsEngine {
    let (g, tax, profiles) = fixture();
    PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).index_mode(mode).build().unwrap()
}

#[test]
fn add_edge_changes_answers_and_bumps_epoch() {
    let engine = engine_with(IndexMode::Eager);
    assert_eq!(engine.epoch(), 0);
    // Vertex 5 is isolated: no community at k=2.
    let before = engine.query(&QueryRequest::vertex(5).k(2)).unwrap();
    assert!(before.communities().is_empty());
    assert_eq!(before.epoch, 0);
    // Wire 5 into the `a` triangle.
    let report = engine.apply(&UpdateBatch::new().add_edge(5, 1).add_edge(5, 2)).unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(report.edges_added, 2);
    assert_eq!(report.noops, 0);
    assert!(report.changed());
    assert!(report.cores_changed > 0, "5 joins the 2-core");
    assert_eq!(engine.epoch(), 1);
    let after = engine.query(&QueryRequest::vertex(5).k(2)).unwrap();
    assert_eq!(after.epoch, 1);
    assert_eq!(after.communities().len(), 1);
    // The whole `a`-labelled 2-core: triangle {0,1,2} plus the newcomer.
    assert_eq!(after.communities()[0].vertices, vec![0, 1, 2, 5]);
}

#[test]
fn old_snapshots_keep_answering_the_old_graph() {
    let engine = engine_with(IndexMode::Eager);
    let old = engine.snapshot();
    engine.add_edge(5, 1).unwrap();
    engine.add_edge(5, 2).unwrap();
    // The pinned snapshot still shows the pre-update graph...
    assert_eq!(old.epoch(), 0);
    assert_eq!(old.graph().num_edges(), 6);
    assert!(!old.graph().has_edge(5, 1));
    // ...while the engine serves the new epoch.
    let now = engine.snapshot();
    assert_eq!(now.epoch(), 2);
    assert!(now.graph().has_edge(5, 1));
    assert_eq!(now.cores().core_number(5), 2);
}

#[test]
fn noop_batch_publishes_nothing() {
    let engine = engine_with(IndexMode::Eager);
    let report = engine
        .apply(&UpdateBatch::new().add_edge(0, 1).remove_edge(2, 4)) // both no-ops
        .unwrap();
    assert_eq!(report.epoch, 0, "epoch unchanged");
    assert_eq!(report.noops, 2);
    assert!(!report.changed());
    assert_eq!(report.index, IndexMaintenance::Unchanged);
    assert_eq!(engine.epoch(), 0);
}

#[test]
fn profile_rewrite_to_identical_value_is_a_noop() {
    let engine = engine_with(IndexMode::Eager);
    let (_, tax, profiles) = fixture();
    let report = engine.update_profile(1, profiles[1].clone()).unwrap();
    assert_eq!(report.noops, 1);
    assert_eq!(report.profiles_changed, 0);
    assert_eq!(engine.epoch(), 0);
    // A sequence of writes that ends where it started is also a no-op.
    let a_only = profiles[1].clone();
    let b_only = PTree::from_labels(&tax, [tax.id_of("b").unwrap()]).unwrap();
    let report =
        engine.apply(&UpdateBatch::new().set_profile(1, b_only).set_profile(1, a_only)).unwrap();
    assert_eq!(report.profiles_changed, 0);
    assert_eq!(engine.epoch(), 0);
}

#[test]
fn profile_update_retargets_communities() {
    let engine = engine_with(IndexMode::Eager);
    let tax = engine.taxonomy().clone();
    let b = tax.id_of("b").unwrap();
    // Re-profile vertex 1 from `a` to `b`: the a-triangle loses its
    // shared theme below the root.
    let report = engine.update_profile(1, PTree::from_labels(&tax, [b]).unwrap()).unwrap();
    assert_eq!(report.profiles_changed, 1);
    let resp = engine.query(&QueryRequest::vertex(1).k(2)).unwrap();
    // 1's communities now carry either the root-only theme or b-themes;
    // none may claim `a`.
    let a = tax.id_of("a").unwrap();
    assert!(resp.communities().iter().all(|c| !c.subtree.contains(a)));
}

#[test]
fn rejected_batches_leave_the_engine_untouched() {
    let engine = engine_with(IndexMode::Eager);
    let baseline = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    // Valid first op, invalid second: the whole batch must bounce.
    let err = engine.apply(&UpdateBatch::new().add_edge(5, 1).add_edge(0, 99)).unwrap_err();
    assert!(matches!(err, Error::Update(UpdateError::VertexOutOfRange { vertex: 99, n: 6 })));
    assert_eq!(engine.epoch(), 0, "nothing was applied");
    assert!(!engine.snapshot().graph().has_edge(5, 1), "batch rejected atomically");
    let after = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert_eq!(baseline.outcome.communities, after.outcome.communities);

    let err = engine.add_edge(2, 2).unwrap_err();
    assert!(matches!(err, Error::Update(UpdateError::SelfLoop { vertex: 2 })));
    // Removing a self-loop names an edge that cannot exist: a counted
    // no-op like any other absent removal, never an error.
    let report = engine.remove_edge(2, 2).unwrap();
    assert_eq!(report.noops, 1);
    assert!(!report.changed());

    // A profile minted against a foreign taxonomy is rejected.
    let mut bigger = engine.taxonomy().clone();
    let alien = bigger.add_child(Taxonomy::ROOT, "alien").unwrap();
    let err = engine.update_profile(1, PTree::from_labels(&bigger, [alien]).unwrap()).unwrap_err();
    assert!(matches!(err, Error::Update(UpdateError::InvalidProfile { vertex: 1 })));
    assert_eq!(engine.epoch(), 0);
}

#[test]
fn eager_engine_patches_incrementally_on_small_deltas() {
    let engine = engine_with(IndexMode::Eager);
    let report = engine.add_edge(5, 1).unwrap();
    match report.index {
        IndexMaintenance::Patched(stats) => {
            assert!(stats.labels_touched >= 1);
            assert_eq!(stats.labels_rebuilt + stats.labels_skipped, stats.labels_touched);
        }
        other => panic!("expected incremental patch, got {other:?}"),
    }
    assert!(engine.index_built());
}

#[test]
fn redundant_edge_inside_a_community_is_skipped_entirely() {
    // 4-cycle of `a`-vertices: the diagonal changes no cores and merges
    // no ĉores, so every touched label reports skipped.
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    let profiles: Vec<PTree> = (0..4).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect();
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let report = engine.add_edge(0, 2).unwrap();
    match report.index {
        IndexMaintenance::Patched(stats) => {
            assert_eq!(stats.labels_skipped, 2, "root and `a` both provably unchanged");
            assert_eq!(stats.labels_rebuilt, 0);
        }
        other => panic!("expected incremental patch, got {other:?}"),
    }
}

#[test]
fn oversized_deltas_fall_back_per_policy() {
    // Taxonomy with 8 leaf labels; rewriting a profile from nothing to
    // everything touches all of them at once, blowing the cap-0 budget.
    let mut tax = Taxonomy::new("r");
    let leaves: Vec<_> =
        (0..8).map(|i| tax.add_child(Taxonomy::ROOT, &format!("l{i}")).unwrap()).collect();
    let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let profiles: Vec<PTree> =
        (0..3).map(|_| PTree::from_labels(&tax, leaves.iter().copied()).unwrap()).collect();
    let full = PTree::from_labels(&tax, leaves.iter().copied()).unwrap();

    // Eager: synchronous rebuild.
    let eager = PcsEngine::builder()
        .graph(g.clone())
        .taxonomy(tax.clone())
        .profiles(profiles.clone())
        .index_mode(IndexMode::Eager)
        .incremental_patch_cap(0.0)
        .build()
        .unwrap();
    let report = eager.update_profile(0, PTree::root_only()).unwrap();
    assert_eq!(report.index, IndexMaintenance::Rebuilt);
    assert!(eager.index_built());

    // Lazy with a built index: dropped, rebuilt on next demand.
    let lazy = PcsEngine::builder()
        .graph(g.clone())
        .taxonomy(tax.clone())
        .profiles(profiles.clone())
        .index_mode(IndexMode::Lazy)
        .incremental_patch_cap(0.0)
        .build()
        .unwrap();
    lazy.warm().unwrap();
    assert!(lazy.index_built());
    let report = lazy.update_profile(0, PTree::root_only()).unwrap();
    assert_eq!(report.index, IndexMaintenance::Deferred);
    assert!(!lazy.index_built());
    // The next index query rebuilds transparently and answers correctly.
    let resp = lazy.query(&QueryRequest::vertex(1).k(2).algorithm(Algorithm::AdvP)).unwrap();
    assert_eq!(resp.communities().len(), 1);
    assert!(lazy.index_built());
    // Restoring the full profile goes back through the update path.
    let report = lazy.update_profile(0, full).unwrap();
    assert!(matches!(report.index, IndexMaintenance::Deferred | IndexMaintenance::Patched(_)));

    // Lazy with no index yet: stays unbuilt.
    let cold = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Lazy)
        .build()
        .unwrap();
    let report = cold.add_edge(0, 1); // duplicate -> noop, no publish
    assert_eq!(report.unwrap().index, IndexMaintenance::Unchanged);
    let report = cold.remove_edge(0, 1).unwrap();
    assert_eq!(report.index, IndexMaintenance::NotBuilt);
    assert!(!cold.index_built());
}

#[test]
fn disabled_engine_still_updates() {
    let engine = engine_with(IndexMode::Disabled);
    let report = engine.apply(&UpdateBatch::new().add_edge(5, 1).add_edge(5, 2)).unwrap();
    assert_eq!(report.index, IndexMaintenance::Disabled);
    let resp = engine.query(&QueryRequest::vertex(5).k(2)).unwrap();
    assert_eq!(resp.algorithm, Algorithm::Basic);
    assert_eq!(resp.communities().len(), 1);
}

#[test]
fn updated_engine_agrees_across_all_algorithms() {
    let engine = engine_with(IndexMode::Eager);
    engine.apply(&UpdateBatch::new().add_edge(5, 1).add_edge(5, 2).remove_edge(0, 3)).unwrap();
    for q in [0u32, 1, 5] {
        let reference =
            engine.query(&QueryRequest::vertex(q).k(2).algorithm(Algorithm::Basic)).unwrap();
        for algo in Algorithm::ALL {
            let resp = engine.query(&QueryRequest::vertex(q).k(2).algorithm(algo)).unwrap();
            assert_eq!(
                resp.outcome.communities,
                reference.outcome.communities,
                "{} disagrees after updates (q={q})",
                algo.name()
            );
        }
    }
}

#[test]
fn query_batch_runs_against_one_epoch() {
    let engine = engine_with(IndexMode::Eager);
    engine.add_edge(5, 1).unwrap();
    let requests: Vec<QueryRequest> =
        (0..6).cycle().take(30).map(|v| QueryRequest::vertex(v).k(2)).collect();
    let responses = engine.query_batch(&requests);
    let epochs: Vec<u64> = responses.iter().map(|r| r.as_ref().unwrap().epoch).collect();
    assert!(epochs.iter().all(|&e| e == epochs[0]), "one snapshot answers the whole batch");
    assert_eq!(epochs[0], 1);
}

#[test]
fn with_context_sees_the_latest_epoch() {
    let engine = engine_with(IndexMode::Eager);
    engine.apply(&UpdateBatch::new().add_edge(5, 1).add_edge(5, 2)).unwrap();
    let edges = engine.with_context(|ctx| ctx.graph.num_edges()).unwrap();
    assert_eq!(edges, 8);
}

#[test]
fn builder_rejects_malformed_graphs() {
    // Valid canonical graphs pass...
    let (g, tax, profiles) = fixture();
    assert!(PcsEngine::builder()
        .graph(g)
        .taxonomy(tax.clone())
        .profiles(profiles.clone())
        .build()
        .is_ok());
    // ...and a foreign CSR layout with a self-loop is rejected by
    // Graph::from_csr before it can ever reach an engine. (From_edges
    // canonicalizes; from_csr refuses — no silent indexing either way.)
    let err = Graph::from_csr(vec![0, 1, 1], vec![0]).unwrap_err();
    assert!(err.to_string().contains("self-loop"));
}
