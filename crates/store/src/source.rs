//! The file-backed snapshot source: positioned reads instead of
//! `fs::read`-the-world.
//!
//! [`SnapshotFile::read`](crate::SnapshotFile::read) materializes and
//! checksums the entire file even when the caller only wants the shard
//! directory. [`FileSnapshot`] is the scale-friendly alternative: it
//! validates the **container prefix** (magic, version, section table +
//! checksum, entry bounds) eagerly — a few hundred bytes — and then
//! serves each section's payload on demand with positioned
//! `read_at`-style reads (page-cache-served, no `unsafe`, no mmap).
//! A section's checksum is verified on its **first touch**, and the
//! verified payload is cached so later touches are free.
//!
//! [`FileSnapshot::read_range`] additionally serves *sub-section*
//! ranges **without** checksum verification, for v3 layouts whose
//! interior carries its own per-range checksums (`PROFILES` chunks,
//! `INDEX` member runs and shard payloads). Callers of `read_range`
//! own the validation of what they read — the typed-error discipline
//! of [`crate::codec`] still applies, the container just no longer
//! forces whole-section reads to get it.
//!
//! Every byte pulled from disk is counted in
//! [`FileSnapshot::bytes_read`]; the scale benchmarks (and the
//! lazy-load regression test) pin the claim "time-to-first-query reads
//! a small fraction of the file" against this counter.

use crate::format::{
    le_u32, le_u64, xxh64, Result, StoreError, FORMAT_VERSION, HEADER_LEN, MAGIC, MAX_SECTIONS,
    MIN_FORMAT_VERSION, SECTION_TABLE, TABLE_ENTRY_LEN,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
    sum: u64,
}

/// One memoized section load: the verified payload, or the sticky
/// typed error its first touch produced.
type SectionSlot = OnceLock<std::result::Result<Box<[u8]>, StoreError>>;

/// A snapshot served by positioned reads from an open file. See the
/// module docs for the validation split (eager prefix, per-section
/// deferred payloads).
///
/// Thread-safe: sections cache through [`OnceLock`], the byte counter
/// is atomic, and positioned reads need no seek state on Unix.
pub struct FileSnapshot {
    file: std::fs::File,
    path: PathBuf,
    file_len: u64,
    version: u32,
    entries: Vec<SectionEntry>,
    cache: Vec<SectionSlot>,
    bytes_read: AtomicU64,
}

impl FileSnapshot {
    /// Opens `path` and validates the container prefix: magic, version
    /// range, section count cap, table checksum, per-entry bounds and
    /// duplicate-id scan — everything
    /// [`SnapshotSlices::from_bytes`](crate::SnapshotSlices) checks
    /// *except* the payload checksums, which defer to first touch.
    pub fn open(path: impl AsRef<Path>) -> Result<FileSnapshot> {
        let path = path.as_ref().to_path_buf();
        let io = |op: &'static str| {
            move |e: std::io::Error| StoreError::Io { op, detail: e.to_string() }
        };
        let file = std::fs::File::open(&path).map_err(io("open"))?;
        let file_len = file.metadata().map_err(io("stat"))?.len();
        let bytes_read = AtomicU64::new(0);
        if file_len < HEADER_LEN {
            return Err(StoreError::Truncated { needed: HEADER_LEN, actual: file_len });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        read_at_into(&file, 0, &mut header, &bytes_read)?;
        let (magic, rest) = header.split_at(8);
        let (version_b, rest) = rest.split_at(4);
        let (count_b, table_sum_b) = rest.split_at(4);
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(StoreError::BadMagic { found });
        }
        let version = le_u32(version_b);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u64::from(le_u32(count_b));
        if count > MAX_SECTIONS {
            return Err(StoreError::Corrupt {
                section: SECTION_TABLE,
                detail: format!("{count} sections declared (limit {MAX_SECTIONS})"),
            });
        }
        let stored_table_sum = le_u64(table_sum_b);
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count; // cannot overflow: count < 2^32
        if table_end > file_len {
            return Err(StoreError::Truncated { needed: table_end, actual: file_len });
        }
        let mut table = vec![0u8; (TABLE_ENTRY_LEN * count) as usize];
        read_at_into(&file, HEADER_LEN, &mut table, &bytes_read)?;
        let table_sum = xxh64(&table, u64::from(version));
        if table_sum != stored_table_sum {
            return Err(StoreError::ChecksumMismatch {
                section: SECTION_TABLE,
                expected: stored_table_sum,
                actual: table_sum,
            });
        }
        let mut entries: Vec<SectionEntry> = Vec::with_capacity(count as usize);
        for entry in table.chunks_exact(TABLE_ENTRY_LEN as usize) {
            let (id_b, entry) = entry.split_at(4);
            let (_reserved, entry) = entry.split_at(4);
            let (offset_b, entry) = entry.split_at(8);
            let (len_b, sum_b) = entry.split_at(8);
            let id = le_u32(id_b);
            let offset = le_u64(offset_b);
            let len = le_u64(len_b);
            let sum = le_u64(sum_b);
            let end = offset.checked_add(len).ok_or(StoreError::SectionOverflow {
                section: id,
                offset,
                len,
                file_len,
            })?;
            if end > file_len {
                return Err(StoreError::SectionOverflow { section: id, offset, len, file_len });
            }
            if entries.iter().any(|e| e.id == id) {
                return Err(StoreError::Corrupt {
                    section: id,
                    detail: "section id appears twice".into(),
                });
            }
            entries.push(SectionEntry { id, offset, len, sum });
        }
        let cache = entries.iter().map(|_| OnceLock::new()).collect();
        Ok(FileSnapshot { file, path, file_len, version, entries, cache, bytes_read })
    }

    /// The container format version (already range-checked).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The path this snapshot was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes pulled from disk so far (header, table, sections, range
    /// reads — everything). Cache hits do not count.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Ids of all sections, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Declared payload length of section `id`, if present (available
    /// without touching the payload).
    pub fn section_len(&self, id: u32) -> Option<u64> {
        self.entries.iter().find(|e| e.id == id).map(|e| e.len)
    }

    fn slot(&self, i: usize) -> Result<&SectionSlot> {
        // Entries and cache are built in lockstep; a miss here is an
        // internal invariant break, surfaced typed per module policy.
        self.cache.get(i).ok_or_else(|| StoreError::Corrupt {
            section: SECTION_TABLE,
            detail: "internal: cache slot missing".into(),
        })
    }

    /// The full payload of section `id`, if present — read, verified
    /// against its table checksum, and cached on first touch. A
    /// payload that fails its checksum (or the read itself) yields the
    /// same typed error on every touch.
    pub fn section(&self, id: u32) -> Result<Option<&[u8]>> {
        let Some(i) = self.entries.iter().position(|e| e.id == id) else {
            return Ok(None);
        };
        let Some(entry) = self.entries.get(i).copied() else {
            return Ok(None);
        };
        let slot = self.slot(i)?;
        match slot.get_or_init(|| self.load_section(entry)) {
            Ok(payload) => Ok(Some(payload)),
            Err(e) => Err(e.clone()),
        }
    }

    fn load_section(&self, e: SectionEntry) -> std::result::Result<Box<[u8]>, StoreError> {
        let len = usize::try_from(e.len).map_err(|_| StoreError::Corrupt {
            section: e.id,
            detail: "section length exceeds address space".into(),
        })?;
        let mut buf = vec![0u8; len];
        read_at_into(&self.file, e.offset, &mut buf, &self.bytes_read)?;
        let sum = xxh64(&buf, u64::from(e.id));
        if sum != e.sum {
            return Err(StoreError::ChecksumMismatch {
                section: e.id,
                expected: e.sum,
                actual: sum,
            });
        }
        Ok(buf.into_boxed_slice())
    }

    /// True once section `id`'s payload has been read and verified.
    pub fn section_resident(&self, id: u32) -> bool {
        self.entries
            .iter()
            .position(|e| e.id == id)
            .and_then(|i| self.cache.get(i))
            .and_then(|slot| slot.get())
            .is_some_and(|r| r.is_ok())
    }

    /// Reads `len` bytes at `off` **within** section `id`, without
    /// checksum verification — for v3 interiors that carry their own
    /// per-range checksums (profile chunks, member runs, shard
    /// payloads). The range is bounds-checked against the section's
    /// declared extent; a section already resident in the cache is
    /// served from memory.
    pub fn read_range(&self, id: u32, off: u64, len: u64) -> Result<Vec<u8>> {
        let Some(i) = self.entries.iter().position(|e| e.id == id) else {
            return Err(StoreError::MissingSection { section: id });
        };
        let Some(entry) = self.entries.get(i).copied() else {
            return Err(StoreError::MissingSection { section: id });
        };
        let end = off.checked_add(len).filter(|&e| e <= entry.len).ok_or_else(|| {
            StoreError::Corrupt {
                section: id,
                detail: format!("range {off}+{len} exceeds the {}-byte section", entry.len),
            }
        })?;
        let (off_us, end_us, len_us) =
            (usize::try_from(off), usize::try_from(end), usize::try_from(len));
        let (Ok(off_us), Ok(end_us), Ok(len_us)) = (off_us, end_us, len_us) else {
            return Err(StoreError::Corrupt {
                section: id,
                detail: "range exceeds address space".into(),
            });
        };
        if let Some(Ok(cached)) = self.slot(i)?.get() {
            let slice = cached.get(off_us..end_us).ok_or_else(|| StoreError::Corrupt {
                section: id,
                detail: "cached range out of bounds".into(),
            })?;
            return Ok(slice.to_vec());
        }
        let mut buf = vec![0u8; len_us];
        read_at_into(&self.file, entry.offset + off, &mut buf, &self.bytes_read)?;
        Ok(buf)
    }
}

impl std::fmt::Debug for FileSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSnapshot")
            .field("path", &self.path)
            .field("version", &self.version)
            .field("file_len", &self.file_len)
            .field("sections", &self.entries.len())
            .field("bytes_read", &self.bytes_read())
            .finish()
    }
}

/// The eager escape hatch: a [`FileSnapshot`] is a
/// [`SectionSource`](crate::SectionSource) whose `section` serves only
/// **already-resident** payloads (the trait is infallible, so errors
/// cannot surface through it). Call [`FileSnapshot::section`] — or
/// sweep every section once — before decoding through the trait; the
/// codec's `MissingSection` on a present-but-unread section means the
/// sweep was skipped.
impl crate::codec::SectionSource for FileSnapshot {
    fn section(&self, id: u32) -> Option<&[u8]> {
        self.entries
            .iter()
            .position(|e| e.id == id)
            .and_then(|i| self.cache.get(i))
            .and_then(|slot| slot.get())
            .and_then(|r| r.as_ref().ok())
            .map(|b| &**b)
    }

    fn version(&self) -> u32 {
        self.version
    }
}

/// Positioned read helper: fills `buf` from absolute file offset
/// `offset`, counting the bytes. Uses `FileExt::read_at` on Unix (no
/// shared seek cursor, safe under concurrent faults) and
/// `seek_read` on Windows.
fn read_at_into(
    file: &std::fs::File,
    offset: u64,
    buf: &mut [u8],
    counter: &AtomicU64,
) -> Result<()> {
    let res = {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt as _;
            file.read_exact_at(buf, offset)
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt as _;
            let mut done = 0usize;
            loop {
                if done >= buf.len() {
                    break Ok(());
                }
                let Some(rest) = buf.get_mut(done..) else {
                    break Ok(());
                };
                match file.seek_read(rest, offset + done as u64) {
                    Ok(0) => {
                        break Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "failed to fill whole buffer",
                        ))
                    }
                    Ok(n) => done += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => break Err(e),
                }
            }
        }
        #[cfg(not(any(unix, windows)))]
        {
            let _ = (file, offset, &mut *buf);
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "positioned reads unsupported on this platform",
            ))
        }
    };
    res.map_err(|e: std::io::Error| StoreError::Io { op: "read_at", detail: e.to_string() })?;
    counter.fetch_add(buf.len() as u64, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapshotFile;

    fn snapshot_on_disk(tag: &str) -> (PathBuf, SnapshotFile) {
        let dir = std::env::temp_dir().join(format!("pcs_source_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pcs");
        let mut f = SnapshotFile::new();
        f.push_section(1, (0u8..100).collect());
        f.push_section(2, vec![0xAB; 4096]);
        f.push_section(5, Vec::new());
        f.write(&path).unwrap();
        (path, f)
    }

    #[test]
    fn open_reads_only_the_prefix() {
        let (path, file) = snapshot_on_disk("prefix");
        let src = FileSnapshot::open(&path).unwrap();
        let prefix = HEADER_LEN + 3 * TABLE_ENTRY_LEN;
        assert_eq!(src.bytes_read(), prefix, "open reads header + table only");
        assert_eq!(src.version(), file.version());
        assert_eq!(src.section_ids(), vec![1, 2, 5]);
        assert_eq!(src.section_len(2), Some(4096));
        assert_eq!(src.section_len(9), None);
        // First touch reads + verifies exactly that section.
        assert_eq!(src.section(1).unwrap().unwrap(), file.section(1).unwrap());
        assert_eq!(src.bytes_read(), prefix + 100);
        // Second touch is a cache hit.
        assert!(src.section(1).unwrap().is_some());
        assert_eq!(src.bytes_read(), prefix + 100);
        assert!(src.section_resident(1));
        assert!(!src.section_resident(2));
        assert_eq!(src.section(9).unwrap(), None);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn deferred_checksum_catches_payload_damage_on_first_touch() {
        let (path, _file) = snapshot_on_disk("damage");
        // Flip a byte inside section 2's payload on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 2000;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let src = FileSnapshot::open(&path).unwrap(); // prefix still valid
        assert!(src.section(1).unwrap().is_some(), "undamaged section loads");
        let err = src.section(2).unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { section: 2, .. }), "{err:?}");
        // The failure is sticky and typed on every later touch.
        let again = src.section(2).unwrap_err();
        assert_eq!(err, again);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn range_reads_are_unverified_but_bounded() {
        let (path, file) = snapshot_on_disk("range");
        let src = FileSnapshot::open(&path).unwrap();
        let base = src.bytes_read();
        let range = src.read_range(1, 10, 20).unwrap();
        assert_eq!(range, file.section(1).unwrap()[10..30]);
        assert_eq!(src.bytes_read(), base + 20, "range read pulls exactly the range");
        assert!(src.read_range(1, 90, 20).is_err(), "range past the section end");
        assert!(src.read_range(9, 0, 1).is_err(), "missing section");
        // Once the section is resident, ranges come from memory.
        src.section(1).unwrap();
        let after_fault = src.bytes_read();
        assert_eq!(src.read_range(1, 0, 5).unwrap(), &file.section(1).unwrap()[..5]);
        assert_eq!(src.bytes_read(), after_fault, "cached range costs no IO");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn prefix_damage_is_caught_at_open() {
        let (path, _file) = snapshot_on_disk("prefixdmg");
        let pristine = std::fs::read(&path).unwrap();
        // Magic.
        let mut b = pristine.clone();
        b[0] ^= 0xFF;
        std::fs::write(&path, &b).unwrap();
        assert!(matches!(FileSnapshot::open(&path), Err(StoreError::BadMagic { .. })));
        // Table byte.
        let mut b = pristine.clone();
        b[HEADER_LEN as usize + 4] ^= 0x01;
        std::fs::write(&path, &b).unwrap();
        assert!(matches!(
            FileSnapshot::open(&path),
            Err(StoreError::ChecksumMismatch { section: SECTION_TABLE, .. })
        ));
        // Truncation inside the table.
        std::fs::write(&path, &pristine[..HEADER_LEN as usize + 7]).unwrap();
        assert!(matches!(FileSnapshot::open(&path), Err(StoreError::Truncated { .. })));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
