//! Concurrency stress: N reader threads issue queries while a writer
//! applies update batches. Requirements under test:
//!
//! * no panics, poisoned locks, or torn state;
//! * every response is **snapshot-consistent** — its communities equal
//!   what a from-scratch engine built for the graph/profiles of the
//!   epoch stamped on the response would return;
//! * every observed epoch is one the writer actually published.

use pcs_core::{Algorithm, QueryContext};
use pcs_engine::{EngineSnapshot, IndexMode, PcsEngine, QueryRequest, UpdateBatch};
use pcs_graph::{Graph, VertexId};
use pcs_ptree::{PTree, Taxonomy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = 10usize;
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..labels {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    let n = 36usize;
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.16) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=5usize);
            let picks: Vec<u32> = (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles)
}

/// A scripted batch of 1–3 random mutations.
fn random_batch(rng: &mut SmallRng, n: u32, tax: &Taxonomy, label_pool: &[u32]) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..rng.gen_range(1..=3) {
        match rng.gen_range(0..4) {
            0 | 1 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    batch = batch.add_edge(a, b); // may be a no-op: fine
                }
            }
            2 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    batch = batch.remove_edge(a, b);
                }
            }
            _ => {
                let v = rng.gen_range(0..n);
                let count = rng.gen_range(0..=4usize);
                let picks: Vec<u32> =
                    (0..count).map(|_| label_pool[rng.gen_range(0..label_pool.len())]).collect();
                batch = batch.set_profile(v, PTree::from_labels(tax, picks).unwrap());
            }
        }
    }
    batch
}

fn stress(mode: IndexMode, seed: u64) {
    let (g, tax, profiles) = random_instance(seed);
    let n = g.num_vertices() as u32;
    let label_pool: Vec<u32> = (0..tax.len() as u32).collect();
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax.clone())
        .profiles(profiles)
        .index_mode(mode)
        .build()
        .unwrap();
    let engine = &engine;

    // Epoch -> pinned snapshot, recorded by the writer as it publishes.
    let published: Mutex<Vec<EngineSnapshot>> = Mutex::new(vec![engine.snapshot()]);
    let done = AtomicBool::new(false);
    // (epoch, q, k, community vertex sets) per reader observation.
    type Observation = (u64, VertexId, u32, Vec<Vec<VertexId>>);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    let published_ref = &published;
    let done_ref = &done;
    let observations_ref = &observations;
    std::thread::scope(|s| {
        // Writer: 36 batches, recording each published snapshot.
        s.spawn(|| {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xa0f3);
            for _ in 0..36 {
                let batch = random_batch(&mut rng, n, &tax, &label_pool);
                let report = engine.apply(&batch).expect("scripted batches are valid");
                if report.changed() {
                    published_ref.lock().unwrap().push(engine.snapshot());
                }
            }
            done_ref.store(true, Ordering::Release);
        });
        // Readers: hammer queries until the writer finishes.
        for t in 0..4u64 {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (0x4ead + t));
                let mut local = Vec::new();
                // At least 12 queries per reader even when the writer
                // finishes first (tiny batches apply very fast), so the
                // final epoch is always observed and verified too.
                while local.len() < 12 || !done_ref.load(Ordering::Acquire) {
                    let q = rng.gen_range(0..n);
                    let k = rng.gen_range(1..3u32);
                    let resp = engine
                        .query(&QueryRequest::vertex(q).k(k))
                        .expect("in-range query never fails");
                    let comms: Vec<Vec<VertexId>> =
                        resp.communities().iter().map(|c| c.vertices.clone()).collect();
                    local.push((resp.epoch, q, k, comms));
                }
                observations_ref.lock().unwrap().extend(local);
            });
        }
    });

    // Verify: every observation matches a from-scratch reference for
    // the snapshot of its epoch.
    let published = published.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert!(!observations.is_empty(), "readers observed something");
    let find = |epoch: u64| -> &EngineSnapshot {
        published
            .iter()
            .find(|s| s.epoch() == epoch)
            .unwrap_or_else(|| panic!("epoch {epoch} was never published"))
    };
    let mut checked = 0usize;
    for (epoch, q, k, comms) in &observations {
        let snap = find(*epoch);
        let ctx = QueryContext::new(snap.graph(), &tax, snap.profiles()).unwrap();
        let reference = ctx.query(*q, *k, Algorithm::Basic).unwrap();
        let expect: Vec<Vec<VertexId>> =
            reference.communities.iter().map(|c| c.vertices.clone()).collect();
        assert_eq!(
            comms, &expect,
            "epoch {epoch} q {q} k {k}: response is not snapshot-consistent"
        );
        checked += 1;
    }
    assert!(checked >= observations.len());
}

#[test]
fn readers_stay_consistent_under_eager_updates() {
    stress(IndexMode::Eager, 41);
}

#[test]
fn readers_stay_consistent_under_lazy_updates() {
    // Lazy mode races reader-triggered index builds against writer
    // publications (Deferred drops included).
    stress(IndexMode::Lazy, 42);
}
