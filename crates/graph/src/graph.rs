//! The CSR undirected graph every PCS algorithm runs against.
//!
//! Vertices are dense `u32` ids in `0..n`. Edges are undirected, stored
//! twice (once per endpoint) in a compressed-sparse-row layout: one
//! `offsets` array of length `n + 1` and one flat `neighbors` array of
//! length `2m`, with each adjacency list sorted. Self-loops and duplicate
//! edges are removed at construction.

use crate::{GraphError, Result};

/// Dense vertex identifier.
pub type VertexId = u32;

/// An immutable undirected graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops and duplicate (including reversed-duplicate) edges are
    /// dropped. Returns [`GraphError::VertexOutOfRange`] if an endpoint
    /// is `>= n`.
    ///
    /// ```
    /// use pcs_graph::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]).unwrap();
    /// assert_eq!(g.num_edges(), 2); // duplicate and self-loop removed
    /// assert_eq!(g.neighbors(1), &[0, 2]);
    /// ```
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self> {
        for &(a, b) in edges {
            for v in [a, b] {
                if v as usize >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: v as u64, n });
                }
            }
        }
        let mut builder = GraphBuilder::new(n);
        for &(a, b) in edges {
            builder.add_edge(a, b);
        }
        Ok(builder.build())
    }

    /// Adopts prebuilt CSR arrays, validating every structural
    /// invariant first (see [`Graph::validate`]).
    ///
    /// Unlike [`Graph::from_edges`], nothing is silently canonicalized:
    /// a self-loop, duplicate edge, unsorted adjacency list, or
    /// asymmetric half-edge is rejected with
    /// [`GraphError::MalformedGraph`]. Use this when ingesting
    /// externally produced layouts (mmap'd files, wire formats) where
    /// silent repair would hide upstream corruption.
    pub fn from_csr(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Result<Self> {
        let g = Graph { offsets, neighbors };
        g.validate()?;
        Ok(g)
    }

    /// Adopts CSR arrays whose invariants are guaranteed by
    /// construction (e.g. [`crate::DynamicGraph::to_graph`]).
    pub(crate) fn from_csr_unchecked(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        let g = Graph { offsets, neighbors };
        debug_assert!(g.validate().is_ok(), "from_csr_unchecked received a malformed layout");
        g
    }

    /// Test-only corruption hook: adopts CSR arrays with **no**
    /// validation and no debug assertion, so the `debug-invariants`
    /// mutation tests can seed deliberately malformed layouts
    /// (asymmetric half-edges, unsorted lists) and assert that
    /// `verify_deep` catches them. Never use outside those tests.
    #[cfg(feature = "debug-invariants")]
    pub fn from_csr_unvalidated_for_test(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        Graph { offsets, neighbors }
    }

    /// Checks the CSR structural invariants: a monotone offset array
    /// bounding `neighbors` exactly, in-range endpoints, sorted
    /// duplicate-free adjacency lists, no self-loops, and symmetric
    /// half-edges. O(n + m). Always `Ok` for graphs built through
    /// [`Graph::from_edges`] / [`GraphBuilder`]; exists so adopters of
    /// foreign layouts ([`Graph::from_csr`], engine builders, snapshot
    /// loaders) can reject corrupt input instead of silently indexing
    /// it.
    pub fn validate(&self) -> Result<()> {
        let malformed = |detail: String| GraphError::MalformedGraph { detail };
        if self.offsets.is_empty() {
            return Err(malformed("offsets array is empty".into()));
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err(malformed(format!(
                "offsets must span [0, {}], got [{}, {}]",
                self.neighbors.len(),
                self.offsets[0],
                self.offsets.last().unwrap()
            )));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(malformed("offsets array is not monotone".into()));
        }
        let n = self.num_vertices();
        for v in 0..n as VertexId {
            let list = self.neighbors(v);
            for pair in list.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(malformed(format!(
                        "adjacency list of {v} is unsorted or holds a duplicate edge"
                    )));
                }
            }
            for &u in list {
                if u as usize >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: u as u64, n });
                }
                if u == v {
                    return Err(malformed(format!("self-loop at vertex {v}")));
                }
            }
        }
        // Symmetry in one linear sweep: visiting half-edges (v, u) in
        // ascending v (and, within v, ascending u) order means the
        // reverse entries (u, v) of each u's sorted list are consumed
        // in exactly list order — so a per-vertex cursor either matches
        // every reverse half-edge, or the layout is asymmetric. Every
        // entry is consumed exactly once because both sides of the
        // comparison are the same 2m entries.
        let mut cursor: Vec<usize> = self.offsets[..n].to_vec();
        for v in 0..n as VertexId {
            for &u in self.neighbors(v) {
                let cu = cursor[u as usize];
                if cu >= self.offsets[u as usize + 1] || self.neighbors[cu] != v {
                    return Err(malformed(format!("half-edge {v}->{u} has no reverse")));
                }
                cursor[u as usize] = cu + 1;
            }
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// True when the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(a, b)` with
    /// `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |v| {
            self.neighbors(v).iter().copied().filter(move |&u| v < u).map(move |u| (v, u))
        })
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / n as f64
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The raw CSR offset array (`n + 1` entries spanning
    /// [`Graph::csr_neighbors`]). Together with `csr_neighbors` this is
    /// the graph's entire persistent state: a snapshot writer can dump
    /// both arrays verbatim and hand them back to [`Graph::from_csr`],
    /// which re-validates every structural invariant on the way in.
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw flat neighbor array (`2m` entries, each adjacency list
    /// sorted). See [`Graph::csr_offsets`].
    #[inline]
    pub fn csr_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Returns the subgraph induced by `keep` together with the mapping
    /// from new ids to original ids.
    ///
    /// `keep` may be in any order and may contain duplicates; the result
    /// relabels the retained vertices densely in sorted-original order.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut old_ids: Vec<VertexId> = keep.to_vec();
        old_ids.sort_unstable();
        old_ids.dedup();
        let mut new_id = vec![u32::MAX; self.num_vertices()];
        for (new, &old) in old_ids.iter().enumerate() {
            new_id[old as usize] = new as u32;
        }
        // Direct CSR assembly: kept ids ascend and the host adjacency
        // lists are sorted, so each filtered, relabeled list comes out
        // sorted and symmetry/loop-freedom are inherited — one linear
        // pass over the kept adjacency, no edge-list sort. (This is
        // the per-shard build hot path of the sharded CP-tree index.)
        let upper: usize = old_ids.iter().map(|&old| self.degree(old)).sum();
        let mut offsets = Vec::with_capacity(old_ids.len() + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(upper);
        for &old in &old_ids {
            neighbors.extend(self.neighbors(old).iter().filter_map(|&nb| {
                let id = new_id[nb as usize];
                (id != u32::MAX).then_some(id)
            }));
            offsets.push(neighbors.len());
        }
        (Graph::from_csr_unchecked(offsets, neighbors), old_ids)
    }
}

/// Incremental builder producing a [`Graph`].
///
/// Collects raw edges, then sorts, deduplicates, and lays out CSR arrays
/// in [`GraphBuilder::build`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices the graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Grows the vertex count to at least `n`.
    pub fn grow_to(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds the undirected edge `{a, b}`. Self-loops are ignored;
    /// duplicates are removed at build time. Endpoints beyond the current
    /// vertex count grow the graph.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        if a == b {
            return;
        }
        self.grow_to(a.max(b) as usize + 1);
        self.edges.push(if a < b { (a, b) } else { (b, a) });
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn num_edges_raw(&self) -> usize {
        self.edges.len()
    }

    /// True when the undirected edge has already been added (linear scan;
    /// intended for generator-side duplicate avoidance on small batches).
    pub fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.contains(&key)
    }

    /// Finalizes the CSR layout.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degree = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(a, b) in &self.edges {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Each adjacency list is sorted because edges were globally
        // sorted by (min, max) and written in order for the `a` side; the
        // `b` side also receives strictly increasing partners.
        debug_assert!((0..self.n).all(|v| {
            let s = &neighbors[offsets[v]..offsets[v + 1]];
            s.windows(2).all(|w| w[0] < w[1])
        }));
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = Graph::from_edges(2, &[(0, 2)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 2, n: 2 });
    }

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let g = Graph::from_edges(5, &[(3, 1), (3, 0), (3, 4), (1, 0), (4, 0)]).unwrap();
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        assert_eq!(g.neighbors(0), &[1, 3, 4]);
        for (a, b) in g.edges() {
            assert!(g.has_edge(a, b));
            assert!(g.has_edge(b, a));
        }
    }

    #[test]
    fn edges_iterator_unique() {
        let g = path(4);
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn degrees_and_avg() {
        let g = path(3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn induced_subgraph_relabels() {
        // Triangle 0-1-2 plus pendant 3 on 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let (sub, ids) = g.induced_subgraph(&[2, 0, 1, 2]);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_drops_outside_edges() {
        let g = path(4);
        let (sub, ids) = g.induced_subgraph(&[0, 2, 3]);
        assert_eq!(ids, vec![0, 2, 3]);
        assert_eq!(sub.num_edges(), 1); // only 2-3 survives
        assert!(sub.has_edge(1, 2)); // new ids of old 2,3
    }

    #[test]
    fn from_csr_accepts_canonical_layout() {
        let g = path(4);
        let rebuilt = Graph::from_csr(g.offsets.clone(), g.neighbors.clone()).unwrap();
        assert_eq!(rebuilt, g);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn from_csr_rejects_self_loops_duplicates_and_asymmetry() {
        // Self-loop at vertex 0.
        let err = Graph::from_csr(vec![0, 1, 1], vec![0]).unwrap_err();
        assert!(matches!(err, GraphError::MalformedGraph { .. }), "{err}");
        assert!(err.to_string().contains("self-loop"));
        // Duplicate edge 0-1 stored twice on one side.
        let err = Graph::from_csr(vec![0, 2, 4], vec![1, 1, 0, 0]).unwrap_err();
        assert!(err.to_string().contains("duplicate") || err.to_string().contains("unsorted"));
        // Half-edge without its reverse.
        let err = Graph::from_csr(vec![0, 1, 1], vec![1]).unwrap_err();
        assert!(err.to_string().contains("reverse"));
        // Offsets not spanning the neighbor array.
        assert!(Graph::from_csr(vec![0, 1], vec![]).is_err());
        // Out-of-range endpoint.
        let err = Graph::from_csr(vec![0, 1, 2], vec![5, 0]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 }));
    }

    #[test]
    fn builder_grow_and_contains() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 2);
        assert_eq!(b.num_vertices(), 6);
        assert!(b.contains_edge(2, 5));
        assert!(!b.contains_edge(2, 4));
        assert_eq!(b.num_edges_raw(), 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert!(g.has_edge(5, 2));
    }
}
