//! Update workloads: timestamped edge/profile mutation streams.
//!
//! Real profiled graphs — DBLP collaborations, social follower graphs —
//! change continuously: papers add co-author edges, accounts re-tag
//! their interests. This module turns a generated
//! [`ProfiledDataset`] into a reproducible **mutation stream** for
//! exercising the engine's update path: a mix of edge insertions
//! (biased toward intra-group pairs, as new collaborations mostly
//! happen inside communities), edge removals, profile rewrites, and —
//! deliberately — a dose of no-ops (duplicate insertions, absent
//! removals) that a robust ingestion path must absorb without error.
//!
//! Everything is deterministic in the spec's seed, like the rest of the
//! crate.

use crate::gen::{random_ptree, ProfiledDataset};
use pcs_graph::{FxHashSet, VertexId};
use pcs_ptree::PTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One mutation in a stream.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamOp {
    /// Insert the undirected edge `{0, 1}` (may duplicate an existing
    /// edge when the stream includes no-ops).
    AddEdge(VertexId, VertexId),
    /// Remove the undirected edge `{0, 1}` (may name an absent edge
    /// when the stream includes no-ops).
    RemoveEdge(VertexId, VertexId),
    /// Replace the P-tree of the vertex.
    SetProfile(VertexId, PTree),
}

/// A mutation stamped with a logical arrival time (monotonically
/// non-decreasing ticks; several ops may share a tick, modelling one
/// ingestion batch).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedOp {
    /// Logical arrival tick.
    pub at: u64,
    /// The mutation.
    pub op: StreamOp,
}

/// Shape of a generated update stream.
#[derive(Clone, Debug)]
pub struct UpdateStreamSpec {
    /// Number of operations to emit.
    pub steps: usize,
    /// Relative weight of edge insertions.
    pub add_weight: u32,
    /// Relative weight of edge removals.
    pub remove_weight: u32,
    /// Relative weight of profile rewrites.
    pub profile_weight: u32,
    /// Fraction of edge ops deliberately emitted as no-ops (duplicate
    /// insertions / absent removals), `0.0..=1.0`.
    pub noop_fraction: f64,
    /// Probability that consecutive ops share an arrival tick (batch
    /// bursts).
    pub burst_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UpdateStreamSpec {
    /// A balanced default: 60% adds, 25% removes, 15% profile writes,
    /// 10% no-ops, mild bursting.
    pub fn new(steps: usize, seed: u64) -> Self {
        UpdateStreamSpec {
            steps,
            add_weight: 60,
            remove_weight: 25,
            profile_weight: 15,
            noop_fraction: 0.1,
            burst_fraction: 0.3,
            seed,
        }
    }
}

fn key(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Generates a timestamped mutation stream against `ds`.
///
/// The generator mirrors the evolving edge set, so emitted removals
/// (except deliberate no-ops) always name a live edge and emitted
/// insertions a missing one; replaying the stream in order therefore
/// exercises the engine's effective paths at the configured rates.
/// Profile rewrites draw fresh P-trees sized like the dataset's
/// originals, so taxonomy validity is preserved by construction.
pub fn update_stream(ds: &ProfiledDataset, spec: &UpdateStreamSpec) -> Vec<TimedOp> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n = ds.graph.num_vertices();
    assert!(n >= 2, "update streams need at least two vertices");
    let mut live: Vec<(VertexId, VertexId)> = ds.graph.edges().collect();
    let mut live_set: FxHashSet<(VertexId, VertexId)> = live.iter().copied().collect();
    let avg_ptree = ds.avg_ptree_size().max(2.0);
    let total_weight = (spec.add_weight + spec.remove_weight + spec.profile_weight).max(1);
    let mut out = Vec::with_capacity(spec.steps);
    let mut tick = 0u64;
    for _ in 0..spec.steps {
        if !out.is_empty() && !rng.gen_bool(spec.burst_fraction.clamp(0.0, 1.0)) {
            tick += rng.gen_range(1..4u64);
        }
        let roll = rng.gen_range(0..total_weight);
        let op = if roll < spec.add_weight {
            if rng.gen_bool(spec.noop_fraction.clamp(0.0, 1.0)) && !live.is_empty() {
                // Deliberate duplicate insertion.
                let &(a, b) = &live[rng.gen_range(0..live.len())];
                StreamOp::AddEdge(a, b)
            } else {
                // Draw a missing pair (rejection sampling; dense graphs
                // fall back to whatever the last draw produced only
                // after a bounded number of attempts).
                let mut pick = None;
                for _ in 0..64 {
                    let a = rng.gen_range(0..n as u32);
                    let b = rng.gen_range(0..n as u32);
                    if a != b && !live_set.contains(&key(a, b)) {
                        pick = Some((a, b));
                        break;
                    }
                }
                match pick {
                    Some((a, b)) => {
                        live_set.insert(key(a, b));
                        live.push(key(a, b));
                        StreamOp::AddEdge(a, b)
                    }
                    None => {
                        // Graph is (near-)complete: emit a duplicate.
                        let &(a, b) = &live[rng.gen_range(0..live.len())];
                        StreamOp::AddEdge(a, b)
                    }
                }
            }
        } else if roll < spec.add_weight + spec.remove_weight {
            // Deliberate absent removal: find a pair that is provably
            // missing (random tries, then a deterministic scan so dense
            // graphs cannot accidentally hand back a live edge).
            let absent_pick = if rng.gen_bool(spec.noop_fraction.clamp(0.0, 1.0)) || live.is_empty()
            {
                let mut pick = None;
                for _ in 0..64 {
                    let a = rng.gen_range(0..n as u32);
                    let b = rng.gen_range(0..n as u32);
                    if a != b && !live_set.contains(&key(a, b)) {
                        pick = Some((a, b));
                        break;
                    }
                }
                if pick.is_none() {
                    let start = rng.gen_range(0..n as u32);
                    'scan: for da in 0..n as u32 {
                        let a = (start + da) % n as u32;
                        for b in (a + 1)..n as u32 {
                            if !live_set.contains(&(a, b)) {
                                pick = Some((a, b));
                                break 'scan;
                            }
                        }
                    }
                }
                pick
            } else {
                None
            };
            match absent_pick {
                Some((a, b)) => StreamOp::RemoveEdge(a, b),
                None if !live.is_empty() => {
                    // Effective removal (or the complete-graph corner
                    // where no absent pair exists): keep the mirror in
                    // sync so the documented live/absent guarantees
                    // hold for every later op.
                    let i = rng.gen_range(0..live.len());
                    let (a, b) = live.swap_remove(i);
                    live_set.remove(&(a, b));
                    StreamOp::RemoveEdge(a, b)
                }
                None => {
                    // Edgeless graph with no absent pair is impossible
                    // for n >= 2; keep the stream total anyway.
                    StreamOp::RemoveEdge(0, 1)
                }
            }
        } else {
            let v = rng.gen_range(0..n as u32);
            let jitter = rng.gen_range(0.6..1.4);
            let target = ((avg_ptree * jitter) as usize).max(1);
            StreamOp::SetProfile(v, random_ptree(&ds.tax, target, &mut rng))
        };
        out.push(TimedOp { at: tick, op });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec};
    use crate::taxonomy::random_taxonomy;
    use pcs_graph::DynamicGraph;

    fn dataset() -> ProfiledDataset {
        generate(&DatasetSpec::small("upd", 120, 5), random_taxonomy(80, 4, 7, 2))
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let ds = dataset();
        let a = update_stream(&ds, &UpdateStreamSpec::new(200, 9));
        let b = update_stream(&ds, &UpdateStreamSpec::new(200, 9));
        assert_eq!(a, b);
        let c = update_stream(&ds, &UpdateStreamSpec::new(200, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn stream_shape_and_validity() {
        let ds = dataset();
        let spec = UpdateStreamSpec::new(400, 3);
        let ops = update_stream(&ds, &spec);
        assert_eq!(ops.len(), 400);
        // Timestamps are monotone and ops stay in range; profiles are
        // valid against the dataset taxonomy.
        let n = ds.graph.num_vertices() as u32;
        let mut last = 0;
        let mut kinds = [0usize; 3];
        for t in &ops {
            assert!(t.at >= last);
            last = t.at;
            match &t.op {
                StreamOp::AddEdge(a, b) | StreamOp::RemoveEdge(a, b) => {
                    assert!(*a < n && *b < n && a != b);
                    kinds[usize::from(matches!(t.op, StreamOp::RemoveEdge(..)))] += 1;
                }
                StreamOp::SetProfile(v, p) => {
                    assert!(*v < n);
                    assert!(p.nodes().iter().all(|&l| (l as usize) < ds.tax.len()));
                    assert!(ds.tax.is_ancestor_closed(p.nodes()));
                    kinds[2] += 1;
                }
            }
        }
        // All three op kinds occur at the default weights.
        assert!(kinds.iter().all(|&k| k > 0), "kinds: {kinds:?}");
    }

    #[test]
    fn replay_includes_effective_ops_and_noops() {
        let ds = dataset();
        let spec = UpdateStreamSpec::new(500, 77);
        let ops = update_stream(&ds, &spec);
        let mut g = DynamicGraph::from_graph(&ds.graph);
        let (mut effective, mut noops) = (0usize, 0usize);
        for t in &ops {
            match t.op {
                StreamOp::AddEdge(a, b) => {
                    if g.add_edge(a, b).unwrap() {
                        effective += 1;
                    } else {
                        noops += 1;
                    }
                }
                StreamOp::RemoveEdge(a, b) => {
                    if g.remove_edge(a, b).unwrap() {
                        effective += 1;
                    } else {
                        noops += 1;
                    }
                }
                StreamOp::SetProfile(..) => effective += 1,
            }
        }
        assert!(effective > 300, "most ops are effective: {effective}");
        assert!(noops > 10, "the stream deliberately includes no-ops: {noops}");
    }
}
