//! # pcs-index — the CL-tree and CP-tree indexes
//!
//! Index structures from Section 4 of the PCS paper:
//!
//! * [`ClTree`] — the *core label tree* of Fang et al. (adopted by the
//!   paper without labels): all k-ĉores of a graph organized by the
//!   nestedness property `j-ĉore ⊆ i-ĉore (i < j)` into a forest, with
//!   a `vertexNodeMap` locating the ĉore of any query vertex. Built in
//!   O(m·α(n)) with a union-find over descending core numbers; answers
//!   `get(q, k)` in time proportional to the answer.
//! * [`CpTree`] — the *core profiled tree* index (Section 4.2): one node
//!   per taxonomy label holding the CL-tree of the subgraph induced by
//!   the vertices whose P-trees contain that label, linked along the
//!   GP-tree, plus the `headMap` from each vertex to the leaf labels of
//!   its P-tree (so `T(v)` can be restored from the index alone).
//!
//! ```
//! use pcs_graph::Graph;
//! use pcs_ptree::{PTree, Taxonomy};
//! use pcs_index::CpTree;
//!
//! let mut tax = Taxonomy::new("r");
//! let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
//! let profiles = vec![
//!     PTree::from_labels(&tax, [a]).unwrap(),
//!     PTree::from_labels(&tax, [a]).unwrap(),
//!     PTree::root_only(),
//! ];
//! let index = CpTree::build(&g, &tax, &profiles).unwrap();
//! // 1-ĉore of vertex 0 among vertices labelled `a`: the edge {0, 1}.
//! // `get_ref` is the zero-copy hot path (borrowed arena slice, set
//! // order) — the only `I.get` the index exposes; sort a copy when
//! // order matters.
//! let mut members = index.get_ref(1, 0, a).unwrap().to_vec();
//! members.sort_unstable();
//! assert_eq!(members, vec![0, 1]);
//! ```
//!
//! Serving systems use the label-sharded shape instead
//! ([`ShardedCpIndex`]): the same index split into per-label
//! [`IndexShard`]s that materialize on demand, so the first query pays
//! for the labels it touches rather than the whole taxonomy.

#![deny(unsafe_code)]

pub mod cltree;
pub mod cptree;
pub mod sharded;

pub use cltree::{ClTree, ClTreeFlat};
pub use cptree::{CpPatchStats, CpTree, GraphDelta};
pub use sharded::{IndexRef, IndexShard, MemberSource, ShardSource, ShardedCpIndex};

/// Errors produced while building or querying indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexError {
    /// The number of vertex profiles differs from the graph size.
    ProfileCountMismatch {
        /// Vertices in the graph.
        vertices: usize,
        /// Profiles supplied.
        profiles: usize,
    },
    /// A profile references a label outside the taxonomy.
    UnknownLabel(pcs_ptree::LabelId),
    /// A flat representation handed to [`ClTree::from_flat`] (or a
    /// loaded sharded-index part) violates a structural invariant
    /// (snapshot loaders surface this as a corrupt-section error).
    CorruptIndex {
        /// Description of the violated invariant.
        detail: String,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::ProfileCountMismatch { vertices, profiles } => {
                write!(f, "graph has {vertices} vertices but {profiles} profiles were supplied")
            }
            IndexError::UnknownLabel(l) => write!(f, "profile references unknown label {l}"),
            IndexError::CorruptIndex { detail } => {
                write!(f, "flat index representation is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IndexError>;
