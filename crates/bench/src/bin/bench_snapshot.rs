//! Machine-readable performance snapshot: the perf trajectory tracker.
//!
//! Runs the load-bearing measurements — per-query latency of all five
//! PCS algorithms (`query_efficiency`), CP-tree construction
//! (`index_construction`), sharded-lazy **time-to-first-query** vs
//! eager build, persistence, and the live-update path
//! (`update_throughput`) — in one **fixed configuration** (DBLP-like,
//! the largest generated dataset, at scale 0.01 with k = 6), then
//! writes `BENCH_query.json` and `BENCH_index.json` so the numbers can
//! be committed and diffed PR over PR.
//!
//! ```text
//! cargo run -p pcs-bench --release --bin bench_snapshot            # full run, writes ./BENCH_*.json
//! cargo run -p pcs-bench --release --bin bench_snapshot -- --record-baseline
//! cargo run -p pcs-bench --release --bin bench_snapshot -- --quick # CI smoke: tiny dataset, target/
//! cargo run -p pcs-bench --release --bin bench_snapshot -- --quick --assert-lazy-wins
//! ```
//!
//! `--record-baseline` re-reads the existing JSON files first and
//! stores their current results under `"baseline"` in the fresh files,
//! so a PR that changes performance commits before *and* after numbers
//! in one artifact. `--reps N` controls repetitions; every repeated
//! metric reports `{min, median, stddev}` so the shared 1-core
//! container's timing noise is visible in the JSON instead of silently
//! folded into one number. `--quick` is the CI bit-rot guard: a
//! seconds-long run on a tiny dataset that exercises every code path
//! and the JSON writer (into `target/`, leaving the committed files
//! alone) and fails only on panic — except under `--assert-lazy-wins`,
//! which additionally asserts (in-run, same process, same load) that
//! the sharded-lazy time-to-first-query beats the eager full build.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use pcs_core::Algorithm;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_engine::{IndexMode, PcsEngine, QueryRequest, UpdateBatch};
use pcs_graph::VertexId;
use pcs_index::CpTree;

struct Config {
    quick: bool,
    record_baseline: bool,
    assert_lazy_wins: bool,
    scale_sweep: bool,
    out_dir: PathBuf,
    scale: f64,
    k: u32,
    queries: usize,
    reps: usize,
    basic_queries: usize,
}

impl Config {
    fn parse() -> Config {
        let mut cfg = Config {
            quick: false,
            record_baseline: false,
            assert_lazy_wins: false,
            scale_sweep: false,
            out_dir: PathBuf::from("."),
            scale: 0.01,
            k: 6,
            queries: 15,
            reps: 5,
            basic_queries: 5,
        };
        let mut out_dir_given = false;
        let mut reps_given = false;
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--quick" => cfg.quick = true,
                "--record-baseline" => cfg.record_baseline = true,
                "--assert-lazy-wins" => cfg.assert_lazy_wins = true,
                "--scale-sweep" => cfg.scale_sweep = true,
                "--reps" => {
                    cfg.reps = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--reps takes a positive integer");
                    reps_given = true;
                }
                "--out-dir" => {
                    cfg.out_dir = PathBuf::from(args.next().expect("--out-dir takes a path"));
                    out_dir_given = true;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --quick --record-baseline --assert-lazy-wins --scale-sweep \
                         --reps <n> --out-dir <dir>"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        if cfg.quick {
            cfg.scale = 0.002;
            cfg.queries = 4;
            if !reps_given {
                cfg.reps = 2;
            }
            cfg.basic_queries = 2;
            // Keep the committed JSONs safe by default, but honour an
            // explicit --out-dir (the .quick suffix still applies).
            if !out_dir_given {
                cfg.out_dir = PathBuf::from("target");
            }
        }
        cfg.reps = cfg.reps.max(1);
        cfg
    }
}

/// One recorded metric: a plain scalar (counts, single-shot timings)
/// or the distribution of repeated timing samples.
enum Metric {
    Scalar(f64),
    Dist { min: f64, median: f64, stddev: f64 },
}

impl Metric {
    /// The headline value (scalar, or the distribution's min — the
    /// least-noise estimator on a noisy shared container).
    fn headline(&self) -> f64 {
        match *self {
            Metric::Scalar(v) => v,
            Metric::Dist { min, .. } => min,
        }
    }

    fn from_samples(samples: &[f64]) -> Metric {
        if samples.len() == 1 {
            return Metric::Scalar(samples[0]);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let min = sorted[0];
        let mid = sorted.len() / 2;
        let median = if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / sorted.len() as f64;
        Metric::Dist { min, median, stddev: var.sqrt() }
    }
}

/// Wall time of `f` in microseconds, once per rep.
fn sample_us<T>(reps: usize, mut f: impl FnMut() -> T) -> Vec<f64> {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect()
}

/// Minimal JSON escaping for the keys/strings we emit (no control
/// characters ever appear in them).
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders a `[(key, metric)]` list as a JSON object body.
fn json_obj(pairs: &[(String, Metric)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match *v {
            Metric::Scalar(x) => {
                let _ = write!(out, "{}: {x:.2}", json_str(k));
            }
            Metric::Dist { min, median, stddev } => {
                let _ = write!(
                    out,
                    "{}: {{\"min\": {min:.2}, \"median\": {median:.2}, \"stddev\": {stddev:.2}}}",
                    json_str(k)
                );
            }
        }
    }
    out.push('}');
    out
}

/// Pulls the `"results"` object back out of a previously written file
/// (verbatim, as text) so it can be re-embedded as `"baseline"`.
fn previous_results(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let start = text.find("\"results\":")? + "\"results\":".len();
    let open = text[start..].find('{')? + start;
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn write_snapshot(
    path: &Path,
    dataset: &str,
    cfg: &Config,
    results: &str,
    baseline: Option<String>,
) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pcs-bench-snapshot/v2\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"dataset\": {}, \"scale\": {}, \"k\": {}, \"queries\": {}, \"reps\": {}, \"quick\": {}}},",
        json_str(dataset), cfg.scale, cfg.k, cfg.queries, cfg.reps, cfg.quick
    );
    let _ = writeln!(out, "  \"results\": {results},");
    let baseline = baseline.unwrap_or_else(|| "null".into());
    let _ = writeln!(out, "  \"baseline\": {baseline}");
    out.push_str("}\n");
    std::fs::create_dir_all(path.parent().unwrap_or(Path::new("."))).expect("create out dir");
    std::fs::write(path, out).expect("write snapshot file");
    println!("wrote {}", path.display());
}

fn churn_edges(ds: &pcs_datasets::ProfiledDataset, count: usize) -> Vec<(VertexId, VertexId)> {
    let (members, _) = sample_query_vertices(ds, 4, count * 8, 0xc4u64);
    let mut out = Vec::new();
    'outer: for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            let pair = (a.min(b), a.max(b));
            if a != b && !ds.graph.has_edge(a, b) && !out.contains(&pair) {
                out.push(pair);
                if out.len() == count {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Current resident-set size in KiB, read from `/proc/self/statm`
/// (std-only; `None` off Linux). Pages are assumed 4 KiB — true on
/// every environment this repo targets.
fn rss_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4)
}

/// Running maximum of [`rss_kb`] across explicit sample points — a
/// poor man's high-water mark that needs no OS support beyond statm.
struct RssPeak(u64);

impl RssPeak {
    fn new() -> RssPeak {
        RssPeak(rss_kb().unwrap_or(0))
    }

    fn sample(&mut self) -> u64 {
        self.0 = self.0.max(rss_kb().unwrap_or(0));
        self.0
    }
}

/// The `--scale-sweep` mode: generate → build → save → lazy-load →
/// first query → steady state at each scale, recording wall times,
/// peak RSS, and the lazy-vs-eager bytes-read ratio (an eager load
/// reads the whole file by definition; the lazy counter comes from
/// [`PcsEngine::snapshot_io`]). Writes `BENCH_scale.json`.
fn run_scale_sweep(cfg: &Config) {
    let scales: &[f64] = if cfg.quick { &[0.002, 0.01] } else { &[0.01, 0.1, 1.0] };
    let dataset = SuiteDataset::Dblp;
    let mut rows: Vec<String> = Vec::new();
    for &scale in scales {
        let mut peak = RssPeak::new();
        let t = Instant::now();
        let ds = build(dataset, SuiteConfig { scale, ..SuiteConfig::default() });
        let gen_us = t.elapsed().as_secs_f64() * 1e6;
        let (vertices, edges) = (ds.graph.num_vertices(), ds.graph.num_edges());
        println!("scale {scale}: {vertices} vertices, {edges} edges (generated in {gen_us:.0} us)");
        let (qs, _) = sample_query_vertices(&ds, cfg.k, 4, 0x14);
        let q = qs.first().copied().unwrap_or(0);
        peak.sample();
        // Move (not clone) the dataset into the builder: at scale 1.0
        // a second copy of the profiles is the difference between
        // fitting and thrashing.
        let pcs_datasets::ProfiledDataset { graph, tax, profiles, .. } = ds;
        let t = Instant::now();
        let engine = PcsEngine::builder()
            .graph(graph)
            .taxonomy(tax)
            .profiles(profiles)
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        let build_us = t.elapsed().as_secs_f64() * 1e6;
        peak.sample();
        let snap_path = std::env::temp_dir()
            .join(format!("pcs-bench-sweep-{}-{scale}.snapshot", std::process::id()));
        let t = Instant::now();
        engine.save(&snap_path).unwrap();
        let save_us = t.elapsed().as_secs_f64() * 1e6;
        let file_bytes = std::fs::metadata(&snap_path).unwrap().len();
        drop(engine);
        peak.sample();
        // Lazy warm-start: open (structure only), then the first query
        // faults in exactly what it touches. TtFQ is load + first
        // answer, one shot; the bytes counter pins how much of the
        // file that took.
        let t = Instant::now();
        let loaded = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&snap_path).unwrap();
        let load_us = t.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(
            loaded.query(&QueryRequest::vertex(q).k(cfg.k)).unwrap().communities().len(),
        );
        let ttfq_us = t.elapsed().as_secs_f64() * 1e6;
        let io = loaded.snapshot_io().expect("lazy load exposes IO counters");
        let ttfq_bytes = io.bytes_read;
        let ratio = ttfq_bytes as f64 / file_bytes.max(1) as f64;
        assert!(
            ratio < 1.0,
            "lazy TtFQ must not read the whole file ({ttfq_bytes} of {file_bytes} bytes)"
        );
        let steady = Metric::from_samples(&sample_us(cfg.reps.max(3), || {
            std::hint::black_box(
                loaded.query(&QueryRequest::vertex(q).k(cfg.k)).unwrap().communities().len(),
            );
        }));
        let peak_kb = peak.sample();
        drop(loaded);
        let _ = std::fs::remove_file(&snap_path);
        println!(
            "scale {scale}: build {build_us:.0} us, save {save_us:.0} us, lazy load {load_us:.0} us, \
             ttfq {ttfq_us:.0} us ({ttfq_bytes} of {file_bytes} bytes = {:.1}%), \
             steady {:.0} us, peak rss {peak_kb} KiB",
            ratio * 100.0,
            steady.headline(),
        );
        let pairs = vec![
            ("vertices".to_string(), Metric::Scalar(vertices as f64)),
            ("edges".to_string(), Metric::Scalar(edges as f64)),
            ("gen_us".to_string(), Metric::Scalar(gen_us)),
            ("build_us".to_string(), Metric::Scalar(build_us)),
            ("save_us".to_string(), Metric::Scalar(save_us)),
            ("load_us".to_string(), Metric::Scalar(load_us)),
            ("ttfq_us".to_string(), Metric::Scalar(ttfq_us)),
            ("steady_query_us".to_string(), steady),
            ("file_bytes".to_string(), Metric::Scalar(file_bytes as f64)),
            ("ttfq_bytes".to_string(), Metric::Scalar(ttfq_bytes as f64)),
            ("lazy_eager_bytes_ratio".to_string(), Metric::Scalar(ratio)),
            ("peak_rss_kb".to_string(), Metric::Scalar(peak_kb as f64)),
        ];
        rows.push(format!("{}: {}", json_str(&format!("{scale}")), json_obj(&pairs)));
    }
    let path =
        cfg.out_dir.join(if cfg.quick { "BENCH_scale.quick.json" } else { "BENCH_scale.json" });
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pcs-bench-scale/v1\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"dataset\": {}, \"k\": {}, \"reps\": {}, \"quick\": {}}},",
        json_str(dataset.name()),
        cfg.k,
        cfg.reps,
        cfg.quick
    );
    let _ = writeln!(out, "  \"results\": {{{}}}", rows.join(", "));
    out.push_str("}\n");
    std::fs::create_dir_all(path.parent().unwrap_or(Path::new("."))).expect("create out dir");
    std::fs::write(&path, out).expect("write scale sweep file");
    println!("wrote {}", path.display());
}

fn main() {
    let cfg = Config::parse();
    if cfg.scale_sweep {
        run_scale_sweep(&cfg);
        return;
    }
    let suite = SuiteConfig { scale: cfg.scale, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Dblp, suite);
    println!(
        "dataset: {} vertices, {} edges (DBLP-like @ scale {}, reps {})",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        cfg.scale,
        cfg.reps
    );
    let (queries, _) = sample_query_vertices(&ds, cfg.k, cfg.queries, 0x14);
    assert!(!queries.is_empty(), "no query vertices with core >= k");

    let report = |name: &str, m: &Metric| match *m {
        Metric::Scalar(v) => println!("{name:<40} {v:>12.2}"),
        Metric::Dist { min, median, stddev } => {
            println!("{name:<40} {min:>12.2} (median {median:.2}, stddev {stddev:.2})")
        }
    };

    // ---- query_efficiency: mean us per query, distribution over reps.
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let ctx =
        pcs_core::QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let mut query_results: Vec<(String, Metric)> = Vec::new();
    for algo in Algorithm::ALL {
        // `basic` is orders of magnitude slower (that is the paper's
        // point); sample fewer queries so the snapshot stays fast.
        let qs: &[VertexId] = if algo == Algorithm::Basic {
            &queries[..cfg.basic_queries.min(queries.len())]
        } else {
            &queries
        };
        let reps = if algo == Algorithm::Basic { 1 } else { cfg.reps };
        let per_query: Vec<f64> = sample_us(reps, || {
            for &q in qs {
                std::hint::black_box(ctx.query(q, cfg.k, algo).unwrap().communities.len());
            }
        })
        .into_iter()
        .map(|total| total / qs.len() as f64)
        .collect();
        let metric = Metric::from_samples(&per_query);
        report(&format!("query_efficiency/{} (us/query)", algo.name()), &metric);
        query_results.push((algo.name().to_string(), metric));
    }
    drop(ctx);

    // ---- index_construction: one full sequential CP-tree build.
    let mut index_results: Vec<(String, Metric)> = Vec::new();
    let m = Metric::from_samples(&sample_us(cfg.reps, || {
        CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap()
    }));
    report("index_construction/cptree_seq_us", &m);
    index_results.push(("cptree_seq_us".into(), m));

    // ---- sharding: time-to-first-query (lazy, per-shard) vs eager
    // full build, measured in-run. The lazy engine's first queries pay
    // the facade plus only the shards their subtree lattices touch —
    // a 3-query workload over heavy-tailed profiles touches a handful
    // of labels, not the whole taxonomy.
    let eager_build = Metric::from_samples(&sample_us(cfg.reps, || {
        PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap()
    }));
    report("sharding/eager_build_us", &eager_build);
    // The first-query workload: 3 query vertices with the *smallest*
    // profiles among a wide sample — real query traffic concentrates
    // on a small fraction of labels (heavy-tailed label popularity),
    // and this is exactly the case per-shard laziness serves: the
    // engine materializes the few shards those lattices touch and
    // nothing else (the root label is never probed — root-only
    // candidates are answered by the global k-ĉore directly).
    let (wide_sample, _) = sample_query_vertices(&ds, cfg.k, cfg.queries.max(40), 0x14);
    let mut by_profile_size: Vec<VertexId> = wide_sample;
    by_profile_size.sort_by_key(|&q| ds.profiles[q as usize].len());
    let first_queries: Vec<VertexId> = by_profile_size.into_iter().take(3).collect();
    let workload_labels: std::collections::BTreeSet<u32> = first_queries
        .iter()
        .flat_map(|&q| ds.profiles[q as usize].nodes().iter().copied())
        .filter(|&l| l != 0)
        .collect();
    let first_q = first_queries[0];
    // Eager time-to-first-query: full build, then the same first
    // query — the apples-to-apples baseline for the lazy path.
    let eager_ttfq = Metric::from_samples(&sample_us(cfg.reps, || {
        let engine = PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        std::hint::black_box(
            engine.query(&QueryRequest::vertex(first_q).k(cfg.k)).unwrap().communities().len(),
        );
        engine
    }));
    report("sharding/eager_time_to_first_query_us", &eager_ttfq);
    // Lazy time-to-first-query, plus (on the then-warm engine) the
    // steady-state latency of the identical query — the floor both
    // modes pay per query regardless of index residency. The lazy
    // warm-up (ttfq − steady) is "the cost of the queried labels'
    // shards"; that is the number per-shard laziness shrinks.
    let resident_first;
    let resident_after;
    let populated;
    let steady_samples;
    {
        // Untimed pass: gather shard-residency counts and the
        // steady-state latency of the identical query on a warm engine.
        let engine = PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Lazy)
            .build()
            .unwrap();
        std::hint::black_box(
            engine.query(&QueryRequest::vertex(first_q).k(cfg.k)).unwrap().communities().len(),
        );
        resident_first = engine.resident_shards();
        steady_samples = sample_us(cfg.reps, || {
            std::hint::black_box(
                engine.query(&QueryRequest::vertex(first_q).k(cfg.k)).unwrap().communities().len(),
            );
        });
        for &q in &first_queries[1..] {
            std::hint::black_box(
                engine.query(&QueryRequest::vertex(q).k(cfg.k)).unwrap().communities().len(),
            );
        }
        resident_after = engine.resident_shards();
        populated = engine.snapshot().index().map_or(0, |i| i.num_populated_labels());
    }
    let ttfq = Metric::from_samples(&sample_us(cfg.reps, || {
        let engine = PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Lazy)
            .build()
            .unwrap();
        std::hint::black_box(
            engine.query(&QueryRequest::vertex(first_q).k(cfg.k)).unwrap().communities().len(),
        );
        engine
    }));
    let steady = Metric::from_samples(&steady_samples);
    report("sharding/time_to_first_query_us", &ttfq);
    report("sharding/steady_state_query_us", &steady);
    let (eager_us, eager_ttfq_us, ttfq_us, steady_us) =
        (eager_build.headline(), eager_ttfq.headline(), ttfq.headline(), steady.headline());
    let warmup_us = (ttfq_us - steady_us).max(0.0);
    let first_labels = ds.profiles[first_q as usize].nodes().iter().filter(|&&l| l != 0).count();
    println!(
        "sharding: first query (|T(q)| non-root = {first_labels}) materialized \
         {resident_first} shards; {}-query workload over {} labels total \
         {resident_after}/{populated}; ttfq {ttfq_us:.0} us vs eager ttfq {eager_ttfq_us:.0} us \
         ({:.1}x); lazy warm-up {warmup_us:.0} us vs eager build {eager_us:.0} us ({:.1}x)",
        first_queries.len(),
        workload_labels.len(),
        eager_ttfq_us / ttfq_us,
        eager_us / warmup_us.max(1.0),
    );
    index_results.push(("eager_build_us".into(), eager_build));
    index_results.push(("eager_time_to_first_query_us".into(), eager_ttfq));
    index_results.push(("time_to_first_query_us".into(), ttfq));
    index_results.push(("steady_state_query_us".into(), steady));
    index_results
        .push(("first_query_resident_shards".into(), Metric::Scalar(resident_first as f64)));
    index_results.push(("workload_resident_shards".into(), Metric::Scalar(resident_after as f64)));
    index_results.push(("populated_labels".into(), Metric::Scalar(populated as f64)));
    if cfg.assert_lazy_wins {
        // Two in-run guarantees, both robust to the shared container's
        // noise: (1) reaching the first answer is faster end to end on
        // the lazy engine; (2) the lazy index warm-up (first-query
        // overhead beyond steady state) beats the eager full build.
        assert!(
            ttfq_us < eager_ttfq_us,
            "sharded-lazy time-to-first-query ({ttfq_us:.0} us) must beat the eager engine's \
             ({eager_ttfq_us:.0} us) in-run"
        );
        assert!(
            warmup_us < eager_us,
            "lazy index warm-up ({warmup_us:.0} us) must beat the eager full build \
             ({eager_us:.0} us) in-run"
        );
        println!(
            "--assert-lazy-wins: ok (ttfq {ttfq_us:.0} < {eager_ttfq_us:.0} us; warm-up \
             {warmup_us:.0} < build {eager_us:.0} us)"
        );
    }

    // ---- persistence: cold start via snapshot vs eager rebuild.
    // `eager_build_us` (above) is the price a replica pays without a
    // file; `persist_load_us` is the warm-start replacement (Eager
    // load: decode + validate every shard). The roadmap target is
    // load ≤ 1/10 of build.
    let warm = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let snap_path =
        std::env::temp_dir().join(format!("pcs-bench-snapshot-{}.snapshot", std::process::id()));
    let m = Metric::from_samples(&sample_us(cfg.reps, || warm.save(&snap_path).unwrap()));
    report("persistence/persist_save_us", &m);
    index_results.push(("persist_save_us".into(), m));
    let m = Metric::from_samples(&sample_us(cfg.reps, || {
        PcsEngine::builder().index_mode(IndexMode::Eager).load(&snap_path).unwrap()
    }));
    report("persistence/persist_load_us", &m);
    index_results.push(("persist_load_us".into(), m));
    // Partial load: the lazy replica maps the shard directory and
    // defers payload decode — the disk-backed time-to-first-query.
    let m = Metric::from_samples(&sample_us(cfg.reps, || {
        let engine = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&snap_path).unwrap();
        for &q in &first_queries {
            std::hint::black_box(
                engine.query(&QueryRequest::vertex(q).k(cfg.k)).unwrap().communities().len(),
            );
        }
        engine
    }));
    report("persistence/partial_load_first_query_us", &m);
    index_results.push(("partial_load_first_query_us".into(), m));
    // Re-query smoke: the loaded engines answer exactly like the warm
    // one (this is the CI `--quick` save/load/re-query gate), on both
    // the eager and the partial path.
    let loaded = PcsEngine::builder().index_mode(IndexMode::Eager).load(&snap_path).unwrap();
    let partial = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&snap_path).unwrap();
    let _ = std::fs::remove_file(&snap_path);
    for &q in queries.iter().take(3) {
        let req = QueryRequest::vertex(q).k(cfg.k);
        let a = warm.query(&req).unwrap();
        let b = loaded.query(&req).unwrap();
        let c = partial.query(&req).unwrap();
        assert_eq!(
            a.communities(),
            b.communities(),
            "loaded engine diverged from its source at q={q}"
        );
        assert_eq!(
            a.communities(),
            c.communities(),
            "partially loaded engine diverged from its source at q={q}"
        );
    }
    drop((warm, loaded, partial));

    // ---- update_throughput: state-neutral add+remove batch pairs
    // through the incremental engine, and the full-rebuild fallback.
    let edges = churn_edges(&ds, if cfg.quick { 2 } else { 8 });
    if edges.is_empty() {
        println!("update_throughput: skipped (no churn edges found)");
    } else {
        let adds = edges.iter().fold(UpdateBatch::new(), |b, &(u, v)| b.add_edge(u, v));
        let removes = edges.iter().fold(UpdateBatch::new(), |b, &(u, v)| b.remove_edge(u, v));
        for (name, cap) in [("apply_pair_incremental_us", 1.0), ("apply_pair_rebuild_us", 0.0)] {
            let engine = PcsEngine::builder()
                .graph(ds.graph.clone())
                .taxonomy(ds.tax.clone())
                .profiles(ds.profiles.clone())
                .index_mode(IndexMode::Eager)
                .incremental_patch_cap(cap)
                .build()
                .unwrap();
            let m = Metric::from_samples(&sample_us(cfg.reps, || {
                engine.apply(&adds).unwrap();
                engine.apply(&removes).unwrap();
            }));
            report(&format!("update_throughput/{name}"), &m);
            index_results.push((name.into(), m));
        }
        // Serving mix: 19 reads + 1 write per round.
        let engine = PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        engine.warm().unwrap();
        let requests: Vec<QueryRequest> =
            queries.iter().map(|&q| QueryRequest::vertex(q).k(cfg.k)).collect();
        let (wu, wv) = edges[0];
        let m = Metric::from_samples(&sample_us(cfg.reps, || {
            engine.add_edge(wu, wv).unwrap();
            for resp in engine.query_batch(&requests) {
                std::hint::black_box(resp.unwrap().communities().len());
            }
            engine.remove_edge(wu, wv).unwrap();
        }));
        report("update_throughput/mixed_round_us", &m);
        index_results.push(("mixed_round_us".into(), m));
    }

    // ---- parallel_apply: the work-stealing shard rebuild inside
    // `apply_batch`, sequential vs parallel on the same profile-heavy
    // batch (a multi-label invalidation set), as an in-run ratio. On a
    // 1-core runner both engines degrade to the sequential path and
    // the ratio reports ~1.0 — the gate below only arms with real
    // parallelism available.
    let par_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    {
        let n = ds.graph.num_vertices();
        let churn = (n / 4).clamp(1, if cfg.quick { 64 } else { 256 });
        let mut fwd = UpdateBatch::new();
        let mut back = UpdateBatch::new();
        for v in 0..churn as VertexId {
            // Rotate profiles one vertex over: each reprofiled vertex
            // contributes its pre/post symmetric difference, so the
            // batch invalidates shards across many labels at once.
            fwd = fwd.set_profile(v, ds.profiles[(v as usize + 1) % n].clone());
            back = back.set_profile(v, ds.profiles[v as usize].clone());
        }
        let build_with = |threads: usize| {
            let engine = PcsEngine::builder()
                .graph(ds.graph.clone())
                .taxonomy(ds.tax.clone())
                .profiles(ds.profiles.clone())
                .index_mode(IndexMode::Eager)
                .incremental_patch_cap(1.0) // keep the patch path, never rebuild
                .index_build_threads(threads)
                .build()
                .unwrap();
            engine.warm().unwrap();
            engine
        };
        let seq = build_with(1);
        let par = build_with(par_threads);
        let m_seq = Metric::from_samples(&sample_us(cfg.reps, || {
            seq.apply(&fwd).unwrap();
            seq.apply(&back).unwrap();
        }));
        let m_par = Metric::from_samples(&sample_us(cfg.reps, || {
            par.apply(&fwd).unwrap();
            par.apply(&back).unwrap();
        }));
        let ratio = m_seq.headline() / m_par.headline().max(1e-9);
        report("parallel_apply/profile_batch_seq_us", &m_seq);
        report("parallel_apply/profile_batch_par_us", &m_par);
        println!(
            "parallel_apply: {churn}-vertex reprofile batch, {par_threads} threads → {ratio:.2}x"
        );
        index_results.push(("apply_profile_batch_seq_us".into(), m_seq));
        index_results.push(("apply_profile_batch_par_us".into(), m_par));
        index_results.push(("parallel_apply_threads".into(), Metric::Scalar(par_threads as f64)));
        index_results.push(("parallel_apply_ratio".into(), Metric::Scalar(ratio)));
        if cfg.quick && par_threads >= 4 {
            // With real cores available the work-steal must pay for
            // itself; on 1–3 cores the ratio is noise and only the
            // correctness of both apply paths is checked (above, by
            // the unwraps and the differential tests).
            assert!(
                ratio >= 1.3,
                "parallel apply_batch only reached {ratio:.2}x with {par_threads} threads"
            );
        }
    }

    // ---- emit.
    let query_path =
        cfg.out_dir.join(if cfg.quick { "BENCH_query.quick.json" } else { "BENCH_query.json" });
    let index_path =
        cfg.out_dir.join(if cfg.quick { "BENCH_index.quick.json" } else { "BENCH_index.json" });
    let query_baseline = cfg.record_baseline.then(|| previous_results(&query_path)).flatten();
    let index_baseline = cfg.record_baseline.then(|| previous_results(&index_path)).flatten();
    write_snapshot(&query_path, &ds.name, &cfg, &json_obj(&query_results), query_baseline);
    write_snapshot(&index_path, &ds.name, &cfg, &json_obj(&index_results), index_baseline);
}
