//! Algorithms 4–8 — the `advanced` methods.
//!
//! Instead of sweeping the subtree lattice bottom-up, the advanced
//! methods adapt MARGIN (Thomas et al., maximal frequent subgraph
//! mining) to PCS: find one **initial cut** — a pair `(IF, F)` where
//! `F` is feasible and `IF = F + one node` is not — then walk the
//! feasible/infeasible boundary with `expandPtree` (Algorithm 4),
//! recording every feasible subtree that proves maximal. Because
//! maximal feasible subtrees lie *on* the boundary (Table 3 shows they
//! cluster in the middle of the lattice), only a small fraction of the
//! search space is ever verified.
//!
//! Three seeding strategies match the paper's `find-I` (Algorithm 5),
//! `find-D` (Algorithm 6), and `find-P` (Algorithm 7).

use std::collections::VecDeque;
use std::rc::Rc;

use pcs_graph::{FxHashMap, FxHashSet, VertexId};
use pcs_ptree::{QuerySpace, Subtree};

use crate::problem::{PcsOutcome, QueryContext};
use crate::verify::Verifier;
use crate::Result;

/// How the advanced method finds its initial cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindStrategy {
    /// `find-I`: bottom-up enumeration until the first maximal feasible
    /// subtree (Algorithm 5).
    Incremental,
    /// `find-D`: top-down leaf removal from `T(q)` until a feasible
    /// subtree appears (Algorithm 6).
    Decremental,
    /// `find-P`: probe whole root-to-leaf paths through the CP-tree,
    /// then binary-walk one path to the boundary (Algorithm 7).
    Path,
}

impl FindStrategy {
    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            FindStrategy::Incremental => "find-I",
            FindStrategy::Decremental => "find-D",
            FindStrategy::Path => "find-P",
        }
    }

    /// All strategies in the paper's order.
    pub const ALL: [FindStrategy; 3] =
        [FindStrategy::Incremental, FindStrategy::Decremental, FindStrategy::Path];
}

/// An initial cut: `feasible` is a feasible subtree; `infeasible`, when
/// present, is `feasible` plus exactly one node and is infeasible.
/// `infeasible == None` encodes the degenerate case `F = T(q)` (the
/// whole query tree is feasible, so it is the unique maximal subtree).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    /// The infeasible upper side of the cut, if any.
    pub infeasible: Option<Subtree>,
    /// The feasible lower side.
    pub feasible: Subtree,
}

/// Runs the advanced method (Algorithm 8) for `(q, k)`.
pub fn query(
    ctx: &QueryContext<'_>,
    q: VertexId,
    k: u32,
    strategy: FindStrategy,
) -> Result<PcsOutcome> {
    debug_assert!(ctx.index.is_some(), "checked by QueryContext::query");
    let space = ctx.space_for(q)?;
    let mut ver = Verifier::new(ctx, &space, q, k);
    let mut results: FxHashMap<Subtree, Rc<Vec<VertexId>>> = FxHashMap::default();

    if ver.gk().is_some() {
        let cut = find_cut(&mut ver, &space, strategy);
        expand_ptree(&mut ver, &space, cut, &mut results);
    }
    Ok(crate::basic::assemble(ctx, &space, results, ver))
}

/// Dispatches to the chosen `find` function. The caller guarantees
/// `Gk ≠ ∅` (so the root-only subtree is feasible and a cut exists).
pub fn find_cut(ver: &mut Verifier<'_>, space: &QuerySpace, strategy: FindStrategy) -> Cut {
    match strategy {
        FindStrategy::Incremental => find_i(ver, space),
        FindStrategy::Decremental => find_d(ver, space),
        FindStrategy::Path => find_p(ver, space),
    }
}

/// Algorithm 5 (`find-I`): run the `incre` enumeration until the first
/// maximal feasible subtree, and pair it with one infeasible child.
fn find_i(ver: &mut Verifier<'_>, space: &QuerySpace) -> Cut {
    let gk = ver.gk().expect("find functions require Gk");
    let mut stack: Vec<(Subtree, Rc<Vec<VertexId>>)> = vec![(space.root_only(), gk)];
    ver.note_generated(1);
    while let Some((t_prime, community)) = stack.pop() {
        let mut flag = true;
        let mut last_infeasible: Option<Subtree> = None;
        let extensions = space.rightmost_extensions(&t_prime);
        ver.note_generated(extensions.len() as u64);
        for pos in extensions {
            let t = t_prime.with(pos);
            match ver.verify_from_base(&t, &community, pos) {
                Some(sub) => {
                    flag = false;
                    stack.push((t, sub));
                }
                None => last_infeasible = Some(t),
            }
        }
        if flag && ver.is_maximal_feasible(&t_prime) {
            // Any lattice child works as IF (they are all infeasible by
            // maximality); prefer one we already verified.
            let infeasible = last_infeasible
                .or_else(|| space.lattice_children(&t_prime).first().map(|&p| t_prime.with(p)));
            return Cut { infeasible, feasible: t_prime };
        }
    }
    // The enumeration reaches the full tree via feasible prefixes only
    // when T(q) itself is feasible; in that case the loop above returned
    // at the full tree (no extensions ⇒ flag stays true, and the full
    // tree is trivially maximal). Reaching this point means every
    // branch died infeasible *after* a feasible prefix whose maximality
    // check failed — impossible, because a failed maximality check
    // implies a feasible child, which the rightmost enumeration visits.
    unreachable!("find-I always locates a maximal feasible subtree when Gk exists");
}

/// Algorithm 6 (`find-D`): descend from `T(q)`, removing one leaf at a
/// time, until a feasible subtree appears.
fn find_d(ver: &mut Verifier<'_>, space: &QuerySpace) -> Cut {
    let full = space.full();
    ver.note_generated(1);
    if ver.verify(&full).is_some() {
        return Cut { infeasible: None, feasible: full };
    }
    let mut stack: Vec<Subtree> = vec![full];
    let mut visited: FxHashSet<Subtree> = FxHashSet::default();
    while let Some(t) = stack.pop() {
        for leaf in space.lattice_parents(&t) {
            let smaller = t.without(leaf);
            ver.note_generated(1);
            if ver.verify(&smaller).is_some() {
                return Cut { infeasible: Some(t), feasible: smaller };
            }
            if visited.insert(smaller.clone()) {
                stack.push(smaller.clone());
            }
        }
    }
    unreachable!("the root-only subtree is feasible when Gk exists");
}

/// Algorithm 7 (`find-P`): verify whole root-to-leaf paths — for a path
/// `P` ending at leaf `t`, `Gk[P] = I.get(k, q, t)` — then grow a
/// feasible union of paths and walk the first failing path down to the
/// boundary.
fn find_p(ver: &mut Verifier<'_>, space: &QuerySpace) -> Cut {
    // S starts as the leaf positions of T(q); while no single path is
    // feasible, lift S to the parents (lines 12-14 of Algorithm 7).
    let mut s: Vec<u32> = space.leaves(&space.full());
    let mut f: Option<Subtree> = None;
    loop {
        for &t in &s {
            let path = space.path_to(t);
            ver.note_generated(1);
            if ver.verify(&path).is_some() {
                f = Some(path);
                break;
            }
        }
        if f.is_some() {
            break;
        }
        // Lift to parents (dedup, drop the root's self-parent loop).
        let mut parents: Vec<u32> = s.iter().map(|&t| space.parent_of(t)).collect();
        parents.sort_unstable();
        parents.dedup();
        if parents == [0] {
            // Only the root path remains; it is feasible since Gk ≠ ∅.
            f = Some(space.root_only());
            break;
        }
        s = parents;
    }
    let mut f = f.expect("loop always seeds F");

    // Lines 4-11: extend F by each remaining path; on the first failure
    // walk that path from F downward to locate the exact boundary.
    for &t in &s {
        let target = f.union(&space.path_to(t));
        if target == f {
            continue;
        }
        ver.note_generated(1);
        if ver.verify(&target).is_some() {
            f = target;
            continue;
        }
        // The path nodes missing from F, in root-to-leaf (ascending
        // preorder) order; adding them one by one keeps closure.
        let missing: Vec<u32> = space.path_to(t).positions().filter(|&p| !f.contains(p)).collect();
        let mut cur = f.clone();
        for p in missing {
            let cand = cur.with(p);
            ver.note_generated(1);
            if ver.verify(&cand).is_some() {
                cur = cand;
            } else {
                return Cut { infeasible: Some(cand), feasible: cur };
            }
        }
        unreachable!("target was infeasible, so some step must fail");
    }

    // Every probed path fit into F. Climb greedily until F is maximal
    // or an infeasible child provides the cut (completion of the
    // abstract's elided "complete subtrees IF, F" step).
    loop {
        let children = space.lattice_children(&f);
        if children.is_empty() {
            return Cut { infeasible: None, feasible: f };
        }
        let mut grew = false;
        let mut first_infeasible = None;
        for p in children {
            let cand = f.with(p);
            ver.note_generated(1);
            if ver.verify(&cand).is_some() {
                f = cand;
                grew = true;
                break;
            } else if first_infeasible.is_none() {
                first_infeasible = Some(cand);
            }
        }
        if !grew {
            return Cut {
                infeasible: Some(first_infeasible.expect("children nonempty")),
                feasible: f,
            };
        }
    }
}

/// Algorithm 4 (`expandPtree`): walk the feasible/infeasible boundary
/// from the initial cut, recording every maximal feasible subtree.
pub fn expand_ptree(
    ver: &mut Verifier<'_>,
    space: &QuerySpace,
    cut: Cut,
    results: &mut FxHashMap<Subtree, Rc<Vec<VertexId>>>,
) {
    // Line 2: IF = ∅ with F ≠ ∅ means F = T(q) is feasible — it is the
    // unique maximal subtree.
    let Some(if0) = cut.infeasible else {
        let community = ver.verify(&cut.feasible).expect("cut.feasible is feasible");
        results.insert(cut.feasible, community);
        return;
    };
    // Record the seed F when maximal (it lies on the boundary too).
    if ver.is_maximal_feasible(&cut.feasible) {
        let community = ver.verify(&cut.feasible).expect("feasible");
        results.insert(cut.feasible.clone(), community);
    }

    let mut queue: VecDeque<(Subtree, Subtree)> = VecDeque::new();
    let mut seen: FxHashSet<(Subtree, Subtree)> = FxHashSet::default();
    let first = (if0, cut.feasible);
    seen.insert(first.clone());
    queue.push_back(first);

    while let Some((inf, _feas)) = queue.pop_front() {
        // Lines 7-17: examine every parent Yi of IF.
        for leaf in space.lattice_parents(&inf) {
            let yi = inf.without(leaf);
            if ver.verify(&yi).is_some() {
                if ver.is_maximal_feasible(&yi) {
                    let community = ver.verify(&yi).expect("feasible");
                    results.insert(yi.clone(), community);
                }
                for p in space.lattice_children(&yi) {
                    let k_sub = yi.with(p);
                    ver.note_generated(1);
                    if ver.verify(&k_sub).is_none() {
                        push_cut(&mut queue, &mut seen, (k_sub, yi.clone()));
                    } else {
                        // Common child of K and IF (Upper-◇-Property):
                        // C = K ∪ IF differs from K by exactly the node
                        // IF \ Yi and is infeasible because C ⊇ IF.
                        let c = k_sub.union(&inf);
                        if c != k_sub {
                            push_cut(&mut queue, &mut seen, (c, k_sub));
                        }
                    }
                }
            } else {
                for leaf2 in space.lattice_parents(&yi) {
                    let k_sub = yi.without(leaf2);
                    ver.note_generated(1);
                    if ver.verify(&k_sub).is_some() {
                        push_cut(&mut queue, &mut seen, (yi.clone(), k_sub));
                    }
                }
            }
        }
    }
}

fn push_cut(
    queue: &mut VecDeque<(Subtree, Subtree)>,
    seen: &mut FxHashSet<(Subtree, Subtree)>,
    cut: (Subtree, Subtree),
) {
    if seen.insert(cut.clone()) {
        queue.push_back(cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Algorithm, QueryContext};
    use pcs_graph::Graph;
    use pcs_index::CpTree;
    use pcs_ptree::{PTree, Taxonomy};

    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (g, t, profiles)
    }

    #[test]
    fn strategies_have_names() {
        assert_eq!(FindStrategy::Incremental.name(), "find-I");
        assert_eq!(FindStrategy::Decremental.name(), "find-D");
        assert_eq!(FindStrategy::Path.name(), "find-P");
        assert_eq!(FindStrategy::ALL.len(), 3);
    }

    #[test]
    fn all_advanced_variants_match_basic() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let plain = QueryContext::new(&g, &t, &profiles).unwrap();
        let indexed = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        for q in 0..8u32 {
            for k in 0..=3u32 {
                let expect = plain.query(q, k, Algorithm::Basic).unwrap().communities;
                for algo in [Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
                    let got = indexed.query(q, k, algo).unwrap().communities;
                    assert_eq!(expect, got, "q={q} k={k} algo={}", algo.name());
                }
            }
        }
    }

    #[test]
    fn cuts_are_well_formed() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        for q in 0..8u32 {
            for k in 1..=3u32 {
                let space = ctx.space_for(q).unwrap();
                for strategy in FindStrategy::ALL {
                    let mut ver = Verifier::new(&ctx, &space, q, k);
                    if ver.gk().is_none() {
                        continue;
                    }
                    let cut = find_cut(&mut ver, &space, strategy);
                    assert!(
                        ver.verify(&cut.feasible).is_some(),
                        "q={q} k={k} {strategy:?}: F must be feasible"
                    );
                    match &cut.infeasible {
                        None => assert_eq!(cut.feasible, space.full()),
                        Some(inf) => {
                            assert!(ver.verify(inf).is_none(), "IF must be infeasible");
                            assert_eq!(inf.count(), cut.feasible.count() + 1);
                            assert!(cut.feasible.is_subset_of(inf));
                            assert!(space.is_valid(inf));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_tree_feasible_short_circuits() {
        // A clique where everyone shares an identical deep P-tree: the
        // full T(q) is feasible and all strategies return IF = None.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(a, "b").unwrap();
        let profiles: Vec<PTree> = (0..4).map(|_| PTree::from_labels(&t, [b]).unwrap()).collect();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let space = ctx.space_for(0).unwrap();
        for strategy in FindStrategy::ALL {
            let mut ver = Verifier::new(&ctx, &space, 0, 3);
            let cut = find_cut(&mut ver, &space, strategy);
            assert_eq!(cut.infeasible, None, "{strategy:?}");
            assert_eq!(cut.feasible, space.full());
        }
        let out = ctx.query(0, 3, Algorithm::AdvP).unwrap();
        assert_eq!(out.communities.len(), 1);
        assert_eq!(out.communities[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(out.communities[0].subtree.len(), 3);
    }

    #[test]
    fn advanced_examines_fewer_candidates_than_basic_on_middle_heavy_space() {
        // A larger instance where the maximal subtrees sit mid-lattice:
        // advanced should verify fewer candidates than basic generates.
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let plain = QueryContext::new(&g, &t, &profiles).unwrap();
        let indexed = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let b = plain.query(3, 2, Algorithm::Basic).unwrap();
        let a = indexed.query(3, 2, Algorithm::AdvP).unwrap();
        assert_eq!(a.communities, b.communities);
        // Not a strict guarantee on tiny instances, but stats must at
        // least be tracked for both.
        assert!(a.stats.verifications > 0 && b.stats.verifications > 0);
    }
}
