//! Durability-aware serving tests: `durable_epoch` in `/apply` and
//! `/stats`, the `/wal` replication feed, and an [`HttpFollower`]
//! converging with a live primary — including across a follower
//! restart and after the primary reclaims its log.

use pcs_engine::{PcsEngine, QueryRequest};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};
use pcs_serve::{HttpFollower, PcsServer, ReplicaConfig, ReplicaError, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

// --- fixture ---------------------------------------------------------

/// A deterministic 12-vertex instance: two 4-cliques bridged through a
/// 4-cycle, labels spread over a 5-node taxonomy. Small enough that
/// every equivalence check below is exhaustive.
fn instance() -> (Graph, Taxonomy, Vec<PTree>) {
    let mut tax = Taxonomy::new("root");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(Taxonomy::ROOT, "b").unwrap();
    tax.add_child(a, "a1").unwrap();
    tax.add_child(b, "b1").unwrap();
    let n = 12usize;
    let mut edges = Vec::new();
    for base in [0u32, 4] {
        for i in base..base + 4 {
            for j in (i + 1)..base + 4 {
                edges.push((i, j));
            }
        }
    }
    edges.extend([(3, 8), (8, 9), (9, 10), (10, 11), (11, 4)]);
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> =
        (0..n as u32).map(|v| PTree::from_labels(&tax, [v % 5]).unwrap()).collect();
    (g, tax, profiles)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pcs-serve-replication-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_engine(dir: &Path) -> Arc<PcsEngine> {
    let (g, tax, profiles) = instance();
    Arc::new(
        PcsEngine::builder()
            .graph(g)
            .taxonomy(tax)
            .profiles(profiles)
            .durable(dir)
            .build()
            .unwrap(),
    )
}

fn plain_engine() -> Arc<PcsEngine> {
    let (g, tax, profiles) = instance();
    Arc::new(PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap())
}

fn test_config() -> ServeConfig {
    ServeConfig { workers: 2, read_timeout: Duration::from_secs(5), ..ServeConfig::default() }
}

// --- raw client (binary-safe, unlike the JSON-only one in serve.rs) --

fn connect(server: &PcsServer) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

fn read_response(stream: &mut TcpStream) -> (u16, Vec<u8>) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let got = stream.read(&mut chunk).expect("read response head");
        assert!(got > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..got]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let got = stream.read(&mut chunk).expect("read response body");
        assert!(got > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..got]);
    }
    (status, body)
}

fn get(stream: &mut TcpStream, path_and_query: &str) -> (u16, Vec<u8>) {
    stream
        .write_all(
            format!("GET {path_and_query} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    read_response(stream)
}

fn post(stream: &mut TcpStream, path: &str, body: &str) -> (u16, String) {
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let (status, body) = read_response(stream);
    (status, String::from_utf8(body).unwrap())
}

fn json_u64(body: &str, key: &str) -> u64 {
    let tail = body
        .split(&format!("\"{key}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("no key {key} in {body}"));
    tail.chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
}

// --- equivalence -----------------------------------------------------

/// Asserts two engines answer identically: same epoch-independent
/// state (profiles, core numbers) and the same k=2 communities for
/// every vertex.
fn assert_equivalent(got: &PcsEngine, want: &PcsEngine, context: &str) {
    let gs = got.snapshot();
    let ws = want.snapshot();
    assert_eq!(gs.profiles(), ws.profiles(), "{context}: profiles diverge");
    assert_eq!(
        gs.cores().core_numbers(),
        ws.cores().core_numbers(),
        "{context}: core numbers diverge"
    );
    for v in 0..gs.graph().num_vertices() as u32 {
        let g = got.query(&QueryRequest::vertex(v).k(2)).unwrap();
        let w = want.query(&QueryRequest::vertex(v).k(2)).unwrap();
        let gc: Vec<_> = g.communities().iter().map(|c| c.vertices.clone()).collect();
        let wc: Vec<_> = w.communities().iter().map(|c| c.vertices.clone()).collect();
        assert_eq!(gc, wc, "{context}: communities for v={v} diverge");
    }
}

/// A deterministic mixed op stream (edge churn + profile rewrites)
/// rendered as `/apply` bodies, one op per batch. Steps are globally
/// indexed (`start..start + count`) so consecutive calls continue the
/// same stream, and every step is *effective* against the state the
/// prior steps left behind — epochs advance by exactly one per batch:
///
/// * even steps toggle one of the six non-initial edges `(p, p+6)`:
///   step `4m` adds pair `m % 6`, step `4m+2` removes it again;
/// * odd steps flip an odd vertex's profile between the two leaf
///   closures `{a1}` and `{b1}`, starting with whichever differs from
///   the fixture's initial single-label profile.
fn scripted_bodies(start: usize, count: usize) -> Vec<String> {
    (start..start + count)
        .map(|i| {
            if i % 2 == 0 {
                let pair = ((i / 4) % 6) as u32;
                let (u, v) = (pair, pair + 6);
                if i % 4 == 0 {
                    format!("add {u} {v}\n")
                } else {
                    format!("remove {u} {v}\n")
                }
            } else {
                let v = (i % 12) as u32;
                let first = if v % 5 == 3 { 4 } else { 3 };
                let second = if first == 3 { 4 } else { 3 };
                let label = if (i / 12) % 2 == 0 { first } else { second };
                format!("profile {v} {label}\n")
            }
        })
        .collect()
}

// --- tests -----------------------------------------------------------

#[test]
fn apply_and_stats_expose_the_durable_epoch() {
    let dir = tmp_dir("durable-epoch");
    let engine = durable_engine(&dir);
    let server = PcsServer::start(Arc::clone(&engine), "127.0.0.1:0", test_config()).unwrap();
    let mut conn = connect(&server);

    // Each apply response carries both counters; the WAL fsyncs before
    // the epoch publishes, so durable covers at least the reported
    // epoch, and both advance monotonically.
    let mut last_epoch = 0u64;
    let mut last_durable = 0u64;
    for body in scripted_bodies(0, 12) {
        let (status, resp) = post(&mut conn, "/apply", &body);
        assert_eq!(status, 200, "{resp}");
        let epoch = json_u64(&resp, "epoch");
        let durable = json_u64(&resp, "durable_epoch");
        assert!(epoch > last_epoch, "epoch regressed: {resp}");
        assert!(durable >= epoch, "durable_epoch lags the batch it acked: {resp}");
        assert!(durable >= last_durable, "durable_epoch regressed: {resp}");
        last_epoch = epoch;
        last_durable = durable;
    }

    // Quiescent /stats agrees with the engine: both counters present
    // and equal (nothing is in flight between fsync and publish).
    let (status, body) = get(&mut conn, "/stats");
    let body = String::from_utf8(body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "epoch"), last_epoch);
    assert_eq!(json_u64(&body, "durable_epoch"), last_epoch);
    assert_eq!(engine.durable_epoch(), Some(last_epoch));

    let stats = server.shutdown();
    assert_eq!(stats.durable_epoch, Some(last_epoch));
    assert_eq!(stats.epoch, last_epoch);
}

#[test]
fn non_durable_servers_report_null_durable_epoch() {
    let server = PcsServer::start(plain_engine(), "127.0.0.1:0", test_config()).unwrap();
    let mut conn = connect(&server);

    let (status, resp) = post(&mut conn, "/apply", "add 0 9\n");
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"durable_epoch\":null"), "{resp}");

    let (status, body) = get(&mut conn, "/stats");
    let body = String::from_utf8(body).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"durable_epoch\":null"), "{body}");

    // And the replication feed refuses with a typed 400: there is no
    // log to tail.
    let (status, body) = get(&mut conn, "/wal?from=0");
    let body = String::from_utf8(body).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"error\":\"not_durable\""), "{body}");

    server.shutdown();
}

#[test]
fn wal_route_rejections_are_typed() {
    let dir = tmp_dir("wal-rejections");
    let server = PcsServer::start(durable_engine(&dir), "127.0.0.1:0", test_config()).unwrap();
    let mut conn = connect(&server);

    let (status, body) = get(&mut conn, "/wal");
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("missing_param"));

    let (status, body) = get(&mut conn, "/wal?from=banana");
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("bad_param"));

    let (status, body) = post(&mut conn, "/wal", "");
    assert_eq!(status, 405);
    assert!(body.contains("method_not_allowed"));

    server.shutdown();
}

#[test]
fn http_follower_converges_and_survives_restart() {
    let dir = tmp_dir("follower");
    let primary = durable_engine(&dir);
    let server = PcsServer::start(Arc::clone(&primary), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let mut conn = connect(&server);

    // Seed the follower from the primary's epoch-0 snapshot — the
    // out-of-band snapshot ship a real deployment would do.
    let seed = dir.join(pcs_engine::SNAPSHOT_FILE);
    let follower_engine = PcsEngine::builder().load(&seed).unwrap();
    let mut follower = HttpFollower::new(follower_engine, addr, ReplicaConfig::default());
    assert_eq!(follower.poll().unwrap(), 0, "nothing to replicate yet");

    let bodies = scripted_bodies(0, 24);
    let (first, rest) = bodies.split_at(9);

    // Phase 1: the follower tails a batch of live writes.
    for body in first {
        assert_eq!(post(&mut conn, "/apply", body).0, 200);
    }
    let applied = follower.poll().unwrap();
    assert_eq!(applied as u64, primary.epoch(), "follower missed epochs");
    assert_eq!(follower.epoch(), primary.epoch());
    assert_equivalent(follower.engine(), &primary, "after first tail");

    // Phase 2: restart the follower mid-stream. Its state survives as
    // a plain snapshot; the new instance resumes from its own epoch,
    // not from zero — no frames are re-fetched below its watermark.
    let parked = tmp_dir("follower-restart").join("parked.pcs");
    follower.engine().save(&parked).unwrap();
    let parked_epoch = follower.epoch();
    drop(follower);

    for body in rest {
        assert_eq!(post(&mut conn, "/apply", body).0, 200);
    }

    let revived = PcsEngine::builder().load(&parked).unwrap();
    assert_eq!(revived.epoch(), parked_epoch);
    let mut follower = HttpFollower::new(revived, addr, ReplicaConfig::default());
    let applied = follower.poll().unwrap();
    assert_eq!(applied as u64, primary.epoch() - parked_epoch);
    assert_eq!(follower.epoch(), primary.epoch());
    assert_equivalent(follower.engine(), &primary, "after restart");

    // A tiny per-request budget still converges — just over more
    // round-trips within one poll().
    for body in scripted_bodies(24, 6) {
        assert_eq!(post(&mut conn, "/apply", &body).0, 200);
    }
    let cfg = ReplicaConfig { max_bytes: 64, ..ReplicaConfig::default() };
    let mut trickle = HttpFollower::new(PcsEngine::builder().load(&parked).unwrap(), addr, cfg);
    trickle.poll().unwrap();
    assert_eq!(trickle.epoch(), primary.epoch());
    assert_equivalent(trickle.engine(), &primary, "trickle catch-up");

    server.shutdown();
}

#[test]
fn reclaimed_log_answers_410_and_the_follower_reports_a_snapshot_gap() {
    let dir = tmp_dir("reclaim");
    let primary = durable_engine(&dir);
    let server = PcsServer::start(Arc::clone(&primary), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let mut conn = connect(&server);

    // A follower seeded from the epoch-0 snapshot, parked before any
    // traffic. Load it NOW: the checkpoint below overwrites the file.
    let stale = PcsEngine::builder().load(dir.join(pcs_engine::SNAPSHOT_FILE)).unwrap();

    for body in scripted_bodies(0, 8) {
        assert_eq!(post(&mut conn, "/apply", &body).0, 200);
    }
    // Checkpoint: the snapshot advances and every covered segment is
    // reclaimed, so the log no longer reaches back to epoch 0.
    let watermark = primary.checkpoint().unwrap();
    assert_eq!(watermark, primary.epoch());

    let (status, body) = get(&mut conn, "/wal?from=0");
    assert_eq!(status, 410, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8(body).unwrap().contains("\"error\":\"wal_gone\""));

    let mut follower = HttpFollower::new(stale, addr, ReplicaConfig::default());
    match follower.poll() {
        Err(ReplicaError::SnapshotGap { .. }) => {}
        other => panic!("expected SnapshotGap, got {other:?}"),
    }

    // Re-seeding in place from the fresh checkpoint snapshot resumes
    // tailing. The seed is a *lazy* load: only the snapshot's
    // structural prefix is decoded, the graph faults in on the first
    // replica query afterwards.
    let seeded_epoch = follower.reseed_from_snapshot(dir.join(pcs_engine::SNAPSHOT_FILE)).unwrap();
    assert_eq!(seeded_epoch, watermark);
    assert!(
        !follower.engine().snapshot().graph_resident(),
        "a re-seed must not decode the graph eagerly"
    );
    let io = follower.engine().snapshot_io().expect("lazy re-seed exposes IO counters");
    assert!(
        io.bytes_read < io.file_len,
        "re-seed read the whole snapshot ({} of {} bytes)",
        io.bytes_read,
        io.file_len
    );
    for body in scripted_bodies(8, 4) {
        assert_eq!(post(&mut conn, "/apply", &body).0, 200);
    }
    follower.poll().unwrap();
    assert_eq!(follower.epoch(), primary.epoch());
    assert_equivalent(follower.engine(), &primary, "after re-seed");

    // A stale seed (the old epoch-0 snapshot shape) is refused: the
    // replica never rewinds below what it already serves.
    let stale_path = dir.join("stale.snapshot");
    {
        let (g, tax, profiles) = instance();
        let epoch0 =
            PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap();
        epoch0.save(&stale_path).unwrap();
    }
    match follower.reseed_from_snapshot(&stale_path) {
        Err(ReplicaError::StaleSeed { snapshot_epoch: 0, follower_epoch }) => {
            assert_eq!(follower_epoch, primary.epoch());
        }
        other => panic!("expected StaleSeed, got {other:?}"),
    }
    assert_eq!(follower.epoch(), primary.epoch(), "failed re-seed leaves the replica intact");
    std::fs::remove_file(&stale_path).unwrap();

    server.shutdown();
}
