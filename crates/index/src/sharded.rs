//! The label-sharded CP-tree: per-label shards materialized on demand.
//!
//! The paper's CP-tree is literally a per-label head map of independent
//! CL-trees, so nothing forces all of them to exist at once. This
//! module splits the index into one [`IndexShard`] per populated label
//! behind a [`ShardedCpIndex`] facade:
//!
//! * the **facade** (per-label member lists over the epoch's shared
//!   profile `Arc`) is built eagerly — one bucketing pass, no
//!   CL-trees, milliseconds where a full build takes hundreds;
//! * each **shard** (a label's CL-tree) materializes on first probe
//!   through a per-label [`OnceLock`] slot, so concurrent readers
//!   materialize *distinct* shards independently and race on the same
//!   shard at most once;
//! * a query only ever touches the labels in its subtree lattice
//!   (`T(q)`'s closure), so time-to-first-query tracks the queried
//!   labels' shard sizes, not the whole taxonomy;
//! * the incremental-update path **patches resident shards and merely
//!   invalidates absent ones** — a shard nobody queried is never built
//!   just to be patched;
//! * shards can be rehydrated from a snapshot through a [`ShardSource`]
//!   (the store's partial-load mode) instead of rebuilt from the graph,
//!   falling back to a from-graph build whenever the source cannot
//!   produce a structurally valid shard for the current members.
//!
//! The monolithic [`CpTree`] remains as the reproduction-layer /
//! differential-testing reference; both shapes classify update batches
//! through the same helpers, so they cannot drift.

use std::sync::{Arc, OnceLock};

use pcs_graph::core::CoreDecomposition;
use pcs_graph::{Graph, GraphBuilder, GraphHandle, VertexId};
use pcs_ptree::{LabelId, PTree, ProfilesHandle, Taxonomy};

use crate::cltree::ClTree;
use crate::cptree::{
    classify_batch, edge_change_preserves, invalidation_set_from, CpPatchStats, CpTree, GraphDelta,
};
use crate::{IndexError, Result};
use pcs_graph::FxHashSet;

/// One materialized shard: a label and the CL-tree of the subgraph
/// induced by its carriers. The label's sorted member list is the
/// CL-tree's member array.
#[derive(Clone, Debug)]
pub struct IndexShard {
    /// The label this shard indexes.
    pub label: LabelId,
    /// The per-label CL-tree.
    pub cl: ClTree,
}

/// A pluggable shard supplier: given a label, produce its CL-tree from
/// somewhere cheaper than a from-graph build (in practice, the
/// snapshot store's lazily decoded per-shard payloads).
///
/// A source is advisory: the index cross-checks every supplied tree's
/// member list against its own bookkeeping and falls back to building
/// from the graph on any mismatch or failure — a source can make
/// materialization faster, never wrong.
pub trait ShardSource: Send + Sync {
    /// The CL-tree of `label`, if this source can produce one.
    fn load_shard(&self, label: LabelId) -> Option<ClTree>;
}

/// A pluggable member-table supplier for lazily loaded facades: given a
/// label, produce its sorted member list from storage.
///
/// Unlike [`ShardSource`], a member source is **authoritative** — the
/// facade has no other way to learn a label's members, only their count
/// (the eager length hints). A source therefore must validate what it
/// returns (checksums, sortedness, vertex range) and, per the storage
/// layer's discipline, record a typed fault *before* returning `None`
/// on damage; the facade then answers that label as empty and the
/// owning engine converts the recorded fault into a typed error rather
/// than serving the hole.
pub trait MemberSource: Send + Sync {
    /// The sorted members of `label`, or `None` on failure (fault
    /// recorded by the source).
    fn load_members(&self, label: LabelId) -> Option<Vec<VertexId>>;
}

/// One label's member list: the authoritative count is always resident
/// (it comes from the snapshot's length table, or from the list
/// itself), the list materializes on first touch when the facade was
/// loaded lazily.
struct MemberSlot {
    /// Number of members, known without materializing.
    len: usize,
    /// The sorted list; per-label `Arc` so the writer's clone shares
    /// every untouched list (copy-on-write via `Arc::make_mut`).
    cell: OnceLock<Arc<Vec<VertexId>>>,
}

impl MemberSlot {
    fn resident(list: Vec<VertexId>) -> MemberSlot {
        MemberSlot { len: list.len(), cell: OnceLock::from(Arc::new(list)) }
    }

    fn pending(len: usize) -> MemberSlot {
        MemberSlot { len, cell: OnceLock::new() }
    }
}

impl Clone for MemberSlot {
    fn clone(&self) -> MemberSlot {
        let cell = match self.cell.get() {
            Some(arc) => OnceLock::from(Arc::clone(arc)),
            None => OnceLock::new(),
        };
        MemberSlot { len: self.len, cell }
    }
}

/// The label-sharded CP-tree index. See the [module docs](self).
///
/// Shared references materialize shards on demand (`&self`, via
/// per-label `OnceLock`s); the engine's writer patches a cloned index
/// through [`ShardedCpIndex::apply_batch`]. Cloning shares resident
/// shards (`Arc`) instead of deep-copying them, so the writer's
/// clone-and-patch cost tracks the invalidation set, not the index
/// size.
pub struct ShardedCpIndex {
    /// The graph shards are built against (the epoch's graph) — ready
    /// for built facades, file-backed for lazily loaded replicas (the
    /// first from-graph shard build faults the whole section in).
    graph: GraphHandle,
    /// Per label: the sorted vertices carrying it (`len == 0` ⇔
    /// unpopulated). Lengths are eager and authoritative: a shard's
    /// member list always equals this table's. Lists are per-label
    /// `Arc`s so the writer's clone shares every untouched list and
    /// copies only the lists its batch actually patches; lazily loaded
    /// facades materialize each list on first touch through
    /// [`MemberSource`].
    members_of: Vec<MemberSlot>,
    /// Per label: the materialization slot.
    slots: Vec<OnceLock<Arc<IndexShard>>>,
    /// The epoch's per-vertex P-trees, shared with the owning snapshot
    /// (the facade stores no copy). Replaces the monolithic index's
    /// `headMap`: `T(v)` restoration is a profile clone, and the update
    /// classifier reads label sets straight from here.
    profiles: ProfilesHandle,
    /// Optional member-table supplier (file-backed lazy load).
    member_source: Option<Arc<dyn MemberSource>>,
    /// Optional shard supplier (snapshot partial load).
    source: Option<Arc<dyn ShardSource>>,
    /// `source_live[l]` — the source's payload for `l` still describes
    /// the current epoch. Cleared per label by `apply_batch` the moment
    /// a delta invalidates it.
    source_live: Vec<bool>,
    /// The epoch's global core decomposition, when the owner shares
    /// one: the root label's shard covers every vertex, so its CL-tree
    /// is built straight from these cores with no induced-subgraph
    /// copy and no re-peel.
    global_cores: Option<Arc<OnceLock<CoreDecomposition>>>,
    n: usize,
}

impl ShardedCpIndex {
    /// Builds the facade only: one bucketing pass over the (shared)
    /// profiles into per-label member lists. O(Σ|T(v)|), allocation
    /// per populated label only — no CL-tree is constructed and no
    /// head map is copied; shards materialize on first probe.
    pub fn build(
        graph: Arc<Graph>,
        tax: &Taxonomy,
        profiles: Arc<Vec<PTree>>,
    ) -> Result<ShardedCpIndex> {
        if graph.num_vertices() != profiles.len() {
            return Err(IndexError::ProfileCountMismatch {
                vertices: graph.num_vertices(),
                profiles: profiles.len(),
            });
        }
        let mut members_of: Vec<Vec<VertexId>> = vec![Vec::new(); tax.len()];
        for (v, p) in profiles.iter().enumerate() {
            for &l in p.nodes() {
                match members_of.get_mut(l as usize) {
                    Some(list) => list.push(v as VertexId),
                    None => return Err(IndexError::UnknownLabel(l)),
                }
            }
        }
        let n = graph.num_vertices();
        Ok(ShardedCpIndex {
            graph: GraphHandle::ready(graph),
            slots: (0..members_of.len()).map(|_| OnceLock::new()).collect(),
            source_live: vec![false; members_of.len()],
            members_of: members_of.into_iter().map(MemberSlot::resident).collect(),
            profiles: ProfilesHandle::dense(profiles),
            member_source: None,
            source: None,
            global_cores: None,
            n,
        })
    }

    /// Converts a monolithic [`CpTree`] into a fully resident sharded
    /// index (the test bridge between the two shapes). `profiles` must
    /// be the same profiles the monolithic index was built from.
    pub fn from_cp_tree(
        idx: CpTree,
        graph: Arc<Graph>,
        profiles: Arc<Vec<PTree>>,
    ) -> ShardedCpIndex {
        let (nodes, _head_map, n) = idx.into_parts();
        debug_assert_eq!(n, graph.num_vertices());
        debug_assert_eq!(n, profiles.len());
        let mut members_of = Vec::with_capacity(nodes.len());
        let mut slots = Vec::with_capacity(nodes.len());
        for node in nodes {
            match node {
                Some(node) => {
                    members_of.push(MemberSlot::resident(node.cl.members().to_vec()));
                    slots.push(OnceLock::from(Arc::new(IndexShard {
                        label: node.label,
                        cl: node.cl,
                    })));
                }
                None => {
                    members_of.push(MemberSlot::resident(Vec::new()));
                    slots.push(OnceLock::new());
                }
            }
        }
        ShardedCpIndex {
            graph: GraphHandle::ready(graph),
            source_live: vec![false; members_of.len()],
            members_of,
            slots,
            profiles: ProfilesHandle::dense(profiles),
            member_source: None,
            source: None,
            global_cores: None,
            n,
        }
    }

    /// Assembles an index from loaded (snapshot) parts: the facade
    /// arrays, any already-decoded resident shards, and an optional
    /// lazy [`ShardSource`] for the rest. Re-validates the cheap
    /// structural invariants the query paths rely on; the supplied
    /// `ClTree`s are assumed structurally validated by their own
    /// `from_flat`.
    pub fn from_loaded(
        graph: Arc<Graph>,
        profiles: Arc<Vec<PTree>>,
        members_of: Vec<Vec<VertexId>>,
        resident: Vec<(LabelId, ClTree)>,
        source: Option<Arc<dyn ShardSource>>,
    ) -> Result<ShardedCpIndex> {
        let corrupt = |detail: String| IndexError::CorruptIndex { detail };
        let n = graph.num_vertices();
        let num_labels = members_of.len();
        if profiles.len() != n {
            return Err(corrupt(format!(
                "profiles cover {} vertices, graph has {n}",
                profiles.len()
            )));
        }
        for (label, members) in members_of.iter().enumerate() {
            if members.windows(2).any(|w| w.first() >= w.last()) {
                return Err(corrupt(format!("members of label {label} unsorted or duplicated")));
            }
            if members.last().is_some_and(|&v| v as usize >= n) {
                return Err(corrupt(format!("label {label} indexes out-of-range vertices")));
            }
        }
        let mut slots: Vec<OnceLock<Arc<IndexShard>>> =
            (0..num_labels).map(|_| OnceLock::new()).collect();
        let mut prev: Option<LabelId> = None;
        for (label, cl) in resident {
            if label as usize >= num_labels {
                return Err(corrupt(format!("resident shard label {label} out of range")));
            }
            if prev.is_some_and(|p| p >= label) {
                return Err(corrupt("resident shard labels not strictly ascending".into()));
            }
            prev = Some(label);
            if members_of.get(label as usize).map(Vec::as_slice) != Some(cl.members()) {
                return Err(corrupt(format!(
                    "shard {label} member list disagrees with the member table"
                )));
            }
            if cl.members().is_empty() {
                return Err(corrupt(format!("label {label} has a shard but no members")));
            }
            if let Some(slot) = slots.get_mut(label as usize) {
                *slot = OnceLock::from(Arc::new(IndexShard { label, cl }));
            }
        }
        Ok(ShardedCpIndex {
            graph: GraphHandle::ready(graph),
            source_live: vec![source.is_some(); num_labels],
            members_of: members_of.into_iter().map(MemberSlot::resident).collect(),
            slots,
            profiles: ProfilesHandle::dense(profiles),
            member_source: None,
            source,
            global_cores: None,
            n,
        })
    }

    /// Assembles a facade over **lazily loaded** parts: a file-backed
    /// graph handle, file-backed profiles, the eager per-label member
    /// counts, and sources that fault in each member list and shard
    /// payload on first touch. This is the scale load path — nothing
    /// beyond the supplied counts is read here, so time-to-first-query
    /// tracks the labels the query touches, not the file size.
    ///
    /// The counts are authoritative (`member_lens[l] == 0` means
    /// unpopulated and is answered without ever consulting the
    /// source); the member lists a source later supplies must be
    /// validated by that source (checksums, sortedness, vertex range),
    /// with failures recorded in the storage layer's fault cell before
    /// it returns `None`.
    pub fn from_lazy_parts(
        graph: GraphHandle,
        profiles: ProfilesHandle,
        member_lens: Vec<usize>,
        members: Arc<dyn MemberSource>,
        shards: Option<Arc<dyn ShardSource>>,
    ) -> Result<ShardedCpIndex> {
        let n = graph.num_vertices();
        if profiles.len() != n {
            return Err(IndexError::ProfileCountMismatch { vertices: n, profiles: profiles.len() });
        }
        let num_labels = member_lens.len();
        Ok(ShardedCpIndex {
            graph,
            slots: (0..num_labels).map(|_| OnceLock::new()).collect(),
            source_live: vec![shards.is_some(); num_labels],
            members_of: member_lens.into_iter().map(MemberSlot::pending).collect(),
            profiles,
            member_source: Some(members),
            source: shards,
            global_cores: None,
            n,
        })
    }

    /// Shares the owner's per-epoch global core decomposition, so any
    /// shard covering every vertex (the root label) is assembled from
    /// it directly instead of re-peeling the whole graph. The cell
    /// must describe [`ShardedCpIndex`]'s current graph; a later
    /// [`apply_batch`](ShardedCpIndex::apply_batch) that changes the
    /// graph **drops** the cell defensively, so a caller who forgets
    /// to re-set it falls back to a correct from-graph peel rather
    /// than building the root shard on stale cores.
    pub fn set_global_cores(&mut self, cores: Arc<OnceLock<CoreDecomposition>>) {
        self.global_cores = Some(cores);
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Total number of taxonomy labels (populated or not).
    pub fn num_labels(&self) -> usize {
        self.members_of.len()
    }

    /// Number of populated labels (carried by at least one vertex) —
    /// resident or not. Answered from the eager counts; never
    /// materializes a member list.
    pub fn num_populated_labels(&self) -> usize {
        self.members_of.iter().filter(|m| m.len > 0).count()
    }

    /// Member count of label `i` — always known without materializing.
    fn member_len(&self, i: usize) -> usize {
        self.members_of.get(i).map_or(0, |m| m.len)
    }

    /// The sorted member list of label `i`, materializing it through
    /// the [`MemberSource`] on first touch when the facade was loaded
    /// lazily. An unpopulated label (`len == 0`) never consults the
    /// source; a source failure materializes as empty — the source has
    /// recorded its typed fault, which the owner surfaces instead of
    /// any answer derived from the hole.
    fn members(&self, i: usize) -> &[VertexId] {
        let Some(slot) = self.members_of.get(i) else { return &[] };
        if slot.len == 0 {
            return &[];
        }
        if let Some(list) = slot.cell.get() {
            return list;
        }
        let Some(source) = &self.member_source else {
            // Unreachable by construction: eager facades materialize
            // every list at build time. Empty is the non-panicking
            // answer.
            return &[];
        };
        slot.cell.get_or_init(|| Arc::new(source.load_members(i as LabelId).unwrap_or_default()))
    }

    /// Number of currently materialized shards. Never triggers
    /// materialization (the serving observability metric).
    pub fn resident_shards(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }

    /// The shard of `label` **if already materialized** — never builds.
    pub fn shard_if_resident(&self, label: LabelId) -> Option<&IndexShard> {
        self.slots.get(label as usize)?.get().map(Arc::as_ref)
    }

    /// The shard of `label`, materializing it on first touch (`None`
    /// for unpopulated labels). Concurrent callers materializing
    /// distinct labels proceed independently; the same label is built
    /// exactly once per epoch.
    pub fn shard(&self, label: LabelId) -> Option<&IndexShard> {
        let i = label as usize;
        if self.member_len(i) == 0 {
            return None;
        }
        Some(self.slots.get(i)?.get_or_init(|| Arc::new(self.build_shard(label))))
    }

    /// Materializes every populated shard, fanning out over up to
    /// `threads` workers (work-stealing over labels, like the
    /// monolithic shard-parallel build). Idempotent.
    pub fn materialize_all(&self, threads: usize) {
        let pending: Vec<LabelId> = self
            .members_of
            .iter()
            .zip(&self.slots)
            .enumerate()
            .filter(|(_, (m, slot))| m.len > 0 && slot.get().is_none())
            .map(|(l, _)| l as LabelId)
            .collect();
        if pending.is_empty() {
            return;
        }
        let threads = threads.max(1).min(pending.len());
        if threads == 1 {
            for &label in &pending {
                let _ = self.shard(label);
            }
            return;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (pending, next) = (&pending, &next);
            for _ in 0..threads {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&label) = pending.get(i) else { break };
                    let _ = self.shard(label);
                });
            }
        });
    }

    /// Builds (or rehydrates) one shard. Root-sized shards reuse the
    /// shared global core decomposition; everything else peels its
    /// induced subgraph.
    fn build_shard(&self, label: LabelId) -> IndexShard {
        let members: &[VertexId] = self.members(label as usize);
        if self.source_live.get(label as usize).copied().unwrap_or(false) {
            if let Some(source) = &self.source {
                if let Some(cl) = source.load_shard(label) {
                    if cl.members() == members {
                        return IndexShard { label, cl };
                    }
                }
            }
        }
        let Ok(graph) = self.graph.get() else {
            // The graph failed to materialize; its source has recorded
            // the typed fault and the owner refuses answers while it is
            // set. An edgeless stand-in keeps this path infallible —
            // the shard exists, answers nothing, and is never trusted.
            let fallback = GraphBuilder::new(self.n).build();
            return IndexShard { label, cl: ClTree::build_on_subset(&fallback, members) };
        };
        let cl = if members.len() == self.n {
            match &self.global_cores {
                Some(cell) => {
                    ClTree::build_full(graph, cell.get_or_init(|| CoreDecomposition::new(graph)))
                }
                None => ClTree::build_full(graph, &CoreDecomposition::new(graph)),
            }
        } else {
            ClTree::build_on_subset(graph, members)
        };
        IndexShard { label, cl }
    }

    /// Sorted vertices carrying `label` (empty slice when none). Never
    /// materializes a shard; on a lazily loaded facade the first call
    /// for a populated label faults its member run in.
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.members(label as usize)
    }

    /// The paper's `I.get(k, q, t)` as a borrowed arena slice (the
    /// query hot path) — materializes `label`'s shard on first touch.
    /// Distinct but unsorted; `None` when the ĉore does not exist.
    #[inline]
    pub fn get_ref(&self, k: u32, q: VertexId, label: LabelId) -> Option<&[VertexId]> {
        self.shard(label)?.cl.community_ref(q, k)
    }

    /// The epoch's P-tree of `v` — the sharded replacement for the
    /// monolithic index's headMap restoration (`tax` is unused here;
    /// kept for signature parity with [`CpTree::restore_ptree`]).
    pub fn restore_ptree(&self, _tax: &Taxonomy, v: VertexId) -> PTree {
        // An out-of-range vertex (impossible for vertices of the
        // indexed graph) restores as the trivial root-only profile.
        self.profiles.get(v as usize).cloned().unwrap_or_else(PTree::root_only)
    }

    /// The pre-batch carried-label oracle for the shared maintenance
    /// classifier: `T(v).nodes()` straight from the profile share.
    fn labels_of(&self, v: VertexId) -> FxHashSet<LabelId> {
        self.profiles
            .get(v as usize)
            .map(|p| p.nodes().iter().copied().collect())
            .unwrap_or_default()
    }

    /// See [`CpTree::invalidation_set`] — identical classification,
    /// reading this index's shared pre-batch profiles.
    pub fn invalidation_set(
        &self,
        profiles_after: &[PTree],
        deltas: &[GraphDelta],
    ) -> Vec<LabelId> {
        invalidation_set_from(&|v| self.labels_of(v), profiles_after, deltas)
    }

    /// Applies a batch of effective graph deltas: membership tables and
    /// the `headMap` are always brought up to date, **resident** shards
    /// are re-verified (bounded no-op check) or rebuilt, and **absent**
    /// shards are merely invalidated — their slot stays cold and any
    /// snapshot source for them is marked stale, so the cost of a
    /// shard nobody queried is bookkeeping, never a CL-tree build.
    ///
    /// Same delta contract as [`CpTree::apply_batch`]; after the call
    /// the index answers exactly like a from-scratch build on the
    /// post-batch inputs, shard by shard and lazily.
    ///
    /// `cores_after` is the post-batch global core decomposition cell,
    /// when the owner maintains one: it replaces the previous epoch's
    /// shared cell *before* any resident full-vertex-set shard is
    /// rebuilt, so the root shard never re-peels the graph. Passing
    /// `None` drops the old cell whenever the graph changed (stale
    /// cores must never build a shard) — correctness is preserved
    /// either way, only the shortcut is lost.
    ///
    /// `threads` bounds the workers the resident-shard rebuild phase
    /// fans out over (work-stealing over invalidated labels, exactly
    /// like [`materialize_all`](Self::materialize_all)); `1` keeps the
    /// whole patch sequential. Facade bookkeeping (member tables,
    /// invalidation) is always sequential — it is O(batch), not
    /// O(shard).
    pub fn apply_batch(
        &mut self,
        g_after: &Arc<Graph>,
        profiles_after: &Arc<Vec<PTree>>,
        deltas: &[GraphDelta],
        cores_after: Option<Arc<OnceLock<CoreDecomposition>>>,
        threads: usize,
    ) -> CpPatchStats {
        debug_assert_eq!(self.n, g_after.num_vertices(), "vertex set is fixed");
        debug_assert_eq!(self.n, profiles_after.len());
        let touch = classify_batch(&|v| self.labels_of(v), profiles_after, deltas);
        let mut stats = CpPatchStats::default();
        let mut rebuild: Vec<LabelId> = Vec::new();
        // Membership-changed labels: patch the member table in place,
        // then rebuild (resident) or invalidate (absent).
        let mut profile_touched: Vec<LabelId> = touch.profile_touch.iter().copied().collect();
        profile_touched.sort_unstable();
        let member_source = self.member_source.clone();
        for &label in &profile_touched {
            stats.labels_touched += 1;
            let i = label as usize;
            // Copy-on-write: only the lists the batch touches are
            // duplicated; every other label keeps sharing the previous
            // epoch's `Arc`. A lazily loaded list must be resident to
            // be edited, so it is faulted in first (a load failure
            // patches an empty list — the recorded fault fails queries
            // upstream, so the hole is never served).
            if let Some(slot) = self.members_of.get_mut(i) {
                if slot.cell.get().is_none() {
                    let loaded = if slot.len == 0 {
                        Vec::new()
                    } else {
                        member_source
                            .as_ref()
                            .and_then(|s| s.load_members(label))
                            .unwrap_or_default()
                    };
                    let _ = slot.cell.set(Arc::new(loaded));
                }
                if let Some(arc) = slot.cell.get_mut() {
                    let list = Arc::make_mut(arc);
                    touch.patch_members(label, list);
                    slot.len = list.len();
                }
            }
            if let Some(live) = self.source_live.get_mut(i) {
                *live = false;
            }
            if self.slots.get(i).is_some_and(|s| s.get().is_some()) {
                rebuild.push(label);
            } else {
                stats.labels_invalidated += 1;
            }
        }
        // Edge-touched labels: membership is unchanged; resident shards
        // run the bounded no-op check (single edge only) or rebuild,
        // absent ones are invalidated.
        for (&label, &(count, (u, v, added))) in &touch.edge_touch {
            if touch.profile_touch.contains(&label) {
                continue; // already handled above
            }
            stats.labels_touched += 1;
            let i = label as usize;
            match self.slots.get(i).and_then(OnceLock::get) {
                Some(shard) => {
                    if count == 1 && edge_change_preserves(&shard.cl, g_after, u, v, added) {
                        stats.labels_skipped += 1;
                    } else {
                        if let Some(live) = self.source_live.get_mut(i) {
                            *live = false;
                        }
                        rebuild.push(label);
                    }
                }
                None => {
                    if let Some(live) = self.source_live.get_mut(i) {
                        *live = false;
                    }
                    stats.labels_invalidated += 1;
                }
            }
        }
        // Rebuild the resident invalidated shards against the new
        // graph. The graph handle must be swapped first: `build_shard`
        // reads it, and future on-demand materializations of the
        // invalidated absent shards must see the post-batch graph too.
        // A shared global-cores cell describes the *old* graph: swap
        // in the post-batch cell, or drop the stale one if the caller
        // maintains none and the graph actually changed.
        match cores_after {
            Some(cell) => self.global_cores = Some(cell),
            None => {
                // Provably the same graph (a materialized handle over
                // the same `Arc`)? Keep the cell; otherwise drop it —
                // stale cores must never build a shard.
                let same_graph = self.graph.is_materialized()
                    && self.graph.get().is_ok_and(|g| Arc::ptr_eq(g, g_after));
                if !same_graph {
                    self.global_cores = None;
                }
            }
        }
        self.graph = GraphHandle::ready(Arc::clone(g_after));
        rebuild.sort_unstable();
        // Split the labels that lost their last carrier (slot cleared,
        // nothing to build) from those needing a CL-tree rebuild.
        let mut to_build: Vec<LabelId> = Vec::new();
        for &label in &rebuild {
            let i = label as usize;
            stats.labels_rebuilt += 1;
            if self.member_len(i) == 0 {
                if let Some(slot) = self.slots.get_mut(i) {
                    *slot = OnceLock::new();
                }
            } else {
                to_build.push(label);
            }
        }
        let threads = threads.max(1).min(to_build.len().max(1));
        if threads == 1 {
            for &label in &to_build {
                let shard = Arc::new(self.build_shard(label));
                if let Some(slot) = self.slots.get_mut(label as usize) {
                    *slot = OnceLock::from(shard);
                }
            }
        } else {
            // `build_shard` is `&self` (it only reads the already
            // patched facade tables and the post-batch graph), so
            // workers steal labels from a shared counter — the same
            // shape as `materialize_all` — building into per-label
            // cells; the slots are then installed sequentially once
            // the scope has joined.
            let mut cells: Vec<OnceLock<IndexShard>> = Vec::new();
            cells.resize_with(to_build.len(), OnceLock::new);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let this: &ShardedCpIndex = self;
            std::thread::scope(|scope| {
                let (to_build, cells, next) = (&to_build, &cells, &next);
                for _ in 0..threads {
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&label) = to_build.get(i) else { break };
                        if let Some(cell) = cells.get(i) {
                            let _ = cell.set(this.build_shard(label));
                        }
                    });
                }
            });
            for (i, cell) in cells.into_iter().enumerate() {
                let Some(shard) = cell.into_inner() else { continue };
                if let Some(&label) = to_build.get(i) {
                    if let Some(slot) = self.slots.get_mut(label as usize) {
                        *slot = OnceLock::from(Arc::new(shard));
                    }
                }
            }
        }
        // Swap in the post-batch profile share (one Arc clone — the
        // snapshot the engine is publishing owns the same vector).
        // `member_source` stays: a label no batch has touched still
        // has exactly its on-file member list (touched labels were
        // materialized above and their cells now shadow the source).
        self.profiles = ProfilesHandle::dense(Arc::clone(profiles_after));
        stats
    }

    /// Iterator over the currently resident shards, in ascending label
    /// order (what a snapshot save persists).
    pub fn resident_iter(&self) -> impl Iterator<Item = &IndexShard> + '_ {
        self.slots.iter().filter_map(|s| s.get().map(Arc::as_ref))
    }

    /// Approximate heap footprint in bytes: facade tables plus
    /// **resident** shards (the number that actually bounds a lazy
    /// replica's memory).
    pub fn memory_bytes(&self) -> usize {
        let mut total = 0usize;
        for shard in self.resident_iter() {
            total += shard.cl.memory_bytes();
        }
        for m in &self.members_of {
            if m.cell.get().is_some() {
                total += m.len * std::mem::size_of::<VertexId>();
            }
        }
        // The profile share is owned by the snapshot, not the index;
        // it is deliberately not counted here.
        total
    }
}

/// Deep invariant verification and the corruption hooks its mutation
/// tests seed state through. Compiled only under `debug-invariants`.
#[cfg(feature = "debug-invariants")]
impl ShardedCpIndex {
    /// Cross-checks every structural invariant the query paths rely on
    /// against the **authoritative** epoch state (`graph`, `profiles`
    /// as published by the owning snapshot — not this index's own
    /// copies, so a drifted internal share is itself a finding):
    ///
    /// * facade geometry: vertex count and label count match;
    /// * member-table ⇄ profile consistency: each label's member list
    ///   equals the sorted set of vertices whose profile carries it
    ///   (members ⊆ carrier set and nothing missing);
    /// * every resident shard: label slot agreement, member list equal
    ///   to the facade's (the CL-tree indexes exactly its carriers),
    ///   and full arena-geometry validation by round-tripping the tree
    ///   through [`ClTree::from_flat`] — laminar tiling, topological
    ///   parents, true inverse `arena_pos`, own-range placement.
    pub fn verify_deep(
        &self,
        tax: &Taxonomy,
        graph: &Graph,
        profiles: &[PTree],
    ) -> std::result::Result<(), String> {
        let n = graph.num_vertices();
        if self.n != n {
            return Err(format!("index covers {} vertices, graph has {n}", self.n));
        }
        if self.profiles.len() != n {
            return Err(format!(
                "index profile share covers {} vertices, graph has {n}",
                self.profiles.len()
            ));
        }
        if self.members_of.len() != tax.len() {
            return Err(format!(
                "member table covers {} labels, taxonomy has {}",
                self.members_of.len(),
                tax.len()
            ));
        }
        // Reference bucketing from the authoritative profiles.
        let mut expect: Vec<Vec<VertexId>> = vec![Vec::new(); tax.len()];
        for (v, p) in profiles.iter().enumerate() {
            for &l in p.nodes() {
                match expect.get_mut(l as usize) {
                    Some(list) => list.push(v as VertexId),
                    None => return Err(format!("profile of vertex {v} names unknown label {l}")),
                }
            }
        }
        for (l, want) in expect.iter().enumerate() {
            // `members(l)` materializes a lazily loaded list — the deep
            // verifier deliberately faults everything in, so a damaged
            // run (answered empty, fault recorded) is caught right here
            // as a member-table divergence.
            let mine = self.members(l);
            if mine != want.as_slice() {
                return Err(format!(
                    "member table of label {l} disagrees with the profiles \
                     ({} members recorded, {} carriers exist)",
                    mine.len(),
                    want.len()
                ));
            }
            if self.member_len(l) != want.len() {
                return Err(format!(
                    "member count hint of label {l} disagrees with its list \
                     ({} hinted, {} listed)",
                    self.member_len(l),
                    want.len()
                ));
            }
        }
        for (l, slot) in self.slots.iter().enumerate() {
            let Some(shard) = slot.get() else { continue };
            if shard.label as usize != l {
                return Err(format!("slot {l} holds a shard labelled {}", shard.label));
            }
            let table = self.members(l);
            if shard.cl.members() != table {
                return Err(format!(
                    "resident shard {l} member list diverged from the member table"
                ));
            }
            if shard.cl.members().last().is_some_and(|&v| v as usize >= n) {
                return Err(format!("resident shard {l} indexes out-of-range vertices"));
            }
            ClTree::from_flat(shard.cl.to_flat())
                .map_err(|e| format!("resident shard {l} fails structural validation: {e}"))?;
        }
        Ok(())
    }

    /// Test-only corruption hook: overwrites a label's member table
    /// with no cross-checks, desynchronizing it from the profiles so
    /// mutation tests can assert [`verify_deep`](Self::verify_deep)
    /// catches the mismatch. Never use outside those tests.
    pub fn tamper_member_table_for_test(&mut self, label: LabelId, members: Vec<VertexId>) {
        if let Some(slot) = self.members_of.get_mut(label as usize) {
            *slot = MemberSlot::resident(members);
        }
    }

    /// Test-only corruption hook: forces a shard into a label's slot
    /// with no validation (pair with
    /// [`ClTree::from_flat_unchecked_for_test`] to plant geometry
    /// lies). Never use outside those tests.
    pub fn replace_shard_for_test(&mut self, label: LabelId, cl: ClTree) {
        if let Some(slot) = self.slots.get_mut(label as usize) {
            *slot = OnceLock::from(Arc::new(IndexShard { label, cl }));
        }
    }
}

impl Clone for ShardedCpIndex {
    /// Shares resident shards, per-label member lists, the profile
    /// vector, and the shard source (`Arc` clones throughout); nothing
    /// is deep-copied. This is the writer's clone-and-patch entry
    /// point: O(labels) pointer copies, with the patch then
    /// copy-on-writing only the touched member lists — cost tracks
    /// the invalidation set, not the index size.
    fn clone(&self) -> Self {
        let slots = self
            .slots
            .iter()
            .map(|slot| match slot.get() {
                Some(arc) => OnceLock::from(Arc::clone(arc)),
                None => OnceLock::new(),
            })
            .collect();
        ShardedCpIndex {
            graph: self.graph.clone(),
            members_of: self.members_of.clone(),
            slots,
            profiles: self.profiles.clone(),
            member_source: self.member_source.clone(),
            source: self.source.clone(),
            source_live: self.source_live.clone(),
            global_cores: self.global_cores.clone(),
            n: self.n,
        }
    }
}

impl std::fmt::Debug for ShardedCpIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCpIndex")
            .field("vertices", &self.n)
            .field("labels", &self.members_of.len())
            .field("populated", &self.num_populated_labels())
            .field("resident", &self.resident_shards())
            .field("has_source", &self.source.is_some())
            .finish()
    }
}

/// A borrowed view over either index shape, so the query layer serves
/// both the monolithic reproduction index and the sharded serving
/// index through one zero-cost (enum-dispatched, `Copy`) handle.
#[derive(Clone, Copy)]
pub enum IndexRef<'a> {
    /// The monolithic [`CpTree`] (reproduction / differential layer).
    Monolithic(&'a CpTree),
    /// The sharded serving index (materializes shards on probe).
    Sharded(&'a ShardedCpIndex),
}

impl<'a> IndexRef<'a> {
    /// The paper's `I.get(k, q, t)` as a borrowed slice. On the sharded
    /// shape this materializes the label's shard on first touch.
    #[inline]
    pub fn get_ref(self, k: u32, q: VertexId, label: LabelId) -> Option<&'a [VertexId]> {
        match self {
            IndexRef::Monolithic(idx) => idx.get_ref(k, q, label),
            IndexRef::Sharded(idx) => idx.get_ref(k, q, label),
        }
    }

    /// Restores `T(v)`: headMap upward closure on the monolithic
    /// shape, a shared-profile clone on the sharded one.
    pub fn restore_ptree(self, tax: &Taxonomy, v: VertexId) -> PTree {
        match self {
            IndexRef::Monolithic(idx) => idx.restore_ptree(tax, v),
            IndexRef::Sharded(idx) => idx.restore_ptree(tax, v),
        }
    }

    /// Sorted vertices carrying `label` (never materializes a shard).
    pub fn vertices_with_label(self, label: LabelId) -> &'a [VertexId] {
        match self {
            IndexRef::Monolithic(idx) => idx.vertices_with_label(label),
            IndexRef::Sharded(idx) => idx.vertices_with_label(label),
        }
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(self) -> usize {
        match self {
            IndexRef::Monolithic(idx) => idx.num_vertices(),
            IndexRef::Sharded(idx) => idx.num_vertices(),
        }
    }

    /// Number of populated labels (resident or not).
    pub fn num_populated_labels(self) -> usize {
        match self {
            IndexRef::Monolithic(idx) => idx.num_populated_labels(),
            IndexRef::Sharded(idx) => idx.num_populated_labels(),
        }
    }
}

impl<'a> From<&'a CpTree> for IndexRef<'a> {
    fn from(idx: &'a CpTree) -> Self {
        IndexRef::Monolithic(idx)
    }
}

impl<'a> From<&'a ShardedCpIndex> for IndexRef<'a> {
    fn from(idx: &'a ShardedCpIndex) -> Self {
        IndexRef::Sharded(idx)
    }
}

impl std::fmt::Debug for IndexRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexRef::Monolithic(_) => f.write_str("IndexRef::Monolithic"),
            IndexRef::Sharded(idx) => write!(f, "IndexRef::Sharded({idx:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::DynamicGraph;

    fn figure1() -> (Arc<Graph>, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (Arc::new(g), t, profiles)
    }

    fn sorted_ref(idx: &ShardedCpIndex, k: u32, q: VertexId, label: LabelId) -> Option<Vec<u32>> {
        idx.get_ref(k, q, label).map(|s| {
            let mut v = s.to_vec();
            v.sort_unstable();
            v
        })
    }

    fn sorted_mono(idx: &CpTree, k: u32, q: VertexId, label: LabelId) -> Option<Vec<u32>> {
        idx.get_ref(k, q, label).map(|s| {
            let mut v = s.to_vec();
            v.sort_unstable();
            v
        })
    }

    /// The full query surface of the sharded index equals the
    /// monolithic build's.
    fn assert_matches_monolithic(sharded: &ShardedCpIndex, mono: &CpTree, tax: &Taxonomy) {
        assert_eq!(sharded.num_vertices(), mono.num_vertices());
        assert_eq!(sharded.num_populated_labels(), mono.num_populated_labels());
        for v in 0..sharded.num_vertices() as u32 {
            assert_eq!(sharded.restore_ptree(tax, v), mono.restore_ptree(tax, v), "headMap {v}");
        }
        for label in 0..tax.len() as u32 {
            assert_eq!(sharded.vertices_with_label(label), mono.vertices_with_label(label));
            for q in 0..sharded.num_vertices() as u32 {
                for k in 0..6 {
                    assert_eq!(
                        sorted_ref(sharded, k, q, label),
                        sorted_mono(mono, k, q, label),
                        "label={label} q={q} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn facade_is_cold_until_probed() {
        let (g, t, profiles) = figure1();
        let idx = ShardedCpIndex::build(g, &t, Arc::new(profiles.clone())).unwrap();
        assert_eq!(idx.resident_shards(), 0, "facade build materializes nothing");
        assert_eq!(idx.num_populated_labels(), 7);
        // Membership and profile restoration answer from the facade
        // alone — no shard is ever touched.
        assert_eq!(idx.vertices_with_label(Taxonomy::ROOT).len(), 8);
        assert_eq!(idx.restore_ptree(&t, 1), profiles[1]);
        assert_eq!(idx.resident_shards(), 0);
        // One probe materializes exactly one shard.
        let hw = t.id_of("HW").unwrap();
        assert!(idx.get_ref(1, 0, hw).is_some());
        assert_eq!(idx.resident_shards(), 1);
        assert!(idx.shard_if_resident(hw).is_some());
        assert!(idx.shard_if_resident(Taxonomy::ROOT).is_none());
    }

    #[test]
    fn lazy_probes_match_monolithic_everywhere() {
        let (g, t, profiles) = figure1();
        let mono = CpTree::build(&g, &t, &profiles).unwrap();
        let sharded = ShardedCpIndex::build(g, &t, Arc::new(profiles)).unwrap();
        assert_matches_monolithic(&sharded, &mono, &t);
        // After the sweep everything is resident, and probing again is
        // stable (same Arc).
        assert_eq!(sharded.resident_shards(), sharded.num_populated_labels());
        let hw = t.id_of("HW").unwrap();
        let a = sharded.get_ref(1, 0, hw).unwrap().as_ptr();
        let b = sharded.get_ref(1, 0, hw).unwrap().as_ptr();
        assert_eq!(a, b, "repeated probes borrow the same arena");
    }

    #[test]
    fn materialize_all_parallel_matches_sequential() {
        let (g, t, profiles) = figure1();
        let mono = CpTree::build(&g, &t, &profiles).unwrap();
        let sharded = ShardedCpIndex::build(g, &t, Arc::new(profiles)).unwrap();
        sharded.materialize_all(4);
        assert_eq!(sharded.resident_shards(), sharded.num_populated_labels());
        assert_matches_monolithic(&sharded, &mono, &t);
        sharded.materialize_all(4); // idempotent
        assert_eq!(sharded.resident_shards(), sharded.num_populated_labels());
    }

    #[test]
    fn root_shard_reuses_shared_cores() {
        let (g, t, profiles) = figure1();
        let mono = CpTree::build(&g, &t, &profiles).unwrap();
        let mut sharded = ShardedCpIndex::build(Arc::clone(&g), &t, Arc::new(profiles)).unwrap();
        let cell = Arc::new(OnceLock::new());
        cell.set(CoreDecomposition::new(&g)).unwrap();
        sharded.set_global_cores(Arc::clone(&cell));
        assert_eq!(
            sorted_ref(&sharded, 2, 3, Taxonomy::ROOT),
            sorted_mono(&mono, 2, 3, Taxonomy::ROOT)
        );
        assert_matches_monolithic(&sharded, &mono, &t);
    }

    #[test]
    fn from_cp_tree_is_fully_resident_and_equal() {
        let (g, t, profiles) = figure1();
        let mono = CpTree::build(&g, &t, &profiles).unwrap();
        let sharded =
            ShardedCpIndex::from_cp_tree(mono.clone(), Arc::clone(&g), Arc::new(profiles));
        assert_eq!(sharded.resident_shards(), sharded.num_populated_labels());
        assert_matches_monolithic(&sharded, &mono, &t);
    }

    #[test]
    fn patch_rebuilds_resident_and_invalidates_absent() {
        let (g, t, profiles) = figure1();
        let profiles = Arc::new(profiles);
        let sharded = ShardedCpIndex::build(Arc::clone(&g), &t, Arc::clone(&profiles)).unwrap();
        // Materialize only HW; leave every other shard cold.
        let hw = t.id_of("HW").unwrap();
        assert!(sharded.get_ref(1, 0, hw).is_some());
        let mut patched = sharded.clone();
        // Add A-E: touches r, IS, DMS, HW (their shared labels).
        let mut dyn_g = DynamicGraph::from_graph(&g);
        dyn_g.add_edge(0, 4).unwrap();
        let g_after = Arc::new(dyn_g.to_graph());
        let deltas = [GraphDelta::EdgeAdded { u: 0, v: 4 }];
        let stats = patched.apply_batch(&g_after, &profiles, &deltas, None, 2);
        assert_eq!(stats.labels_touched, 4);
        assert_eq!(
            stats.labels_rebuilt + stats.labels_skipped,
            1,
            "only the resident HW shard was revisited"
        );
        assert_eq!(stats.labels_invalidated, 3, "absent shards invalidated, never built");
        // Cold shards now materialize against the *new* graph; the
        // whole surface equals a monolithic rebuild.
        let fresh = CpTree::build(&g_after, &t, &profiles).unwrap();
        assert_matches_monolithic(&patched, &fresh, &t);
        // The original (pre-patch clone source) still answers pre-batch
        // state: resident shard Arcs were shared, not mutated.
        let before = CpTree::build(&g, &t, &profiles).unwrap();
        assert_eq!(sorted_ref(&sharded, 1, 0, hw), sorted_mono(&before, 1, 0, hw));
    }

    #[test]
    fn profile_patch_updates_membership_without_building_cold_shards() {
        let (g, t, mut profiles) = figure1();
        let sharded =
            ShardedCpIndex::build(Arc::clone(&g), &t, Arc::new(profiles.clone())).unwrap();
        let mut patched = sharded.clone();
        let dms = t.id_of("DMS").unwrap();
        profiles[6] = PTree::from_labels(&t, [dms]).unwrap();
        let profiles = Arc::new(profiles);
        let stats =
            patched.apply_batch(&g, &profiles, &[GraphDelta::ProfileChanged { v: 6 }], None, 1);
        assert!(stats.labels_touched > 0);
        assert_eq!(stats.labels_rebuilt, 0, "nothing was resident");
        assert_eq!(stats.labels_invalidated, stats.labels_touched);
        assert_eq!(patched.resident_shards(), 0);
        assert!(patched.vertices_with_label(dms).contains(&6));
        let fresh = CpTree::build(&g, &t, &profiles).unwrap();
        assert_matches_monolithic(&patched, &fresh, &t);
    }

    #[test]
    fn randomized_churn_with_interleaved_materialization() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x5a4d);
        for trial in 0..3 {
            let labels = 9 + trial;
            let mut tax = Taxonomy::new("r");
            let mut ids = vec![Taxonomy::ROOT];
            for i in 1..labels {
                let parent = ids[rng.gen_range(0..ids.len())];
                ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
            }
            let n = 16 + trial * 5;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.2) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let mut profiles: Vec<PTree> = (0..n)
                .map(|_| {
                    let count = rng.gen_range(0..=4usize);
                    let picks: Vec<u32> =
                        (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
                    PTree::from_labels(&tax, picks).unwrap()
                })
                .collect();
            let mut dyn_g = DynamicGraph::from_graph(&g);
            let mut idx =
                ShardedCpIndex::build(Arc::new(g), &tax, Arc::new(profiles.clone())).unwrap();
            for step in 0..40 {
                // Occasionally probe a random (possibly cold) shard —
                // interleaving materialization with churn.
                if step % 3 == 0 {
                    let label = ids[rng.gen_range(0..ids.len())];
                    let q = rng.gen_range(0..n as u32);
                    let _ = idx.get_ref(rng.gen_range(0..3), q, label);
                }
                let mut deltas = Vec::new();
                let mut reprofiled: Vec<u32> = Vec::new();
                for _ in 0..rng.gen_range(1..4) {
                    match rng.gen_range(0..3) {
                        0 => {
                            let a = rng.gen_range(0..n as u32);
                            let b = rng.gen_range(0..n as u32);
                            if a != b && dyn_g.add_edge(a, b).unwrap() {
                                deltas.push(GraphDelta::EdgeAdded { u: a, v: b });
                            }
                        }
                        1 => {
                            let a = rng.gen_range(0..n as u32);
                            let b = rng.gen_range(0..n as u32);
                            if a != b && dyn_g.remove_edge(a, b).unwrap() {
                                deltas.push(GraphDelta::EdgeRemoved { u: a, v: b });
                            }
                        }
                        _ => {
                            let v = rng.gen_range(0..n as u32);
                            if reprofiled.contains(&v) {
                                continue;
                            }
                            let count = rng.gen_range(0..=4usize);
                            let picks: Vec<u32> =
                                (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
                            let p = PTree::from_labels(&tax, picks).unwrap();
                            if p != profiles[v as usize] {
                                profiles[v as usize] = p;
                                reprofiled.push(v);
                                deltas.push(GraphDelta::ProfileChanged { v });
                            }
                        }
                    }
                }
                if deltas.is_empty() {
                    continue;
                }
                let g_after = Arc::new(dyn_g.to_graph());
                idx.apply_batch(&g_after, &Arc::new(profiles.clone()), &deltas, None, 2);
                let fresh = CpTree::build(&g_after, &tax, &profiles).unwrap();
                assert_matches_monolithic(&idx, &fresh, &tax);
            }
        }
    }

    /// A `ShardSource` is advisory: valid payloads are adopted, stale
    /// or lying ones are rebuilt from the graph.
    #[test]
    fn shard_source_is_cross_checked() {
        #[derive(Debug)]
        struct FakeSource {
            good: LabelId,
            good_cl: ClTree,
            lying: LabelId,
            lying_cl: ClTree,
        }
        impl ShardSource for FakeSource {
            fn load_shard(&self, label: LabelId) -> Option<ClTree> {
                if label == self.good {
                    Some(self.good_cl.clone())
                } else if label == self.lying {
                    Some(self.lying_cl.clone())
                } else {
                    None
                }
            }
        }
        let (g, t, profiles) = figure1();
        let profiles = Arc::new(profiles);
        let mono = CpTree::build(&g, &t, &profiles).unwrap();
        let facade = ShardedCpIndex::build(Arc::clone(&g), &t, Arc::clone(&profiles)).unwrap();
        let hw = t.id_of("HW").unwrap();
        let dms = t.id_of("DMS").unwrap();
        let source = FakeSource {
            good: hw,
            good_cl: mono.node(hw).unwrap().cl.clone(),
            lying: dms,
            // Wrong member set for DMS: the CL-tree of HW's members.
            lying_cl: mono.node(hw).unwrap().cl.clone(),
        };
        let idx = ShardedCpIndex::from_loaded(
            Arc::clone(&g),
            Arc::clone(&profiles),
            (0..t.len() as u32).map(|l| facade.vertices_with_label(l).to_vec()).collect(),
            Vec::new(),
            Some(Arc::new(source)),
        )
        .unwrap();
        // Both shards answer correctly: HW adopted from the source,
        // DMS rejected (member mismatch) and rebuilt from the graph.
        assert_matches_monolithic(&idx, &mono, &t);
    }

    #[test]
    fn from_loaded_rejects_malformed_parts() {
        let (g, t, profiles) = figure1();
        let profiles = Arc::new(profiles);
        let mono = CpTree::build(&g, &t, &profiles).unwrap();
        let facade = ShardedCpIndex::build(Arc::clone(&g), &t, Arc::clone(&profiles)).unwrap();
        let members: Vec<Vec<VertexId>> =
            (0..t.len() as u32).map(|l| facade.vertices_with_label(l).to_vec()).collect();
        let corrupt = |profiles: Arc<Vec<PTree>>,
                       members: Vec<Vec<VertexId>>,
                       resident: Vec<(LabelId, ClTree)>| {
            assert!(matches!(
                ShardedCpIndex::from_loaded(Arc::clone(&g), profiles, members, resident, None),
                Err(IndexError::CorruptIndex { .. })
            ));
        };
        // Short profile vector.
        corrupt(Arc::new(profiles[..7].to_vec()), members.clone(), Vec::new());
        // Unsorted members.
        let mut bad = members.clone();
        bad[0].swap(0, 1);
        corrupt(Arc::clone(&profiles), bad, Vec::new());
        // Out-of-range member.
        let mut bad = members.clone();
        bad[0].push(99);
        corrupt(Arc::clone(&profiles), bad, Vec::new());
        // Resident shard whose members disagree with the table.
        let hw = t.id_of("HW").unwrap();
        let dms = t.id_of("DMS").unwrap();
        corrupt(
            Arc::clone(&profiles),
            members.clone(),
            vec![(dms, mono.node(hw).unwrap().cl.clone())],
        );
        // Out-of-order resident labels (dms > hw, so hw-after-dms is
        // a descending pair).
        corrupt(
            Arc::clone(&profiles),
            members.clone(),
            vec![
                (dms, mono.node(dms).unwrap().cl.clone()),
                (hw, mono.node(hw).unwrap().cl.clone()),
            ],
        );
    }
}
