//! Integration pins for the lazy snapshot load path: a replica
//! warm-start must decode structure only (META, directories), fault
//! the graph in on the first query, and keep total bytes read for
//! time-to-first-query under 10% of the snapshot file — measured by
//! the in-run [`pcs_store::FileSnapshot`] bytes-read counter that
//! [`PcsEngine::snapshot_io`] exposes, not by wall clock.

use pcs_engine::{IndexMode, PcsEngine, QueryRequest};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pcs-lazy-{}-{tag}-{}.snapshot",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A profile-heavy fixture shaped like the real workload: a sparse
/// ring of `n` vertices with a 6-clique at the front, rich profiles
/// (so PROFILES + INDEX dominate the file, as they do on DBLP), and
/// a cheap query vertex carrying a single label.
fn big_fixture(n: usize) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut tax = Taxonomy::new("r");
    let leaves: Vec<_> =
        (0..60).map(|i| tax.add_child(Taxonomy::ROOT, &format!("l{i}")).unwrap()).collect();
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push((u, v));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|i| {
            if i < 6 {
                // The clique members share one label: the first query
                // (vertex 0, k=4) resolves against one member run and
                // one profile chunk.
                PTree::from_labels(&tax, [leaves[0]]).unwrap()
            } else {
                let ls: Vec<_> = (0..15).map(|j| leaves[(i * 7 + j) % 60]).collect();
                PTree::from_labels(&tax, ls).unwrap()
            }
        })
        .collect();
    (g, tax, profiles)
}

fn saved_snapshot(n: usize, tag: &str) -> (PathBuf, PcsEngine) {
    let (g, tax, profiles) = big_fixture(n);
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let path = tmp_path(tag);
    engine.save(&path).unwrap();
    (path, engine)
}

#[test]
fn lazy_open_defers_the_graph_until_the_first_query() {
    let (path, _src) = saved_snapshot(2000, "defer");
    let loaded = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path).unwrap();
    let io = loaded.snapshot_io().expect("lazily loaded engines expose IO counters");
    assert!(
        !loaded.snapshot().graph_resident(),
        "open must not decode the graph ({} bytes read)",
        io.bytes_read
    );
    let structural = io.bytes_read;
    assert!(structural > 0, "open reads the structural prefix");
    loaded.query(&QueryRequest::vertex(0).k(4)).unwrap();
    assert!(loaded.snapshot().graph_resident(), "the first query faults the graph in");
    let after = loaded.snapshot_io().unwrap().bytes_read;
    assert!(after > structural, "the first query reads the graph section");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn time_to_first_query_reads_under_ten_percent_of_the_file() {
    let (path, src) = saved_snapshot(4000, "ttfq");
    let loaded = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path).unwrap();
    let want = src.query(&QueryRequest::vertex(0).k(4)).unwrap();
    let got = loaded.query(&QueryRequest::vertex(0).k(4)).unwrap();
    assert_eq!(want.communities(), got.communities());
    let io = loaded.snapshot_io().unwrap();
    assert!(
        io.bytes_read * 10 < io.file_len,
        "TtFQ read {} of {} bytes ({:.1}%) — the lazy-load budget is <10%",
        io.bytes_read,
        io.file_len,
        100.0 * io.bytes_read as f64 / io.file_len as f64
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn lazy_and_eager_loads_answer_identically() {
    let (path, src) = saved_snapshot(2000, "agree");
    let lazy = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path).unwrap();
    let eager = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert!(eager.snapshot_io().is_none(), "eager loads buffer the file and drop the source");
    for q in [0u32, 1, 5, 6, 999, 1999] {
        for k in [1u32, 2, 4] {
            let a = src.query(&QueryRequest::vertex(q).k(k)).unwrap();
            let b = lazy.query(&QueryRequest::vertex(q).k(k)).unwrap();
            let c = eager.query(&QueryRequest::vertex(q).k(k)).unwrap();
            assert_eq!(a.communities(), b.communities(), "lazy q={q} k={k}");
            assert_eq!(a.communities(), c.communities(), "eager q={q} k={k}");
        }
    }
}

#[test]
fn saving_a_lazily_loaded_engine_round_trips() {
    let (path, src) = saved_snapshot(2000, "resave");
    let lazy = PcsEngine::builder().index_mode(IndexMode::Lazy).load(&path).unwrap();
    // Saving forces full materialization of the deferred sections.
    let path2 = tmp_path("resave-out");
    lazy.save(&path2).unwrap();
    let reloaded = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path2).unwrap();
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&path2).unwrap();
    for q in [0u32, 3, 100, 1500] {
        let a = src.query(&QueryRequest::vertex(q).k(2)).unwrap();
        let b = reloaded.query(&QueryRequest::vertex(q).k(2)).unwrap();
        assert_eq!(a.communities(), b.communities(), "q={q}");
    }
}
