//! The epoch-keyed hot-query result cache.
//!
//! Community-search traffic is heavily repetitive (zipfian over query
//! vertices), so the single cheapest answer is the one already
//! computed. Each published [`SnapshotInner`](crate::snapshot) may
//! carry a [`QueryCache`]: a bounded map from the *resolved* query key
//! (vertex, k, concrete algorithm, response cap, stats flag) to the
//! `Arc`-shared [`QueryResponse`] computed at that snapshot's epoch.
//!
//! Correctness comes from the epoch keying, not from timestamps: the
//! cache lives **on the snapshot**, so a hit can only ever return an
//! answer computed against the exact graph/profile version the reader
//! is looking at. Publishing a new epoch swaps in a new cache —
//! empty under [`CacheMode::Wholesale`], or pre-seeded with the
//! entries provably untouched by the batch under
//! [`CacheMode::Surgical`] (see
//! [`PcsEngine`](crate::PcsEngine) for the survival rule).
//!
//! Eviction is a two-generation segmented FIFO: inserts land in the
//! `current` generation; when `current` reaches half the configured
//! capacity it becomes `previous` and the old `previous` is dropped
//! wholesale. A hit in `previous` promotes the entry back into
//! `current`, so sustained-hot entries survive rotation while one-shot
//! entries age out after at most two rotations — O(1) per operation,
//! never more than `capacity` entries resident, no per-entry clock to
//! maintain.
//!
//! This module is on the `pcs-audit` hot-path discipline: no `unwrap`,
//! no `expect`, no panicking indexing; the cache mutex recovers from
//! poisoning by discarding cached entries (they are pure derived
//! state).

use crate::request::{QueryRequest, QueryResponse};
use pcs_core::Algorithm;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Invalidation policy of the engine's result cache (see
/// [`EngineBuilder::result_cache`](crate::EngineBuilder::result_cache)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// No result cache (default): every query computes.
    #[default]
    Off,
    /// Cache hot results within an epoch; every published update batch
    /// starts the next epoch with an empty cache. Always sound, zero
    /// bookkeeping on the write path.
    Wholesale,
    /// Like [`CacheMode::Wholesale`], but an update batch carries
    /// forward the entries whose answers it provably could not have
    /// changed: the query vertex was not re-profiled and no label of
    /// its profile subtree is in the batch's invalidation set. Edge
    /// batches always touch the taxonomy root (every profile contains
    /// it), so surgical survival helps profile-only churn — exactly
    /// the updates whose invalidation sets the CP-tree patcher also
    /// localizes.
    Surgical,
}

/// Monotonic counters of one engine's cache behavior, shared across
/// every epoch's cache instance so rates survive invalidation.
#[derive(Debug, Default)]
pub(crate) struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    surgical_survivals: AtomicU64,
}

impl CacheStats {
    pub(crate) fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            surgical_survivals: self.surgical_survivals.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the engine's cache counters (see
/// [`PcsEngine::cache_stats`](crate::PcsEngine::cache_stats)).
///
/// All counters are monotonic over the engine's lifetime; they are
/// **not** reset when an epoch publish replaces the cache instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Entries dropped by capacity rotation (not by epoch publish —
    /// wholesale invalidation is accounted implicitly by the epoch).
    pub evictions: u64,
    /// Entries carried alive across an epoch publish by
    /// [`CacheMode::Surgical`].
    pub surgical_survivals: u64,
}

impl CacheStatsSnapshot {
    /// `hits / (hits + misses)`, or 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The full identity of a cacheable answer. Built from a
/// [`QueryRequest`] **after** [`Algorithm::Auto`] resolution, so an
/// `Auto` request and an explicit request for the same concrete
/// algorithm share one entry. The `bypass_cache` flag is deliberately
/// not part of the key: a bypassing request never reads or writes the
/// cache at all.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    vertex: u32,
    k: u32,
    algorithm: Algorithm,
    cap: Option<usize>,
    stats: bool,
}

impl CacheKey {
    /// The key of `request` under the engine's resolved `algorithm`.
    pub(crate) fn for_request(request: &QueryRequest, algorithm: Algorithm) -> CacheKey {
        CacheKey {
            vertex: request.vertex_id(),
            k: request.degree_bound(),
            algorithm,
            cap: request.community_cap(),
            stats: request.wants_stats(),
        }
    }

    /// The query vertex this entry answers for (survival checks).
    pub(crate) fn vertex(&self) -> u32 {
        self.vertex
    }
}

/// The two generations. `current` receives inserts and promotions;
/// `previous` is the read-only overflow awaiting the next rotation.
#[derive(Default)]
struct Gens {
    current: HashMap<CacheKey, Arc<QueryResponse>>,
    previous: HashMap<CacheKey, Arc<QueryResponse>>,
}

/// One epoch's resident result cache (see the module docs for the
/// keying, eviction, and invalidation story).
pub(crate) struct QueryCache {
    /// Rotation threshold: each generation holds at most this many
    /// entries, so the cache holds at most `2 × half_cap` total.
    half_cap: usize,
    /// Engine-lifetime counters, shared across epoch instances.
    stats: Arc<CacheStats>,
    gens: Mutex<Gens>,
}

impl QueryCache {
    /// An empty cache bounded at `capacity` total entries.
    pub(crate) fn new(capacity: usize, stats: Arc<CacheStats>) -> QueryCache {
        QueryCache { half_cap: (capacity / 2).max(1), stats, gens: Mutex::new(Gens::default()) }
    }

    /// Locks the generations, recovering from poisoning by discarding
    /// all cached entries: the cache is pure derived state, so a
    /// panicking reader must cost later readers at most recomputation,
    /// never a propagated panic.
    fn lock_gens(&self) -> MutexGuard<'_, Gens> {
        match self.gens.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.current.clear();
                guard.previous.clear();
                self.gens.clear_poison();
                guard
            }
        }
    }

    /// The cached answer for `key`, if resident. A hit in the previous
    /// generation promotes the entry, so hot keys survive rotations.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Arc<QueryResponse>> {
        let mut gens = self.lock_gens();
        let found = match gens.current.get(key) {
            Some(hit) => Some(Arc::clone(hit)),
            None => match gens.previous.remove(key) {
                Some(hit) => {
                    Self::insert_locked(
                        &mut gens,
                        self.half_cap,
                        &self.stats,
                        key.clone(),
                        Arc::clone(&hit),
                    );
                    Some(hit)
                }
                None => None,
            },
        };
        match &found {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Caches `response` under `key`, rotating generations when the
    /// current one is full.
    pub(crate) fn insert(&self, key: CacheKey, response: Arc<QueryResponse>) {
        let mut gens = self.lock_gens();
        Self::insert_locked(&mut gens, self.half_cap, &self.stats, key, response);
    }

    fn insert_locked(
        gens: &mut Gens,
        half_cap: usize,
        stats: &CacheStats,
        key: CacheKey,
        response: Arc<QueryResponse>,
    ) {
        if gens.current.len() >= half_cap && !gens.current.contains_key(&key) {
            let dropped = std::mem::take(&mut gens.previous);
            gens.previous = std::mem::take(&mut gens.current);
            if !dropped.is_empty() {
                stats.evictions.fetch_add(dropped.len() as u64, Ordering::Relaxed);
            }
        }
        gens.current.insert(key, response);
    }

    /// Entries currently resident (both generations).
    pub(crate) fn len(&self) -> usize {
        let gens = self.lock_gens();
        gens.current.len() + gens.previous.len()
    }

    /// Builds the **next epoch's** cache from this one, carrying over
    /// every entry `survives` approves and re-stamping nothing — a
    /// surviving response still reports the epoch it was computed at,
    /// which by the survival proof answers identically at the new
    /// epoch. Counts each carried entry as a surgical survival.
    pub(crate) fn carry_surviving(
        &self,
        capacity: usize,
        survives: impl Fn(&CacheKey) -> bool,
    ) -> QueryCache {
        let next = QueryCache::new(capacity, Arc::clone(&self.stats));
        let mut carried = 0u64;
        {
            let gens = self.lock_gens();
            let mut next_gens = next.lock_gens();
            for (key, response) in gens.previous.iter().chain(gens.current.iter()) {
                if next_gens.current.len() >= next.half_cap {
                    break;
                }
                if survives(key) {
                    next_gens.current.insert(key.clone(), Arc::clone(response));
                    carried += 1;
                }
            }
        }
        if carried > 0 {
            self.stats.surgical_survivals.fetch_add(carried, Ordering::Relaxed);
        }
        next
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("len", &self.len())
            .field("capacity", &(self.half_cap * 2))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_core::{PcsOutcome, QueryStats};
    use std::time::Duration;

    fn response(epoch: u64) -> Arc<QueryResponse> {
        Arc::new(QueryResponse {
            outcome: PcsOutcome { communities: Vec::new(), stats: QueryStats::default() },
            algorithm: Algorithm::AdvP,
            index_used: true,
            elapsed: Duration::ZERO,
            stats: None,
            total_communities: 0,
            epoch,
        })
    }

    fn key(vertex: u32) -> CacheKey {
        CacheKey { vertex, k: 2, algorithm: Algorithm::AdvP, cap: None, stats: false }
    }

    #[test]
    fn lookup_miss_then_hit() {
        let stats = Arc::new(CacheStats::default());
        let cache = QueryCache::new(8, Arc::clone(&stats));
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), response(0));
        let hit = cache.lookup(&key(1)).expect("resident after insert");
        assert_eq!(hit.epoch, 0);
        let snap = stats.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
    }

    #[test]
    fn distinct_keys_never_collide() {
        let cache = QueryCache::new(64, Arc::new(CacheStats::default()));
        let base = key(1);
        cache.insert(base.clone(), response(7));
        for other in [
            CacheKey { k: 3, ..base.clone() },
            CacheKey { algorithm: Algorithm::Incre, ..base.clone() },
            CacheKey { cap: Some(1), ..base.clone() },
            CacheKey { stats: true, ..base.clone() },
            key(2),
        ] {
            assert_ne!(other, base);
            assert!(cache.lookup(&other).is_none(), "{other:?} must not hit {base:?}");
        }
    }

    #[test]
    fn rotation_bounds_residency_and_counts_evictions() {
        let stats = Arc::new(CacheStats::default());
        let cache = QueryCache::new(8, Arc::clone(&stats));
        for v in 0..40 {
            cache.insert(key(v), response(0));
            assert!(cache.len() <= 8, "resident {} after insert {v}", cache.len());
        }
        assert!(stats.snapshot().evictions > 0);
        // The most recent insert is always resident.
        assert!(cache.lookup(&key(39)).is_some());
    }

    #[test]
    fn hot_entries_survive_rotation_via_promotion() {
        let cache = QueryCache::new(8, Arc::new(CacheStats::default()));
        cache.insert(key(0), response(0));
        for v in 1..=3 {
            cache.insert(key(v), response(0));
        }
        // key 0 rotated into `previous`; touching it promotes it back.
        assert!(cache.lookup(&key(0)).is_some());
        for v in 4..=6 {
            cache.insert(key(v), response(0));
        }
        assert!(cache.lookup(&key(0)).is_some(), "promoted entry survives the next rotation");
    }

    #[test]
    fn carry_surviving_filters_and_counts() {
        let stats = Arc::new(CacheStats::default());
        let cache = QueryCache::new(16, Arc::clone(&stats));
        for v in 0..6 {
            cache.insert(key(v), response(3));
        }
        let next = cache.carry_surviving(16, |k| k.vertex() % 2 == 0);
        for v in 0..6 {
            assert_eq!(next.lookup(&key(v)).is_some(), v % 2 == 0, "vertex {v}");
        }
        assert_eq!(stats.snapshot().surgical_survivals, 3);
    }

    #[test]
    fn poisoned_lock_recovers_empty() {
        let cache = Arc::new(QueryCache::new(8, Arc::new(CacheStats::default())));
        cache.insert(key(1), response(0));
        let poisoner = Arc::clone(&cache);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.gens.lock();
            panic!("deliberate cache poisoning (test)");
        })
        .join();
        assert!(result.is_err());
        assert!(cache.lookup(&key(1)).is_none(), "poisoned cache discards entries");
        cache.insert(key(2), response(0));
        assert!(cache.lookup(&key(2)).is_some(), "cache keeps working after recovery");
    }
}
