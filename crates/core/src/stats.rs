//! Search-space statistics (Table 3 of the paper).
//!
//! The paper buckets the lattice level (= node count) of each maximal
//! feasible subtree into five depth bands of the search space and
//! reports, per dataset, the fraction of communities whose theme falls
//! in each band — the observation motivating the boundary-walking
//! advanced methods (most themes sit mid-lattice, so bottom-up sweeps
//! waste most of their work).

use crate::problem::PcsOutcome;

/// Number of bands used by Table 3.
pub const TABLE3_LEVELS: usize = 5;

/// Buckets a subtree size into `1..=levels` given the search-space
/// depth `|T(q)|`. Sizes are clamped into range.
pub fn level_of(subtree_size: usize, query_tree_size: usize, levels: usize) -> usize {
    assert!(levels >= 1 && query_tree_size >= 1);
    let size = subtree_size.clamp(1, query_tree_size);
    // ceil(size * levels / depth), in 1..=levels.
    (size * levels).div_ceil(query_tree_size).clamp(1, levels)
}

/// Accumulates Table 3 rows across many query outcomes.
#[derive(Clone, Debug, Default)]
pub struct LevelHistogram {
    counts: [u64; TABLE3_LEVELS],
    total: u64,
}

impl LevelHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every community of `outcome` (whose query tree had
    /// `outcome.stats.query_tree_size` nodes).
    pub fn add_outcome(&mut self, outcome: &PcsOutcome) {
        let depth = outcome.stats.query_tree_size.max(1) as usize;
        for size in outcome.subtree_sizes() {
            let lvl = level_of(size, depth, TABLE3_LEVELS);
            self.counts[lvl - 1] += 1;
            self.total += 1;
        }
    }

    /// Adds one raw (subtree size, query tree size) sample.
    pub fn add_sample(&mut self, subtree_size: usize, query_tree_size: usize) {
        let lvl = level_of(subtree_size, query_tree_size, TABLE3_LEVELS);
        self.counts[lvl - 1] += 1;
        self.total += 1;
    }

    /// Total communities recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fractions per level (sum to 1 when non-empty).
    pub fn fractions(&self) -> [f64; TABLE3_LEVELS] {
        let mut out = [0.0; TABLE3_LEVELS];
        if self.total > 0 {
            for (o, &c) in out.iter_mut().zip(self.counts.iter()) {
                *o = c as f64 / self.total as f64;
            }
        }
        out
    }

    /// Raw counts per level.
    pub fn counts(&self) -> [u64; TABLE3_LEVELS] {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_of_brackets() {
        // Depth 10, 5 levels => sizes 1-2 level 1, 3-4 level 2, ...
        assert_eq!(level_of(1, 10, 5), 1);
        assert_eq!(level_of(2, 10, 5), 1);
        assert_eq!(level_of(3, 10, 5), 2);
        assert_eq!(level_of(10, 10, 5), 5);
        // Shallow spaces clamp sensibly.
        assert_eq!(level_of(1, 1, 5), 5);
        assert_eq!(level_of(2, 3, 5), 4);
        // Out-of-range sizes are clamped.
        assert_eq!(level_of(99, 10, 5), 5);
        assert_eq!(level_of(0, 10, 5), 1);
    }

    #[test]
    #[should_panic]
    fn zero_levels_rejected() {
        level_of(1, 10, 0);
    }

    #[test]
    fn histogram_accumulates_and_normalizes() {
        let mut h = LevelHistogram::new();
        h.add_sample(1, 10); // level 1
        h.add_sample(5, 10); // level 3
        h.add_sample(6, 10); // level 3
        h.add_sample(10, 10); // level 5
        assert_eq!(h.total(), 4);
        let f = h.fractions();
        assert!((f[0] - 0.25).abs() < 1e-12);
        assert!((f[2] - 0.5).abs() < 1e-12);
        assert!((f[4] - 0.25).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h.counts()[2], 2);
    }

    #[test]
    fn empty_histogram_fractions_zero() {
        let h = LevelHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fractions(), [0.0; TABLE3_LEVELS]);
    }
}
