//! The GP-tree: a global label taxonomy (e.g. ACM CCS, MeSH).
//!
//! Ids are assigned in insertion order, so `parent(id) < id` for every
//! non-root node. Every P-tree in the system is an ancestor-closed subset
//! of one taxonomy, which is what makes subtree tests and intersections
//! cheap (see [`crate::PTree`]).

use pcs_graph::FxHashMap;

use crate::{PTreeError, Result};

/// Identifier of a taxonomy node ("attribute label" in the paper).
pub type LabelId = u32;

/// A rooted label hierarchy — the paper's GP-tree.
#[derive(Debug)]
pub struct Taxonomy {
    labels: Vec<String>,
    parent: Vec<LabelId>,
    children: Vec<Vec<LabelId>>,
    depth: Vec<u32>,
    by_name: FxHashMap<String, LabelId>,
}

/// Process-wide count of [`Taxonomy`] deep copies (see
/// [`Taxonomy::clone_count`]).
static TAXONOMY_CLONES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

impl Clone for Taxonomy {
    fn clone(&self) -> Self {
        // A taxonomy clone duplicates every label string; hot paths must
        // never do it. The counter is the audit hook regression tests
        // use to pin clone-free paths (one relaxed add per deep copy —
        // noise next to the string allocations it counts).
        TAXONOMY_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Taxonomy {
            labels: self.labels.clone(),
            parent: self.parent.clone(),
            children: self.children.clone(),
            depth: self.depth.clone(),
            by_name: self.by_name.clone(),
        }
    }
}

impl Taxonomy {
    /// The root node's id — always 0.
    pub const ROOT: LabelId = 0;

    /// Creates a taxonomy containing only the root label.
    pub fn new(root_label: &str) -> Self {
        let mut by_name = FxHashMap::default();
        by_name.insert(root_label.to_owned(), 0);
        Taxonomy {
            labels: vec![root_label.to_owned()],
            parent: vec![0],
            children: vec![Vec::new()],
            depth: vec![0],
            by_name,
        }
    }

    /// Adds a child label under `parent`; returns the new id.
    ///
    /// Label names are globally unique; reuse returns
    /// [`PTreeError::DuplicateLabel`].
    pub fn add_child(&mut self, parent: LabelId, label: &str) -> Result<LabelId> {
        if parent as usize >= self.labels.len() {
            return Err(PTreeError::UnknownLabel(parent));
        }
        if self.by_name.contains_key(label) {
            return Err(PTreeError::DuplicateLabel(label.to_owned()));
        }
        let id = self.labels.len() as LabelId;
        self.labels.push(label.to_owned());
        self.parent.push(parent);
        self.children.push(Vec::new());
        self.depth.push(self.depth[parent as usize] + 1);
        self.children[parent as usize].push(id);
        self.by_name.insert(label.to_owned(), id);
        Ok(id)
    }

    /// Rebuilds a taxonomy from its persistent state: the label names
    /// and the parent array, both in id order (the root first, every
    /// parent id smaller than its child's — the invariant
    /// [`Taxonomy::add_child`] maintains). Children, depths, and the
    /// name lookup are re-derived in O(labels).
    ///
    /// This is the snapshot-loading counterpart of
    /// [`Taxonomy::label_names`] + [`Taxonomy::parents`]. Inputs that
    /// violate the invariants are rejected:
    /// [`PTreeError::TaxonomyMismatch`] for an empty/odd-shaped pair or
    /// a non-topological parent order, [`PTreeError::UnknownLabel`] for
    /// an out-of-range parent id, [`PTreeError::DuplicateLabel`] for a
    /// reused name.
    pub fn from_parts(labels: Vec<String>, parent: Vec<LabelId>) -> Result<Taxonomy> {
        if labels.is_empty() || labels.len() != parent.len() || parent[0] != Self::ROOT {
            return Err(PTreeError::TaxonomyMismatch);
        }
        if labels.len() > u32::MAX as usize {
            return Err(PTreeError::TaxonomyMismatch);
        }
        let mut children: Vec<Vec<LabelId>> = vec![Vec::new(); labels.len()];
        let mut depth = vec![0u32; labels.len()];
        for (id, &p) in parent.iter().enumerate().skip(1) {
            if p as usize >= labels.len() {
                return Err(PTreeError::UnknownLabel(p));
            }
            // `parent(id) < id` is what makes one forward pass enough
            // (and rules out cycles).
            if p as usize >= id {
                return Err(PTreeError::TaxonomyMismatch);
            }
            children[p as usize].push(id as LabelId);
            depth[id] = depth[p as usize] + 1;
        }
        let mut by_name = FxHashMap::default();
        for (id, name) in labels.iter().enumerate() {
            if by_name.insert(name.clone(), id as LabelId).is_some() {
                return Err(PTreeError::DuplicateLabel(name.clone()));
            }
        }
        Ok(Taxonomy { labels, parent, children, depth, by_name })
    }

    /// All label names in id order (the root at index 0). With
    /// [`Taxonomy::parents`] this is the complete persistent state; feed
    /// both to [`Taxonomy::from_parts`] to reconstruct.
    #[inline]
    pub fn label_names(&self) -> &[String] {
        &self.labels
    }

    /// The parent array in id order (the root maps to itself). See
    /// [`Taxonomy::label_names`].
    #[inline]
    pub fn parents(&self) -> &[LabelId] {
        &self.parent
    }

    /// How many [`Taxonomy`] values have been deep-copied in this
    /// process so far (monotone counter). Regression tests snapshot it
    /// around a code path to pin that the path performs zero taxonomy
    /// clones; production code should never need it.
    pub fn clone_count() -> usize {
        TAXONOMY_CLONES.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of labels (including the root).
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// A taxonomy always has at least the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The label string of `id`.
    pub fn label(&self, id: LabelId) -> &str {
        &self.labels[id as usize]
    }

    /// Looks a label up by name.
    pub fn id_of(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// Parent id of `id` (the root is its own parent).
    #[inline]
    pub fn parent(&self, id: LabelId) -> LabelId {
        self.parent[id as usize]
    }

    /// Children of `id` in insertion order (ascending ids).
    #[inline]
    pub fn children(&self, id: LabelId) -> &[LabelId] {
        &self.children[id as usize]
    }

    /// Depth of `id` (root = 0).
    #[inline]
    pub fn depth(&self, id: LabelId) -> u32 {
        self.depth[id as usize]
    }

    /// True when `id` has no children.
    pub fn is_leaf(&self, id: LabelId) -> bool {
        self.children[id as usize].is_empty()
    }

    /// Maximum depth over all labels.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over `id` and all its ancestors up to and including the
    /// root, in leaf-to-root order.
    pub fn ancestors_inclusive(&self, id: LabelId) -> impl Iterator<Item = LabelId> + '_ {
        let mut cur = Some(id);
        std::iter::from_fn(move || {
            let here = cur?;
            cur = if here == Self::ROOT { None } else { Some(self.parent[here as usize]) };
            Some(here)
        })
    }

    /// All ids at a given depth.
    pub fn ids_at_depth(&self, d: u32) -> Vec<LabelId> {
        (0..self.len() as LabelId).filter(|&id| self.depth[id as usize] == d).collect()
    }

    /// Validates that `ids` (sorted, deduped) form an ancestor-closed set
    /// containing the root — i.e. a legal P-tree node set.
    pub fn is_ancestor_closed(&self, ids: &[LabelId]) -> bool {
        if ids.first() != Some(&Self::ROOT) {
            return false;
        }
        ids.iter().all(|&id| {
            (id as usize) < self.len()
                && (id == Self::ROOT || ids.binary_search(&self.parent(id)).is_ok())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ccs_fragment() -> (Taxonomy, Vec<LabelId>) {
        // r -> {CM, IS, HW}; CM -> {ML, AI}; IS -> {DMS}.
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(Taxonomy::ROOT, "CM").unwrap();
        let is = t.add_child(Taxonomy::ROOT, "IS").unwrap();
        let hw = t.add_child(Taxonomy::ROOT, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        (t, vec![cm, is, hw, ml, ai, dms])
    }

    #[test]
    fn ids_are_dense_and_parent_smaller() {
        let (t, ids) = ccs_fragment();
        assert_eq!(t.len(), 7);
        for &id in &ids {
            assert!(t.parent(id) < id);
        }
        assert_eq!(t.parent(Taxonomy::ROOT), Taxonomy::ROOT);
    }

    #[test]
    fn lookup_by_name() {
        let (t, _) = ccs_fragment();
        assert_eq!(t.label(t.id_of("ML").unwrap()), "ML");
        assert_eq!(t.id_of("nope"), None);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut t = Taxonomy::new("r");
        t.add_child(0, "CM").unwrap();
        assert_eq!(t.add_child(0, "CM").unwrap_err(), PTreeError::DuplicateLabel("CM".into()));
        assert_eq!(t.add_child(99, "X").unwrap_err(), PTreeError::UnknownLabel(99));
    }

    #[test]
    fn depths_and_leaves() {
        let (t, ids) = ccs_fragment();
        let [cm, _is, hw, ml, _ai, dms] = ids[..] else { unreachable!() };
        assert_eq!(t.depth(Taxonomy::ROOT), 0);
        assert_eq!(t.depth(cm), 1);
        assert_eq!(t.depth(ml), 2);
        assert_eq!(t.max_depth(), 2);
        assert!(t.is_leaf(hw));
        assert!(t.is_leaf(dms));
        assert!(!t.is_leaf(cm));
        assert_eq!(t.ids_at_depth(1).len(), 3);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (t, ids) = ccs_fragment();
        let ml = ids[3];
        let anc: Vec<LabelId> = t.ancestors_inclusive(ml).collect();
        assert_eq!(anc, vec![ml, ids[0], Taxonomy::ROOT]);
        let anc_root: Vec<LabelId> = t.ancestors_inclusive(Taxonomy::ROOT).collect();
        assert_eq!(anc_root, vec![Taxonomy::ROOT]);
    }

    /// `label_names` + `parents` → `from_parts` reproduces the whole
    /// accessor surface (the snapshot persistence path).
    #[test]
    fn from_parts_round_trip() {
        let (t, ids) = ccs_fragment();
        let back = Taxonomy::from_parts(t.label_names().to_vec(), t.parents().to_vec()).unwrap();
        assert_eq!(back.len(), t.len());
        for id in 0..t.len() as LabelId {
            assert_eq!(back.label(id), t.label(id));
            assert_eq!(back.parent(id), t.parent(id));
            assert_eq!(back.children(id), t.children(id));
            assert_eq!(back.depth(id), t.depth(id));
            assert_eq!(back.id_of(t.label(id)), Some(id));
        }
        let _ = ids;
    }

    #[test]
    fn from_parts_rejects_malformed_inputs() {
        let name = |s: &str| s.to_owned();
        // Empty / mismatched lengths / root not its own parent.
        assert_eq!(Taxonomy::from_parts(vec![], vec![]).unwrap_err(), PTreeError::TaxonomyMismatch);
        assert_eq!(
            Taxonomy::from_parts(vec![name("r")], vec![0, 0]).unwrap_err(),
            PTreeError::TaxonomyMismatch
        );
        assert_eq!(
            Taxonomy::from_parts(vec![name("r"), name("a")], vec![1, 0]).unwrap_err(),
            PTreeError::TaxonomyMismatch
        );
        // Non-topological parent (forward reference / self-parent).
        assert_eq!(
            Taxonomy::from_parts(vec![name("r"), name("a"), name("b")], vec![0, 2, 1]).unwrap_err(),
            PTreeError::TaxonomyMismatch
        );
        // Out-of-range parent id.
        assert_eq!(
            Taxonomy::from_parts(vec![name("r"), name("a")], vec![0, 9]).unwrap_err(),
            PTreeError::UnknownLabel(9)
        );
        // Duplicate name.
        assert_eq!(
            Taxonomy::from_parts(vec![name("r"), name("r")], vec![0, 0]).unwrap_err(),
            PTreeError::DuplicateLabel("r".into())
        );
    }

    #[test]
    fn clone_count_is_monotone_and_counts() {
        let (t, _) = ccs_fragment();
        let before = Taxonomy::clone_count();
        let copy = t.clone();
        assert!(Taxonomy::clone_count() > before);
        assert_eq!(copy.len(), t.len());
    }

    #[test]
    fn ancestor_closure_checks() {
        let (t, ids) = ccs_fragment();
        let [cm, is, _hw, ml, _ai, dms] = ids[..] else { unreachable!() };
        assert!(t.is_ancestor_closed(&[0, cm, ml]));
        assert!(t.is_ancestor_closed(&[0]));
        assert!(!t.is_ancestor_closed(&[0, ml])); // missing CM
        assert!(!t.is_ancestor_closed(&[cm, ml])); // missing root
        assert!(t.is_ancestor_closed(&[0, cm, is, ml, dms]));
        assert!(!t.is_ancestor_closed(&[0, 99])); // unknown id
    }
}
