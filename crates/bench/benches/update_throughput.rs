//! Criterion bench: the live-update path.
//!
//! Three angles on the update subsystem, all on the paper-calibrated
//! ACMDL-like dataset:
//!
//! * `apply/incremental` vs `apply/full_rebuild` — the same edge-churn
//!   batch absorbed by incremental CP-tree patching
//!   (`incremental_patch_cap(1.0)`) vs the fallback that rebuilds the
//!   whole index every batch (`incremental_patch_cap(0.0)` on an eager
//!   engine). The gap is the payoff of the bounded maintenance.
//! * `mixed/95r_5w` — a serving mix: 19 reads per write, measuring
//!   read-path cost while snapshots churn underneath.
//!
//! Each iteration applies an add/remove pair for every touched edge, so
//! the graph returns to its starting state and iterations are i.i.d.

use criterion::{criterion_group, criterion_main, Criterion};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_engine::{IndexMode, PcsEngine, QueryRequest, UpdateBatch};
use pcs_graph::VertexId;

fn engine_with_cap(ds: &pcs_datasets::ProfiledDataset, cap: f64) -> PcsEngine {
    PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .incremental_patch_cap(cap)
        .build()
        .unwrap()
}

/// Exactly `count` edges absent from the dataset, wired between 6-core
/// members so the churn lands inside communities (the realistic case).
/// Pairs are normalized `(min, max)` so reversed duplicates cannot slip
/// in and silently turn batch entries into no-ops.
fn churn_edges(ds: &pcs_datasets::ProfiledDataset, count: usize) -> Vec<(VertexId, VertexId)> {
    let (members, _) = sample_query_vertices(ds, 4, count * 8, 0xc4u64);
    let mut out = Vec::new();
    'outer: for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            let pair = (a.min(b), a.max(b));
            if a != b && !ds.graph.has_edge(a, b) && !out.contains(&pair) {
                out.push(pair);
                if out.len() == count {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(out.len(), count, "dataset too dense for {count} churn edges");
    out
}

fn bench_update_throughput(c: &mut Criterion) {
    let cfg = SuiteConfig { scale: 0.01, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Acmdl, cfg);
    let edges = churn_edges(&ds, 8);

    // One add+remove round trip per edge: state-neutral batch pair.
    let adds: UpdateBatch = edges.iter().fold(UpdateBatch::new(), |b, &(u, v)| b.add_edge(u, v));
    let removes: UpdateBatch =
        edges.iter().fold(UpdateBatch::new(), |b, &(u, v)| b.remove_edge(u, v));

    let mut group = c.benchmark_group("update_throughput");
    group.sample_size(10);

    let incremental = engine_with_cap(&ds, 1.0);
    group.bench_function("apply/incremental", |b| {
        b.iter(|| {
            criterion::black_box(incremental.apply(&adds).unwrap().cores_changed);
            criterion::black_box(incremental.apply(&removes).unwrap().cores_changed);
        });
    });

    let rebuilding = engine_with_cap(&ds, 0.0);
    group.bench_function("apply/full_rebuild", |b| {
        b.iter(|| {
            criterion::black_box(rebuilding.apply(&adds).unwrap().cores_changed);
            criterion::black_box(rebuilding.apply(&removes).unwrap().cores_changed);
        });
    });

    // Mixed read/write: 19 queries + 1 single-edge write per iteration.
    let mixed = engine_with_cap(&ds, 1.0);
    let (queries, _) = sample_query_vertices(&ds, 6, 19, 0x7472);
    let requests: Vec<QueryRequest> =
        queries.iter().map(|&q| QueryRequest::vertex(q).k(6)).collect();
    let (wu, wv) = edges[0];
    let mut flip = false;
    group.bench_function("mixed/95r_5w", |b| {
        b.iter(|| {
            flip = !flip;
            if flip {
                criterion::black_box(mixed.add_edge(wu, wv).unwrap().epoch);
            } else {
                criterion::black_box(mixed.remove_edge(wu, wv).unwrap().epoch);
            }
            for resp in mixed.query_batch(&requests) {
                criterion::black_box(resp.unwrap().communities().len());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_update_throughput);
criterion_main!(benches);
