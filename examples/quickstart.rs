//! Quickstart: the paper's running example (Fig. 1 + Fig. 2).
//!
//! Builds the 8-author collaboration network with CCS-fragment
//! profiles, then asks: *"find the profiled communities of researcher D
//! with k = 2"*. PCS returns two differently-themed communities —
//! {B, C, D} around machine learning/AI and {A, D, E} around
//! information systems/hardware — exactly Fig. 2(b)/(c).
//!
//! Run with: `cargo run --example quickstart`

use pcs::prelude::*;

fn main() {
    // --- The GP-tree (a fragment of the ACM CCS) -------------------------
    let mut tax = Taxonomy::new("r");
    let cm = tax.add_child(Taxonomy::ROOT, "Computing Methodology").unwrap();
    let is = tax.add_child(Taxonomy::ROOT, "Information Systems").unwrap();
    let hw = tax.add_child(Taxonomy::ROOT, "Hardware").unwrap();
    let ml = tax.add_child(cm, "Machine Learning").unwrap();
    let ai = tax.add_child(cm, "Artificial Intelligence").unwrap();
    let dms = tax.add_child(is, "Data Management System").unwrap();

    // --- The collaboration graph (Fig. 1(a): authors A..H) ----------------
    let names = ["A", "B", "C", "D", "E", "F", "G", "H"];
    let g = Graph::from_edges(
        8,
        &[
            (0, 1), // A-B
            (0, 3), // A-D
            (0, 4), // A-E
            (1, 3), // B-D
            (1, 4), // B-E
            (3, 4), // D-E
            (1, 2), // B-C
            (2, 3), // C-D
            (4, 5), // E-F
            (5, 6), // F-G
            (5, 7), // F-H
            (6, 7), // G-H
        ],
    )
    .expect("well-formed edge list");

    // --- Per-author P-trees ----------------------------------------------
    let profiles: Vec<PTree> = [
        vec![dms, hw],         // A: information systems + hardware
        vec![ml, ai],          // B: machine learning + AI
        vec![ml, ai, is],      // C: ML + AI + information systems
        vec![ml, ai, dms, hw], // D: the renowned expert — everything
        vec![dms, hw],         // E
        vec![is, hw],          // F
        vec![hw, cm],          // G
        vec![is, hw],          // H
    ]
    .into_iter()
    .map(|ls| PTree::from_labels(&tax, ls).expect("labels from tax"))
    .collect();

    // --- Build the engine once, query online ------------------------------
    // The engine owns its inputs, validates them once, and builds the
    // CP-tree index lazily on the first query that needs it.
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .build()
        .expect("consistent inputs");
    let snap = engine.snapshot();
    let (tax, g, profiles) = (engine.taxonomy(), snap.graph(), snap.profiles());

    let q = 3; // author D
    let k = 2;
    println!("PCS query: q = {} (author D), k = {k}\n", names[q as usize]);

    for algo in [Algorithm::Basic, Algorithm::AdvP] {
        let resp = engine
            .query(&QueryRequest::vertex(q).k(k).algorithm(algo).collect_stats(true))
            .expect("query in range");
        println!("== {} found {} communities ==", algo.name(), resp.communities().len());
        for (i, c) in resp.communities().iter().enumerate() {
            let members: Vec<&str> = c.vertices.iter().map(|&v| names[v as usize]).collect();
            println!("community #{}: {{{}}}", i + 1, members.join(", "));
            println!("shared theme:\n{}", indent(&c.subtree.render(tax)));
        }
        let stats = resp.stats.expect("requested via collect_stats");
        println!(
            "(verifications: {}, candidates generated: {}, wall-clock: {:.1?})\n",
            stats.verifications, stats.subtrees_generated, resp.elapsed
        );
    }

    // Contrast with ACQ: flat keywords, no hierarchy.
    let acq = acq_query(g, tax, profiles, q, k);
    println!(
        "== ACQ (flat keywords) found {} communities sharing {} keywords ==",
        acq.communities.len(),
        acq.keyword_count
    );
    for c in &acq.communities {
        let members: Vec<&str> = c.community.vertices.iter().map(|&v| names[v as usize]).collect();
        let kws: Vec<&str> = c.keywords.iter().map(|&l| tax.label(l)).collect();
        println!("  {{{}}} sharing [{}]", members.join(", "), kws.join(", "));
    }

    // --- Persist and warm-start -------------------------------------------
    // A serving replica never rebuilds: save the warmed engine once,
    // load it anywhere. The loaded engine resumes at the same epoch and
    // answers bit-identically (and stays fully updatable).
    engine.warm().expect("index builds");
    let path = std::env::temp_dir().join(format!("pcs-quickstart-{}.snapshot", std::process::id()));
    engine.save(&path).expect("snapshot written");
    let loaded = PcsEngine::builder().load(&path).expect("snapshot loads");
    let again = loaded.query(&QueryRequest::vertex(q).k(k)).expect("query in range");
    let orig = engine.query(&QueryRequest::vertex(q).k(k)).expect("query in range");
    assert_eq!(orig.communities(), again.communities());
    println!(
        "\nsaved -> loaded -> re-queried: {} communities again at epoch {} \
         (snapshot at {})",
        again.communities().len(),
        loaded.epoch(),
        path.display()
    );
    let _ = std::fs::remove_file(&path);
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
