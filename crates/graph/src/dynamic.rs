//! Mutable graphs and incremental k-core maintenance.
//!
//! The CSR [`Graph`] is immutable by design — every query algorithm
//! reads it without synchronization. A live serving system, however,
//! must absorb edge insertions and deletions without rebuilding the
//! world. This module supplies the write side:
//!
//! * [`DynamicGraph`] — sorted adjacency lists supporting O(deg) edge
//!   insertion/removal and an O(n + m) conversion back to CSR (no
//!   re-sort: the lists stay sorted under mutation).
//! * [`promoted_by_insertion`] / [`demoted_by_deletion`] — the bounded
//!   traversal algorithms of Sariyüce et al. (*Streaming algorithms for
//!   k-core decomposition*, VLDB 2013): after a single edge change,
//!   core numbers move by at most one and only inside the **subcore**
//!   of the touched endpoints (the vertices with the smaller endpoint
//!   core value, reachable through vertices of that same core value).
//!   Both functions visit only that region — never O(n) — and are
//!   generic over an adjacency closure so the same code maintains the
//!   global decomposition *and* detects changes inside per-label
//!   CP-tree subgraphs.
//!
//! The combination gives an updatable core decomposition: keep a
//! `Vec<u32>` of core numbers next to a [`DynamicGraph`], call the
//! matching function after every applied edge change, and add/subtract
//! one for the returned vertices.

use crate::graph::{Graph, VertexId};
use crate::{FxHashMap, FxHashSet, GraphError, Result};

/// A mutable undirected graph: one sorted neighbor list per vertex.
///
/// The vertex set is fixed at construction (dense ids `0..n`, matching
/// [`Graph`]); the edge set changes freely. Self-loops are rejected and
/// duplicate insertions are no-ops, so conversion via
/// [`DynamicGraph::to_graph`] always yields a canonical CSR graph.
///
/// ```
/// use pcs_graph::{DynamicGraph, Graph};
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
/// let mut d = DynamicGraph::from_graph(&g);
/// assert!(d.add_edge(2, 3).unwrap());
/// assert!(!d.add_edge(0, 1).unwrap()); // already present: no-op
/// assert!(d.remove_edge(0, 1).unwrap());
/// let g2 = d.to_graph();
/// assert_eq!(g2.num_edges(), 2);
/// assert!(g2.has_edge(2, 3) && !g2.has_edge(0, 1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicGraph {
    adj: Vec<Vec<VertexId>>,
    m: usize,
}

impl DynamicGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        DynamicGraph { adj: vec![Vec::new(); n], m: 0 }
    }

    /// Copies a CSR graph into mutable form.
    pub fn from_graph(g: &Graph) -> Self {
        let adj: Vec<Vec<VertexId>> = g.vertices().map(|v| g.neighbors(v).to_vec()).collect();
        DynamicGraph { adj, m: g.num_edges() }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// True when the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        (a as usize) < self.adj.len() && self.adj[a as usize].binary_search(&b).is_ok()
    }

    fn check_endpoints(&self, a: VertexId, b: VertexId) -> Result<()> {
        let n = self.adj.len();
        for v in [a, b] {
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v as u64, n });
            }
        }
        Ok(())
    }

    /// Inserts the undirected edge `{a, b}`.
    ///
    /// Returns `Ok(true)` when the edge was new, `Ok(false)` when it
    /// already existed (no-op). Self-loops and out-of-range endpoints
    /// are errors.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> Result<bool> {
        self.check_endpoints(a, b)?;
        if a == b {
            return Err(GraphError::SelfLoop { vertex: a });
        }
        let pos = match self.adj[a as usize].binary_search(&b) {
            Ok(_) => return Ok(false),
            Err(pos) => pos,
        };
        self.adj[a as usize].insert(pos, b);
        let pos = self.adj[b as usize]
            .binary_search(&a)
            .expect_err("adjacency lists out of sync: half-edge present");
        self.adj[b as usize].insert(pos, a);
        self.m += 1;
        Ok(true)
    }

    /// Removes the undirected edge `{a, b}`.
    ///
    /// Returns `Ok(true)` when the edge existed, `Ok(false)` when it
    /// did not (no-op). Out-of-range endpoints are errors.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) -> Result<bool> {
        self.check_endpoints(a, b)?;
        let pos = match self.adj[a as usize].binary_search(&b) {
            Ok(pos) => pos,
            Err(_) => return Ok(false),
        };
        self.adj[a as usize].remove(pos);
        let pos = self.adj[b as usize]
            .binary_search(&a)
            .expect("adjacency lists out of sync: half-edge missing");
        self.adj[b as usize].remove(pos);
        self.m -= 1;
        Ok(true)
    }

    /// Lays the current edge set out as an immutable CSR [`Graph`].
    ///
    /// O(n + m): the per-vertex lists are already sorted, so no global
    /// sort is needed (unlike [`crate::GraphBuilder::build`]).
    pub fn to_graph(&self) -> Graph {
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for list in &self.adj {
            acc += list.len();
            offsets.push(acc);
        }
        let mut neighbors = Vec::with_capacity(acc);
        for list in &self.adj {
            neighbors.extend_from_slice(list);
        }
        Graph::from_csr_unchecked(offsets, neighbors)
    }
}

/// Vertices whose core number **rises by one** after inserting the
/// edge `{u, v}`.
///
/// Contract: `adj` must describe the graph *with* the edge already
/// present, and `core` must return the pre-insertion core numbers.
/// The caller applies the returned delta (`core[w] += 1`).
///
/// Runs the subcore traversal of Sariyüce et al.: visits only vertices
/// with core number `k = min(core(u), core(v))` reachable from the
/// endpoints through same-core vertices, computes each one's count of
/// neighbors at core ≥ k, and peels those that cannot reach degree
/// k + 1; the survivors are promoted. Sorted output.
pub fn promoted_by_insertion<A, I, C>(u: VertexId, v: VertexId, adj: A, core: C) -> Vec<VertexId>
where
    A: Fn(VertexId) -> I,
    I: IntoIterator<Item = VertexId>,
    C: Fn(VertexId) -> u32,
{
    let k = core(u).min(core(v));
    // Subcore: same-core vertices reachable from the low endpoint(s).
    // When core(u) == core(v) the new edge joins their subcores, and the
    // BFS naturally crosses it because `adj` already contains the edge.
    let mut sub: FxHashSet<VertexId> = FxHashSet::default();
    let mut stack: Vec<VertexId> = Vec::new();
    for r in [u, v] {
        if core(r) == k && sub.insert(r) {
            stack.push(r);
        }
    }
    while let Some(w) = stack.pop() {
        for z in adj(w) {
            if core(z) == k && sub.insert(z) {
                stack.push(z);
            }
        }
    }
    // cd(w): neighbors that could support w inside the (k+1)-core —
    // every neighbor at core ≥ k (same-core neighbors of a subcore
    // member are themselves subcore members, so no further filter).
    let mut cd: FxHashMap<VertexId, u32> = FxHashMap::default();
    for &w in &sub {
        let d = adj(w).into_iter().filter(|&z| core(z) >= k).count() as u32;
        cd.insert(w, d);
    }
    // Peel members that cannot obtain k+1 supporters.
    let mut evicted: FxHashSet<VertexId> = FxHashSet::default();
    stack.extend(sub.iter().copied().filter(|w| cd[w] <= k));
    while let Some(w) = stack.pop() {
        if !evicted.insert(w) {
            continue;
        }
        for z in adj(w) {
            if core(z) == k && sub.contains(&z) && !evicted.contains(&z) {
                let d = cd.get_mut(&z).expect("subcore member has a cd entry");
                *d -= 1;
                if *d <= k {
                    stack.push(z);
                }
            }
        }
    }
    let mut promoted: Vec<VertexId> = sub.into_iter().filter(|w| !evicted.contains(w)).collect();
    promoted.sort_unstable();
    promoted
}

/// Vertices whose core number **drops by one** after deleting the edge
/// `{u, v}`.
///
/// Contract: `adj` must describe the graph *without* the edge, and
/// `core` must return the pre-deletion core numbers. The caller applies
/// the returned delta (`core[w] -= 1`).
///
/// Only vertices with core number `k = min(core(u), core(v))` inside
/// the subcores of the endpoints can change (by exactly one); the peel
/// evicts every member left with fewer than `k` supporters. Sorted
/// output.
pub fn demoted_by_deletion<A, I, C>(u: VertexId, v: VertexId, adj: A, core: C) -> Vec<VertexId>
where
    A: Fn(VertexId) -> I,
    I: IntoIterator<Item = VertexId>,
    C: Fn(VertexId) -> u32,
{
    let k = core(u).min(core(v));
    if k == 0 {
        return Vec::new(); // core numbers cannot drop below zero
    }
    // Subcores of the low endpoint(s). The edge is already gone, so the
    // two regions may or may not be connected to each other.
    let mut sub: FxHashSet<VertexId> = FxHashSet::default();
    let mut stack: Vec<VertexId> = Vec::new();
    for r in [u, v] {
        if core(r) == k && sub.insert(r) {
            stack.push(r);
        }
    }
    while let Some(w) = stack.pop() {
        for z in adj(w) {
            if core(z) == k && sub.insert(z) {
                stack.push(z);
            }
        }
    }
    // Remaining support: neighbors at core ≥ k in the new graph.
    let mut cd: FxHashMap<VertexId, u32> = FxHashMap::default();
    for &w in &sub {
        let d = adj(w).into_iter().filter(|&z| core(z) >= k).count() as u32;
        cd.insert(w, d);
    }
    let mut demoted: FxHashSet<VertexId> = FxHashSet::default();
    stack.extend(sub.iter().copied().filter(|w| cd[w] < k));
    while let Some(w) = stack.pop() {
        if !demoted.insert(w) {
            continue;
        }
        for z in adj(w) {
            if core(z) == k && sub.contains(&z) && !demoted.contains(&z) {
                let d = cd.get_mut(&z).expect("subcore member has a cd entry");
                *d -= 1;
                if *d < k {
                    stack.push(z);
                }
            }
        }
    }
    let mut out: Vec<VertexId> = demoted.into_iter().collect();
    out.sort_unstable();
    out
}

/// Convenience wrappers binding the traversal algorithms to a
/// [`DynamicGraph`] plus a plain core-number array — the pairing the
/// serving engine maintains for its mutable master state.
#[derive(Clone, Debug)]
pub struct IncrementalCores {
    core: Vec<u32>,
}

impl IncrementalCores {
    /// Seeds the maintained array from a full decomposition.
    pub fn new(core: Vec<u32>) -> Self {
        IncrementalCores { core }
    }

    /// The maintained core numbers, indexed by vertex id.
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// Core number of `v`.
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// Updates the array after `g.add_edge(u, v)` succeeded (`g`
    /// already contains the edge). Returns how many vertices changed.
    pub fn on_edge_inserted(&mut self, g: &DynamicGraph, u: VertexId, v: VertexId) -> usize {
        let promoted = promoted_by_insertion(
            u,
            v,
            |w| g.neighbors(w).iter().copied(),
            |w| self.core[w as usize],
        );
        for &w in &promoted {
            self.core[w as usize] += 1;
        }
        promoted.len()
    }

    /// Updates the array after `g.remove_edge(u, v)` succeeded (`g` no
    /// longer contains the edge). Returns how many vertices changed.
    pub fn on_edge_removed(&mut self, g: &DynamicGraph, u: VertexId, v: VertexId) -> usize {
        let demoted = demoted_by_deletion(
            u,
            v,
            |w| g.neighbors(w).iter().copied(),
            |w| self.core[w as usize],
        );
        for &w in &demoted {
            self.core[w as usize] -= 1;
        }
        demoted.len()
    }

    /// Consumes the wrapper, yielding the array.
    pub fn into_inner(self) -> Vec<u32> {
        self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreDecomposition;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dynamic_graph_roundtrips_csr() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (2, 5)]).unwrap();
        let d = DynamicGraph::from_graph(&g);
        assert_eq!(d.num_vertices(), 6);
        assert_eq!(d.num_edges(), 5);
        assert_eq!(d.to_graph(), g);
    }

    #[test]
    fn add_remove_edge_semantics() {
        let mut d = DynamicGraph::new(4);
        assert!(d.add_edge(0, 1).unwrap());
        assert!(!d.add_edge(1, 0).unwrap(), "duplicate (reversed) insert is a no-op");
        assert_eq!(d.num_edges(), 1);
        assert!(d.has_edge(1, 0));
        assert!(!d.remove_edge(2, 3).unwrap(), "absent removal is a no-op");
        assert!(d.remove_edge(0, 1).unwrap());
        assert_eq!(d.num_edges(), 0);
        assert_eq!(d.degree(0), 0);
    }

    #[test]
    fn add_edge_rejects_self_loop_and_range() {
        let mut d = DynamicGraph::new(3);
        assert_eq!(d.add_edge(1, 1).unwrap_err(), GraphError::SelfLoop { vertex: 1 });
        assert_eq!(d.add_edge(0, 3).unwrap_err(), GraphError::VertexOutOfRange { vertex: 3, n: 3 });
        assert_eq!(
            d.remove_edge(5, 0).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 5, n: 3 }
        );
    }

    #[test]
    fn neighbors_stay_sorted_under_mutation() {
        let mut d = DynamicGraph::new(8);
        for (a, b) in [(3, 7), (3, 1), (3, 5), (3, 0), (3, 6)] {
            d.add_edge(a, b).unwrap();
        }
        assert_eq!(d.neighbors(3), &[0, 1, 5, 6, 7]);
        d.remove_edge(3, 5).unwrap();
        assert_eq!(d.neighbors(3), &[0, 1, 6, 7]);
    }

    /// Promotion on the paper's Fig. 1(a) graph: closing a triangle
    /// around C lifts it into the 3-core.
    #[test]
    fn insertion_promotes_expected_vertices() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut d = DynamicGraph::from_graph(&g);
        let mut cores = IncrementalCores::new(CoreDecomposition::new(&g).core_numbers().to_vec());
        // C (vertex 2) has core 2; adding C-E gives it three neighbors
        // in the {A,B,D,E} clique, promoting it to core 3.
        d.add_edge(2, 4).unwrap();
        let changed = cores.on_edge_inserted(&d, 2, 4);
        assert_eq!(changed, 1);
        assert_eq!(cores.core_number(2), 3);
        let full = CoreDecomposition::new(&d.to_graph());
        assert_eq!(cores.core_numbers(), full.core_numbers());
    }

    #[test]
    fn deletion_demotes_expected_vertices() {
        // A 4-clique: removing one edge drops its endpoints to core 2.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let mut d = DynamicGraph::from_graph(&g);
        let mut cores = IncrementalCores::new(CoreDecomposition::new(&g).core_numbers().to_vec());
        d.remove_edge(0, 1).unwrap();
        let changed = cores.on_edge_removed(&d, 0, 1);
        // All four drop: 0 and 1 lose a supporter, and that starves 2,3.
        assert_eq!(changed, 4);
        let full = CoreDecomposition::new(&d.to_graph());
        assert_eq!(cores.core_numbers(), full.core_numbers());
    }

    /// The load-bearing test: a long random mutation sequence keeps the
    /// incrementally maintained cores equal to a from-scratch
    /// decomposition at every step.
    #[test]
    fn incremental_cores_match_rebuild_under_random_churn() {
        let mut rng = SmallRng::seed_from_u64(0xd15c0);
        for trial in 0..6 {
            let n = 24 + trial * 7;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.12) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let mut d = DynamicGraph::from_graph(&g);
            let mut cores =
                IncrementalCores::new(CoreDecomposition::new(&g).core_numbers().to_vec());
            for step in 0..220 {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a == b {
                    continue;
                }
                if d.has_edge(a, b) {
                    d.remove_edge(a, b).unwrap();
                    cores.on_edge_removed(&d, a, b);
                } else {
                    d.add_edge(a, b).unwrap();
                    cores.on_edge_inserted(&d, a, b);
                }
                let full = CoreDecomposition::new(&d.to_graph());
                assert_eq!(
                    cores.core_numbers(),
                    full.core_numbers(),
                    "trial {trial} step {step} diverged"
                );
            }
        }
    }

    #[test]
    fn traversal_functions_work_on_filtered_subgraphs() {
        // Restrict a graph to a member subset and check the generic
        // closures agree with a decomposition of the induced subgraph.
        let g =
            Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (5, 6)])
                .unwrap();
        let members: Vec<VertexId> = vec![0, 1, 2, 3, 4, 5]; // drop 6
        let in_set = |v: VertexId| members.binary_search(&v).is_ok();
        let (sub, ids) = g.induced_subgraph(&members);
        let cd = CoreDecomposition::new(&sub);
        let core_of = |v: VertexId| {
            let local = ids.binary_search(&v).unwrap();
            cd.core_number(local as u32)
        };
        // Insert 2-4 (present in neither graph): run the promotion scan
        // on a virtual view that includes it.
        let adj = |v: VertexId| {
            let extra: &[VertexId] = match v {
                2 => &[4],
                4 => &[2],
                _ => &[],
            };
            g.neighbors(v).iter().copied().filter(move |&z| in_set(z)).chain(extra.iter().copied())
        };
        let promoted = promoted_by_insertion(2, 4, adj, core_of);
        // Reference: rebuild the induced subgraph with the edge added.
        let mut d = DynamicGraph::from_graph(&sub);
        let lu = ids.binary_search(&2).unwrap() as u32;
        let lv = ids.binary_search(&4).unwrap() as u32;
        d.add_edge(lu, lv).unwrap();
        let after = CoreDecomposition::new(&d.to_graph());
        let expect: Vec<VertexId> = ids
            .iter()
            .enumerate()
            .filter(|&(local, _)| after.core_number(local as u32) > cd.core_number(local as u32))
            .map(|(_, &orig)| orig)
            .collect();
        assert_eq!(promoted, expect);
    }
}
