// Fixture: a public error enum without #[non_exhaustive].

/// Missing its forward-compatibility guard.
#[derive(Debug)]
pub enum FixtureError {
    Io,
    Parse,
}
