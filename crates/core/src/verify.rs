//! The shared, memoized community-verification engine.
//!
//! Every PCS algorithm ultimately asks one question over and over: given
//! a candidate subtree `T ⊆ T(q)`, does `Gk[T]` — the connected k-core
//! containing `q` restricted to vertices whose P-trees contain `T` —
//! exist, and what are its vertices? This module centralizes that
//! question with:
//!
//! * a **memo table** keyed by candidate bitsets (`Gk[T]` is a pure
//!   function of `T`, so `basic`'s re-verification, `incre`'s
//!   incremental narrowing, and the MARGIN walk all share results);
//! * **lazy vertex masks**: each touched vertex's profile is projected
//!   once onto `T(q)`'s bit positions, turning "does `T(v)` contain `T`"
//!   into a word-wise subset test (Lemma 3's filter);
//! * the allocation-free localized k-core peel from `pcs-graph`
//!   ([`pcs_graph::SubsetCore`]).
//!
//! Candidate seeding follows the paper:
//! * without an index (`basic`): candidates = `Gk` (the global k-ĉore
//!   of `q`) filtered by the mask test — Algorithm 1's "compute `Gk[T]`
//!   from `Gk`";
//! * with an index and a parent community (`incre`): candidates =
//!   `Gk[T'] ∩ I.get(k, q, t)` where `t` is the newly added label —
//!   Lemma 3;
//! * with an index and no parent (`advanced`'s `verifyPtree`):
//!   candidates = `I.get(k, q, leaf)` for the most selective leaf of
//!   `T`, filtered by the mask test — the `⋂ I.get(k,q,tni)` bound.

use std::rc::Rc;

use pcs_graph::core::SubsetCore;
use pcs_graph::{FxHashMap, VertexId};
use pcs_ptree::{QuerySpace, Subtree};

use crate::problem::{QueryContext, QueryStats};

/// A verification answer: `None` ⇔ infeasible, otherwise the sorted
/// community vertices (shared, since the memo and callers both hold
/// them).
pub type Community = Option<Rc<Vec<VertexId>>>;

/// Memoized `Gk[T]` oracle for one query `(q, k)`.
pub struct Verifier<'a> {
    ctx: &'a QueryContext<'a>,
    space: &'a QuerySpace,
    q: VertexId,
    k: u32,
    core: SubsetCore,
    memo: FxHashMap<Subtree, Community>,
    masks: Vec<Option<Subtree>>,
    /// `Gk`: the global k-ĉore containing `q` (feasibility of the
    /// root-only candidate — and of the empty tree).
    gk: Community,
    /// Instrumentation counters.
    pub stats: QueryStats,
}

impl<'a> Verifier<'a> {
    /// Creates the oracle and computes `Gk` once.
    pub fn new(ctx: &'a QueryContext<'a>, space: &'a QuerySpace, q: VertexId, k: u32) -> Self {
        let gk = ctx.cores.kcore_component(ctx.graph, q, k).map(Rc::new);
        let stats = QueryStats { query_tree_size: space.len() as u32, ..Default::default() };
        Verifier {
            ctx,
            space,
            q,
            k,
            core: SubsetCore::new(ctx.graph.num_vertices()),
            memo: FxHashMap::default(),
            masks: vec![None; ctx.graph.num_vertices()],
            gk,
            stats,
        }
    }

    /// The query vertex.
    pub fn q(&self) -> VertexId {
        self.q
    }

    /// The degree bound.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The frozen search space.
    pub fn space(&self) -> &QuerySpace {
        self.space
    }

    /// The global k-ĉore `Gk` of the query vertex (the community of the
    /// empty and root-only candidates), if it exists.
    pub fn gk(&self) -> Community {
        self.gk.clone()
    }

    /// Projection of `T(v)` onto the query space, computed lazily.
    fn mask_of(&mut self, v: VertexId) -> &Subtree {
        if self.masks[v as usize].is_none() {
            let profile = &self.ctx.profiles[v as usize];
            let mut m = self.space.empty();
            for pos in 0..self.space.len() as u32 {
                if profile.contains(self.space.label_at(pos)) {
                    m = m.with(pos);
                }
            }
            self.masks[v as usize] = Some(m);
        }
        self.masks[v as usize].as_ref().unwrap()
    }

    /// True when vertex `v`'s profile contains candidate `s`.
    pub fn vertex_contains(&mut self, v: VertexId, s: &Subtree) -> bool {
        s.is_subset_of(self.mask_of(v))
    }

    fn peel(&mut self, candidates: &[VertexId]) -> Community {
        self.stats.verifications += 1;
        self.core.kcore_component_within(self.ctx.graph, candidates, self.q, self.k).map(Rc::new)
    }

    /// `Gk[T]` with automatic candidate seeding (memoized).
    pub fn verify(&mut self, s: &Subtree) -> Community {
        if s.is_empty() || s.count() == 1 {
            // The empty tree and the root-only tree constrain nothing:
            // every vertex contains the taxonomy root.
            return self.gk.clone();
        }
        if let Some(hit) = self.memo.get(s) {
            self.stats.memo_hits += 1;
            return hit.clone();
        }
        let candidates: Vec<VertexId> = match self.ctx.index {
            Some(index) => {
                // Most selective leaf of `s` (Lemma 3 / verifyPtree):
                // its label's k-ĉore already satisfies the path part of
                // `s`; the mask test enforces the rest.
                let leaf = self
                    .space
                    .leaves(s)
                    .into_iter()
                    .min_by_key(|&p| index.vertices_with_label(self.space.label_at(p)).len())
                    .expect("non-empty candidate has a leaf");
                let seed = match index.get(self.k, self.q, self.space.label_at(leaf)) {
                    Some(seed) => seed,
                    None => {
                        self.memo.insert(s.clone(), None);
                        return None;
                    }
                };
                self.filter_by_mask(seed, s)
            }
            None => {
                // Algorithm 1: start from the global k-ĉore.
                let Some(gk) = self.gk.clone() else {
                    self.memo.insert(s.clone(), None);
                    return None;
                };
                self.filter_by_mask(gk.as_ref().clone(), s)
            }
        };
        let result = self.peel(&candidates);
        if result.is_some() {
            self.stats.feasible += 1;
        }
        self.memo.insert(s.clone(), result.clone());
        result
    }

    /// `Gk[T]` computed by narrowing a known parent community
    /// (`incre`'s Lemma 3 step): candidates = `base ∩ I.get(k,q,t)`
    /// where `t` is the label at the freshly added position. Falls back
    /// to the memo when the answer is already known.
    pub fn verify_from_base(
        &mut self,
        s: &Subtree,
        base: &Rc<Vec<VertexId>>,
        added_pos: u32,
    ) -> Community {
        if let Some(hit) = self.memo.get(s) {
            self.stats.memo_hits += 1;
            return hit.clone();
        }
        let index =
            self.ctx.index.expect("verify_from_base is only used by index-based algorithms");
        let label = self.space.label_at(added_pos);
        let seed = match index.get(self.k, self.q, label) {
            Some(seed) => seed,
            None => {
                self.memo.insert(s.clone(), None);
                return None;
            }
        };
        let candidates = intersect_sorted(base, &seed);
        let result = self.peel(&candidates);
        if result.is_some() {
            self.stats.feasible += 1;
        }
        self.memo.insert(s.clone(), result.clone());
        result
    }

    fn filter_by_mask(&mut self, seed: Vec<VertexId>, s: &Subtree) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(seed.len());
        for v in seed {
            if self.vertex_contains(v, s) {
                out.push(v);
            }
        }
        out
    }

    /// Feasibility shorthand.
    pub fn is_feasible(&mut self, s: &Subtree) -> bool {
        self.verify(s).is_some()
    }

    /// True when `s` is feasible and every lattice child is infeasible —
    /// the paper's "T′ is maximal" check.
    pub fn is_maximal_feasible(&mut self, s: &Subtree) -> bool {
        if !self.is_feasible(s) {
            return false;
        }
        let children = self.space.lattice_children(s);
        children.into_iter().all(|p| {
            let child = s.with(p);
            self.stats.subtrees_generated += 1;
            !self.is_feasible(&child)
        })
    }

    /// Count one generated candidate (enumeration bookkeeping).
    pub fn note_generated(&mut self, n: u64) {
        self.stats.subtrees_generated += n;
    }
}

/// Intersection of two sorted vertex lists.
pub fn intersect_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QueryContext;
    use pcs_graph::Graph;
    use pcs_index::CpTree;
    use pcs_ptree::{PTree, Taxonomy};

    fn setup() -> (Graph, Taxonomy, Vec<PTree>) {
        // Fig. 1(a) again: the canonical 8-vertex example.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (g, t, profiles)
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn verifier_matches_bruteforce_with_and_without_index() {
        let (g, t, profiles) = setup();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        for use_index in [false, true] {
            let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
            let ctx = if use_index { ctx.with_index(&index) } else { ctx };
            for q in [3u32, 0, 5] {
                for k in 1..=3u32 {
                    let space = ctx.space_for(q).unwrap();
                    let mut ver = Verifier::new(&ctx, &space, q, k);
                    // Brute force every valid candidate.
                    let all = pcs_ptree::enumerate::enumerate_rooted_subtrees(&space);
                    for s in &all {
                        let expect = brute_gk(&g, &profiles, &space, s, q, k);
                        let got = ver.verify(s).map(|rc| rc.as_ref().clone());
                        assert_eq!(got, expect, "use_index={use_index} q={q} k={k}");
                        // Second call hits the memo and agrees.
                        let again = ver.verify(s).map(|rc| rc.as_ref().clone());
                        assert_eq!(again, expect);
                    }
                }
            }
        }
    }

    /// Reference implementation: filter all vertices, peel naively.
    fn brute_gk(
        g: &Graph,
        profiles: &[PTree],
        space: &QuerySpace,
        s: &Subtree,
        q: VertexId,
        k: u32,
    ) -> Option<Vec<VertexId>> {
        let want = space.to_ptree(s);
        let cands: Vec<VertexId> = (0..g.num_vertices() as u32)
            .filter(|&v| want.is_subtree_of(&profiles[v as usize]))
            .collect();
        let mut sc = SubsetCore::new(g.num_vertices());
        sc.kcore_component_within(g, &cands, q, k)
    }

    #[test]
    fn verify_from_base_agrees_with_direct() {
        let (g, t, profiles) = setup();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let q = 3u32;
        let k = 2;
        let space = ctx.space_for(q).unwrap();
        let mut direct = Verifier::new(&ctx, &space, q, k);
        let mut incr = Verifier::new(&ctx, &space, q, k);
        // Walk rightmost extensions, comparing incremental narrowing
        // against direct verification at every step.
        let mut stack = vec![(space.root_only(), incr.gk())];
        while let Some((s, community)) = stack.pop() {
            let Some(base) = community else { continue };
            for p in space.rightmost_extensions(&s) {
                let child = s.with(p);
                let via_base = incr.verify_from_base(&child, &base, p);
                let via_direct = direct.verify(&child);
                assert_eq!(
                    via_base.as_ref().map(|r| r.as_ref()),
                    via_direct.as_ref().map(|r| r.as_ref())
                );
                stack.push((child, via_base));
            }
        }
    }

    #[test]
    fn maximality_check() {
        let (g, t, profiles) = setup();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let q = 3u32;
        let space = ctx.space_for(q).unwrap();
        let mut ver = Verifier::new(&ctx, &space, q, 2);
        // Fig. 2(b): {B,C,D} share r->CM->{ML,AI}; that candidate is
        // feasible and maximal at k=2.
        let cm = space.position_of(t.id_of("CM").unwrap()).unwrap();
        let ml = space.position_of(t.id_of("ML").unwrap()).unwrap();
        let ai = space.position_of(t.id_of("AI").unwrap()).unwrap();
        let cand = space.closure([cm, ml, ai]);
        assert!(ver.is_feasible(&cand));
        assert!(ver.is_maximal_feasible(&cand));
        assert_eq!(
            ver.verify(&cand).unwrap().as_ref(),
            &vec![1, 2, 3] // B, C, D
        );
        // The root-only candidate is feasible but NOT maximal.
        assert!(ver.is_feasible(&space.root_only()));
        assert!(!ver.is_maximal_feasible(&space.root_only()));
    }

    #[test]
    fn infeasible_when_gk_missing() {
        let (g, t, profiles) = setup();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let space = ctx.space_for(2).unwrap();
        // Vertex C has core 2; k=3 leaves no Gk.
        let mut ver = Verifier::new(&ctx, &space, 2, 3);
        assert!(ver.gk().is_none());
        assert!(!ver.is_feasible(&space.root_only()));
        assert!(!ver.is_feasible(&space.full()));
    }

    #[test]
    fn stats_accumulate() {
        let (g, t, profiles) = setup();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let space = ctx.space_for(3).unwrap();
        let mut ver = Verifier::new(&ctx, &space, 3, 2);
        let full = space.full();
        let _ = ver.verify(&full);
        let _ = ver.verify(&full);
        assert_eq!(ver.stats.verifications, 1);
        assert_eq!(ver.stats.memo_hits, 1);
        ver.note_generated(3);
        assert_eq!(ver.stats.subtrees_generated, 3);
        assert_eq!(ver.stats.query_tree_size, space.len() as u32);
    }

    use pcs_graph::core::SubsetCore;
}
