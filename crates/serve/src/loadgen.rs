//! A closed-loop load generator for the serving layer.
//!
//! *Closed loop*: each client thread keeps exactly one request in
//! flight — send, wait for the full response, record the latency, send
//! the next. Throughput is therefore an **output** of the measurement
//! (concurrency ÷ mean latency), not an input, which is the honest way
//! to measure a server whose latency you do not yet know; open-loop
//! generators overstate tail latency the moment the server saturates.
//!
//! The generator replays a pre-generated operation list (typically a
//! zipfian [`serve_traffic`] stream rendered to [`LoadOp`]s by the
//! bench harness) round-robin across `concurrency` keep-alive
//! connections, and reports per-class latency percentiles plus the
//! shed/error tallies the admission-control story needs.
//!
//! [`serve_traffic`]: https://docs.rs/pcs-datasets
//!
//! This module is driver code, not the serving hot path — it lives
//! outside the audit's no-panic scope.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One request to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadOp {
    /// `GET /query?v=..&k=..`.
    Query {
        /// The query vertex.
        vertex: u32,
        /// The degree bound.
        k: u32,
    },
    /// `POST /apply` with this body (already in wire format: one op
    /// per line).
    Apply(String),
}

/// Load-run shape.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections (each a closed loop).
    pub concurrency: usize,
    /// Reconnect/retry attempts after a shed 503 or refused connect
    /// before the op is abandoned as `failed`.
    pub max_retries: usize,
    /// Backoff between retries.
    pub retry_backoff: Duration,
    /// Socket read timeout per response.
    pub read_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            concurrency: 4,
            max_retries: 64,
            retry_backoff: Duration::from_millis(1),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Latency percentiles in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyUs {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Mean.
    pub mean: u64,
    /// Sample count.
    pub samples: usize,
}

/// The outcome of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Ops attempted.
    pub total: usize,
    /// 2xx responses.
    pub ok: usize,
    /// 4xx responses.
    pub http_4xx: usize,
    /// 5xx responses received *as a final answer* (excludes shed 503s
    /// that were retried successfully).
    pub http_5xx: usize,
    /// Shed events absorbed (503 or refused connect, then retried).
    pub shed_retries: usize,
    /// Ops abandoned after exhausting retries.
    pub failed: usize,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second (closed-loop observed rate).
    pub qps: f64,
    /// Read (query) latency percentiles.
    pub read_latency: LatencyUs,
    /// Write (apply) latency percentiles.
    pub write_latency: LatencyUs,
}

/// Computes percentiles from raw microsecond samples.
///
/// Uses the **nearest-rank** definition: the q-th percentile is the
/// smallest sample with at least `⌈n·q⌉` samples at or below it. In
/// particular, a tail percentile of a small sample set reports the
/// *maximum* (p999 of 10 samples is the slowest request), never an
/// interpolated or rounded-down index that understates the tail.
pub fn latency_summary(samples: &mut [u64]) -> LatencyUs {
    if samples.is_empty() {
        return LatencyUs::default();
    }
    samples.sort_unstable();
    let at = |q: f64| -> u64 {
        let rank = (samples.len() as f64 * q).ceil() as usize;
        samples[rank.clamp(1, samples.len()) - 1]
    };
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    LatencyUs { p50: at(0.50), p99: at(0.99), p999: at(0.999), mean, samples: samples.len() }
}

struct ClientTally {
    ok: usize,
    http_4xx: usize,
    http_5xx: usize,
    shed_retries: usize,
    failed: usize,
    read_us: Vec<u64>,
    write_us: Vec<u64>,
}

/// Replays `ops` against `addr` and reports.
pub fn run_load(addr: SocketAddr, ops: &[LoadOp], cfg: &LoadConfig) -> LoadReport {
    let concurrency = cfg.concurrency.max(1);
    let shed_total = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let tallies: Vec<ClientTally> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(concurrency);
        for client in 0..concurrency {
            let shed_total = Arc::clone(&shed_total);
            // Round-robin partition: client i replays ops i, i+c, ...
            let slice: Vec<&LoadOp> = ops.iter().skip(client).step_by(concurrency).collect();
            handles.push(scope.spawn(move || client_loop(addr, &slice, cfg, &shed_total)));
        }
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport { total: ops.len(), elapsed, ..LoadReport::default() };
    let mut read_us = Vec::new();
    let mut write_us = Vec::new();
    for t in tallies {
        report.ok += t.ok;
        report.http_4xx += t.http_4xx;
        report.http_5xx += t.http_5xx;
        report.shed_retries += t.shed_retries;
        report.failed += t.failed;
        read_us.extend(t.read_us);
        write_us.extend(t.write_us);
    }
    let completed = report.ok + report.http_4xx + report.http_5xx;
    report.qps = completed as f64 / elapsed.as_secs_f64().max(1e-9);
    report.read_latency = latency_summary(&mut read_us);
    report.write_latency = latency_summary(&mut write_us);
    report
}

/// One client: a closed loop over its share of the ops.
fn client_loop(
    addr: SocketAddr,
    ops: &[&LoadOp],
    cfg: &LoadConfig,
    shed_total: &AtomicU64,
) -> ClientTally {
    let mut tally = ClientTally {
        ok: 0,
        http_4xx: 0,
        http_5xx: 0,
        shed_retries: 0,
        failed: 0,
        read_us: Vec::with_capacity(ops.len()),
        write_us: Vec::new(),
    };
    let mut conn: Option<TcpStream> = None;
    'ops: for op in ops {
        let wire = render_op(op);
        let mut attempts = 0usize;
        loop {
            let stream = match conn.take() {
                Some(s) => s,
                None => match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_read_timeout(Some(cfg.read_timeout));
                        let _ = s.set_nodelay(true);
                        s
                    }
                    Err(_) => {
                        // Connection refused / reset — the server is
                        // shedding at the accept gate or restarting.
                        tally.shed_retries += 1;
                        shed_total.fetch_add(1, Ordering::Relaxed);
                        attempts += 1;
                        if attempts > cfg.max_retries {
                            tally.failed += 1;
                            continue 'ops;
                        }
                        thread::sleep(cfg.retry_backoff);
                        continue;
                    }
                },
            };
            let started = Instant::now();
            match exchange(stream, &wire) {
                Ok((status, keep, stream)) => {
                    if keep {
                        conn = Some(stream);
                    }
                    if status == 503 {
                        // Shed under load: back off and retry the op.
                        tally.shed_retries += 1;
                        shed_total.fetch_add(1, Ordering::Relaxed);
                        attempts += 1;
                        if attempts > cfg.max_retries {
                            tally.failed += 1;
                            continue 'ops;
                        }
                        thread::sleep(cfg.retry_backoff);
                        continue;
                    }
                    let us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    match op {
                        LoadOp::Query { .. } => tally.read_us.push(us),
                        LoadOp::Apply(_) => tally.write_us.push(us),
                    }
                    if (200..300).contains(&status) {
                        tally.ok += 1;
                    } else if (400..500).contains(&status) {
                        tally.http_4xx += 1;
                    } else {
                        tally.http_5xx += 1;
                    }
                    continue 'ops;
                }
                Err(_) => {
                    // Mid-exchange failure: drop the connection, retry.
                    attempts += 1;
                    if attempts > cfg.max_retries {
                        tally.failed += 1;
                        continue 'ops;
                    }
                    thread::sleep(cfg.retry_backoff);
                    continue;
                }
            }
        }
    }
    tally
}

/// Serializes one op to wire bytes.
fn render_op(op: &LoadOp) -> Vec<u8> {
    match op {
        LoadOp::Query { vertex, k } => format!(
            "GET /query?v={vertex}&k={k} HTTP/1.1\r\nHost: pcs\r\nConnection: keep-alive\r\n\r\n"
        )
        .into_bytes(),
        LoadOp::Apply(body) => format!(
            "POST /apply HTTP/1.1\r\nHost: pcs\r\nConnection: keep-alive\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
    }
}

/// Sends one request and reads one full response. Returns
/// `(status, server_keeps_alive, stream)`.
fn exchange(mut stream: TcpStream, wire: &[u8]) -> std::io::Result<(u16, bool, TcpStream)> {
    stream.write_all(wire)?;
    stream.flush()?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the full head is in.
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let got = stream.read(&mut chunk)?;
        if got == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..got]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 =
        status_line.split(' ').nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let mut content_length = 0usize;
    let mut keep = true;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                keep = false;
            }
        }
    }
    // Drain the body.
    let mut have = buf.len() - (head_end + 4);
    while have < content_length {
        let got = stream.read(&mut chunk)?;
        if got == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        have += got;
    }
    Ok((status, keep, stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_orders_percentiles() {
        let mut samples: Vec<u64> = (1..=1000).collect();
        let s = latency_summary(&mut samples);
        assert_eq!(s.samples, 1000);
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999);
        // Nearest-rank: p50 of 1..=1000 is the 500th value, p99 the
        // 990th, p999 the 999th.
        assert_eq!(s.p50, 500);
        assert_eq!(s.p99, 990);
        assert_eq!(s.p999, 999);
    }

    /// Small-sample tails: with fewer than 1000 samples, p999 must be
    /// the maximum. The old `((n - 1) * q).round()` indexing landed
    /// below the max for every n in 502..1000 (e.g. index 997 of 999
    /// samples), silently understating the reported tail.
    #[test]
    fn small_sample_tail_percentiles_clamp_to_max() {
        let mut one = vec![42u64];
        let s = latency_summary(&mut one);
        assert_eq!((s.p50, s.p99, s.p999), (42, 42, 42));

        let mut two = vec![10u64, 20];
        let s = latency_summary(&mut two);
        assert_eq!(s.p50, 10, "nearest-rank median of two is the lower");
        assert_eq!(s.p99, 20);
        assert_eq!(s.p999, 20);

        let mut many: Vec<u64> = (1..=999).collect();
        let s = latency_summary(&mut many);
        assert_eq!(s.p999, 999, "p999 of 999 samples is the max");
        assert_eq!(s.p99, 990);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(latency_summary(&mut Vec::new()), LatencyUs::default());
    }

    #[test]
    fn ops_render_valid_http() {
        let q = render_op(&LoadOp::Query { vertex: 7, k: 3 });
        let text = String::from_utf8(q).unwrap();
        assert!(text.starts_with("GET /query?v=7&k=3 HTTP/1.1\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
        let a = render_op(&LoadOp::Apply("add 0 1\n".to_string()));
        let text = String::from_utf8(a).unwrap();
        assert!(text.contains("Content-Length: 8"));
        assert!(text.ends_with("add 0 1\n"));
    }
}
