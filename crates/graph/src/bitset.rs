//! Dense vertex-set representations.
//!
//! Two set types back the hot paths of community verification:
//!
//! * [`BitSet`] — a plain dynamic bitset (one bit per vertex / tree node)
//!   with the usual set algebra. Used for P-tree node sets and persisted
//!   memberships.
//! * [`EpochSet`] — a "versioned" membership array that can be cleared in
//!   O(1) by bumping an epoch counter. Community verification tests
//!   membership of thousands of candidate sets per query; clearing a
//!   `BitSet` between candidates would cost O(n) each time, while an
//!   `EpochSet` makes the whole loop allocation- and clear-free.

/// A growable bitset over `usize` indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset with capacity for `n` indices.
    pub fn with_capacity(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)], len: 0 }
    }

    /// Number of elements currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn ensure(&mut self, idx: usize) {
        let w = idx / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
    }

    /// Inserts `idx`; returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        self.ensure(idx);
        let (w, b) = (idx / 64, idx % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `idx`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.len -= present as usize;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        let n = self.words.len().min(other.words.len());
        for i in 0..n {
            self.words[i] &= other.words[i];
        }
        for w in self.words.iter_mut().skip(n) {
            *w = 0;
        }
        self.recount();
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        self.recount();
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            if w & !o != 0 {
                return false;
            }
        }
        true
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words.iter().zip(other.words.iter()).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Size of the symmetric difference without materializing it.
    pub fn symmetric_difference_len(&self, other: &BitSet) -> usize {
        let long = self.words.len().max(other.words.len());
        (0..long)
            .map(|i| {
                let a = self.words.get(i).copied().unwrap_or(0);
                let b = other.words.get(i).copied().unwrap_or(0);
                (a ^ b).count_ones() as usize
            })
            .sum()
    }

    /// Size of the union without materializing it.
    pub fn union_len(&self, other: &BitSet) -> usize {
        let long = self.words.len().max(other.words.len());
        (0..long)
            .map(|i| {
                let a = self.words.get(i).copied().unwrap_or(0);
                let b = other.words.get(i).copied().unwrap_or(0);
                (a | b).count_ones() as usize
            })
            .sum()
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::default();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

/// A membership set with O(1) clear via epoch stamping.
///
/// `mark[v] == epoch` means `v` is in the set. [`EpochSet::reset`] bumps
/// the epoch, which invalidates every stamp at once. Verification loops
/// reuse a single `EpochSet` across thousands of candidate communities.
#[derive(Clone, Debug)]
pub struct EpochSet {
    mark: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl EpochSet {
    /// Creates a set able to hold indices `0..n`.
    pub fn new(n: usize) -> Self {
        EpochSet { mark: vec![0; n], epoch: 1, len: 0 }
    }

    /// Number of currently marked indices.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is marked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity (the `n` the set was created with, possibly grown).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mark.len()
    }

    /// Empties the set in O(1) (amortized; a full wrap of the 32-bit
    /// epoch counter triggers one O(n) re-zero every 2^32 resets).
    pub fn reset(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.iter_mut().for_each(|m| *m = 0);
                1
            }
        };
        self.len = 0;
    }

    /// Grows capacity to at least `n`.
    pub fn grow(&mut self, n: usize) {
        if n > self.mark.len() {
            self.mark.resize(n, 0);
        }
    }

    /// Inserts `idx`; returns true if newly inserted.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        let fresh = self.mark[idx] != self.epoch;
        self.mark[idx] = self.epoch;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `idx`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        let present = self.mark[idx] == self.epoch;
        if present {
            self.mark[idx] = self.epoch.wrapping_sub(1);
            self.len -= 1;
        }
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.mark[idx] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_insert_remove_contains() {
        let mut s = BitSet::with_capacity(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(!s.contains(4));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn bitset_grows_past_capacity() {
        let mut s = BitSet::with_capacity(1);
        s.insert(1000);
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn bitset_iter_sorted() {
        let s: BitSet = [5usize, 1, 200, 63, 64].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 63, 64, 200]);
    }

    #[test]
    fn bitset_algebra() {
        let a: BitSet = [1usize, 2, 3, 70].into_iter().collect();
        let b: BitSet = [2usize, 3, 4].into_iter().collect();
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.union_len(&b), 5);
        assert_eq!(a.symmetric_difference_len(&b), 3);
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn bitset_subset_with_shorter_other() {
        let a: BitSet = [100usize].into_iter().collect();
        let b: BitSet = [1usize].into_iter().collect();
        assert!(!a.is_subset(&b));
        let empty = BitSet::default();
        assert!(empty.is_subset(&a));
    }

    #[test]
    fn epoch_set_reset_is_cheap_and_correct() {
        let mut s = EpochSet::new(10);
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert_eq!(s.len(), 2);
        s.reset();
        assert!(s.is_empty());
        assert!(!s.contains(1));
        assert!(s.insert(1));
        assert!(s.remove(1));
        assert!(!s.contains(1));
        assert!(!s.remove(1));
    }

    #[test]
    fn epoch_set_grow() {
        let mut s = EpochSet::new(2);
        s.grow(100);
        assert!(s.insert(99));
        assert!(s.contains(99));
        assert_eq!(s.capacity(), 100);
    }
}
