//! Query-vertex sampling.
//!
//! The paper evaluates 100 random query vertices drawn from the 6-core
//! of each dataset (so that k = 6 queries are satisfiable). The sampler
//! falls back to lower cores when a dataset's 6-core is too small.

use pcs_graph::core::CoreDecomposition;
use pcs_graph::VertexId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::gen::ProfiledDataset;

/// Samples up to `count` distinct query vertices from the `k`-core of
/// the dataset. If the `k`-core has fewer than `count` vertices, `k`
/// is lowered until enough are available (reaching the 0-core = all
/// vertices in the worst case). Returns the vertices and the core
/// level actually used.
pub fn sample_query_vertices(
    ds: &ProfiledDataset,
    k: u32,
    count: usize,
    seed: u64,
) -> (Vec<VertexId>, u32) {
    let cd = CoreDecomposition::new(&ds.graph);
    let mut level = k.min(cd.max_core());
    let mut pool: Vec<VertexId> = cd.kcore_vertices(level);
    while pool.len() < count && level > 0 {
        level -= 1;
        pool = cd.kcore_vertices(level);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    pool.truncate(count);
    pool.sort_unstable();
    (pool, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec};
    use crate::taxonomy::random_taxonomy;

    #[test]
    fn samples_come_from_requested_core() {
        let ds = generate(&DatasetSpec::small("s", 500, 3), random_taxonomy(150, 5, 8, 1));
        let (qs, level) = sample_query_vertices(&ds, 6, 50, 1);
        assert_eq!(qs.len(), 50);
        let cd = CoreDecomposition::new(&ds.graph);
        for &q in &qs {
            assert!(cd.core_number(q) >= level);
        }
        // Distinct and sorted.
        assert!(qs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn falls_back_when_core_too_small() {
        // A sparse path graph has no 6-core at all.
        let g =
            pcs_graph::Graph::from_edges(10, &(0..9u32).map(|i| (i, i + 1)).collect::<Vec<_>>())
                .unwrap();
        let ds = ProfiledDataset {
            name: "path".into(),
            graph: g,
            tax: pcs_ptree::Taxonomy::new("r"),
            profiles: vec![pcs_ptree::PTree::root_only(); 10],
            groups: Vec::new(),
        };
        let (qs, level) = sample_query_vertices(&ds, 6, 5, 2);
        assert_eq!(qs.len(), 5);
        assert!(level <= 1);
    }

    #[test]
    fn deterministic() {
        let ds = generate(&DatasetSpec::small("s", 400, 5), random_taxonomy(150, 5, 8, 1));
        assert_eq!(sample_query_vertices(&ds, 6, 20, 9), sample_query_vertices(&ds, 6, 20, 9));
    }
}
