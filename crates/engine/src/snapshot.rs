//! Epoch snapshots: the engine's lock-free read path.
//!
//! Every mutation publishes a fresh immutable [`SnapshotInner`] behind
//! an `Arc`; queries clone the current `Arc` once and then read without
//! any synchronization. In-flight queries keep the snapshot they
//! started on alive until they finish, so a writer can never yank state
//! out from under a reader — the epoch number stamped on every
//! [`QueryResponse`](crate::QueryResponse) says exactly which graph
//! version answered.
//!
//! The graph and profiles sit behind **handles** ([`GraphHandle`],
//! [`ProfilesHandle`]): for engines built in memory and for every
//! post-update epoch they are plain resident `Arc`s, but an engine
//! lazily loaded from a snapshot file starts with file-backed handles
//! that decode on first touch. A lazy read that hits damaged bytes
//! records the typed [`StoreError`](pcs_store::StoreError) in the
//! snapshot's shared fault cell; the query path checks the cell after
//! computing and returns the error instead of the answer — damage in a
//! range no query touches costs nothing, damage in a touched range is
//! fail-stop, never a silently wrong community.

use crate::cache::QueryCache;
use crate::error::{Error, Result};
use pcs_graph::core::CoreDecomposition;
use pcs_graph::{Graph, GraphHandle};
use pcs_index::{IndexError, ShardedCpIndex};
use pcs_ptree::{PTree, ProfilesHandle};
use pcs_store::FaultCell;
use std::sync::{Arc, OnceLock};

/// One immutable version of the engine's data: graph, profiles, and the
/// lazily materialized derived state (core decomposition, CP-tree).
///
/// The big components sit behind their own `Arc`s so publication cost
/// tracks what a batch actually changed: an edge-only batch shares the
/// previous epoch's profiles, a profile-only batch shares its graph
/// *and* cores, and only the touched component is deep-copied.
pub(crate) struct SnapshotInner {
    pub(crate) graph: GraphHandle,
    pub(crate) profiles: ProfilesHandle,
    /// Computed on first use; update batches with edge changes publish
    /// it pre-seeded from the incrementally maintained master copy,
    /// profile-only batches share the previous epoch's cell, and lazy
    /// loads pre-seed it from the file's `CORES` section.
    pub(crate) cores: Arc<OnceLock<CoreDecomposition>>,
    /// The sharded index facade, created lazily (policy permitting);
    /// update batches publish it pre-seeded when incremental patching
    /// or an eager rebuild ran. Individual shards inside materialize
    /// on their own per-label `OnceLock`s.
    pub(crate) index: OnceLock<std::result::Result<ShardedCpIndex, IndexError>>,
    /// The epoch-keyed result cache, present when the engine was built
    /// with a [`CacheMode`](crate::CacheMode) other than `Off`. Bound
    /// to this snapshot's version: a hit can only return an answer
    /// computed against exactly this graph and these profiles.
    pub(crate) cache: Option<QueryCache>,
    /// The shared first-fault register of a lazily loaded snapshot
    /// (`None` for engines built in memory). Checked after every query
    /// and apply; carried across epochs because a patched index may
    /// still fault untouched labels in from the file.
    pub(crate) fault: Option<FaultCell>,
    pub(crate) epoch: u64,
}

impl SnapshotInner {
    /// The first typed store fault any lazy read of this snapshot hit.
    pub(crate) fn store_fault(&self) -> Option<pcs_store::StoreError> {
        self.fault.as_ref().and_then(FaultCell::get)
    }

    /// Maps a lazy-materialization failure to the typed error the
    /// caller should surface: the recorded store fault when there is
    /// one, an internal error otherwise.
    pub(crate) fn lazy_error(&self, detail: String) -> Error {
        match self.store_fault() {
            Some(e) => Error::Store(e),
            None => Error::Internal { component: "lazy-load", detail },
        }
    }

    /// The materialized graph, decoding it from the backing file on
    /// first call for lazily loaded snapshots. Fails with the typed
    /// store error when the file's `GRAPH` range is damaged.
    pub(crate) fn materialized_graph(&self) -> Result<&Arc<Graph>> {
        self.graph.get().map_err(|e| self.lazy_error(e.to_string()))
    }

    /// The dense profile array, faulting in every remaining chunk on
    /// first call for lazily loaded snapshots.
    pub(crate) fn dense_profiles(&self) -> Result<Arc<Vec<PTree>>> {
        self.profiles.to_dense().map_err(|detail| self.lazy_error(detail))
    }

    /// The core decomposition of this snapshot's graph.
    ///
    /// Lazy loads pre-seed the cell from the file, so this computes
    /// only when no `CORES` section was persisted; if the graph itself
    /// cannot materialize, an all-zero stand-in fills the cell — the
    /// poisoned fault cell already forces every query to a typed error,
    /// so the stand-in is never served as an answer.
    pub(crate) fn cores(&self) -> &CoreDecomposition {
        self.cores.get_or_init(|| match self.graph.get() {
            Ok(g) => CoreDecomposition::new(g),
            Err(_) => CoreDecomposition::from_core_numbers(vec![0; self.graph.num_vertices()]),
        })
    }

    /// The sharded index, if this snapshot has its facade built
    /// already (individual shards may still be cold).
    pub(crate) fn index_if_built(&self) -> Option<&ShardedCpIndex> {
        self.index.get().and_then(|r| r.as_ref().ok())
    }

    /// A structural copy of this snapshot — sharing every `Arc`'d
    /// component and whatever the index cell holds (index clones share
    /// resident shards, so this is cheap) — with `cache` swapped in.
    pub(crate) fn clone_with_cache(&self, cache: Option<QueryCache>) -> SnapshotInner {
        let index = OnceLock::new();
        if let Some(r) = self.index.get() {
            let _ = index.set(r.clone());
        }
        SnapshotInner {
            graph: self.graph.clone(),
            profiles: self.profiles.clone(),
            cores: Arc::clone(&self.cores),
            index,
            cache,
            fault: self.fault.clone(),
            epoch: self.epoch,
        }
    }
}

/// The deep invariant verifier. Compiled only under `debug-invariants`;
/// release builds carry none of this code.
#[cfg(feature = "debug-invariants")]
impl SnapshotInner {
    /// Cross-checks every invariant one epoch's published state must
    /// satisfy:
    ///
    /// * **CSR structure** via [`Graph::validate`]: monotone offsets,
    ///   sorted duplicate-free adjacency, no self-loops, symmetric
    ///   half-edges;
    /// * **profiles**: one per vertex, every label in range, every
    ///   node set ancestor-closed in the taxonomy;
    /// * **cores** (when computed): one per vertex, `core(v) ≤ deg(v)`,
    ///   and the k-core closure spot-check at every vertex —
    ///   `|{u ∈ N(v) : core(u) ≥ core(v)}| ≥ core(v)` (a forged
    ///   decomposition that claims a deeper ĉore than the graph
    ///   supports fails here);
    /// * **index** (when built): the full
    ///   [`ShardedCpIndex::verify_deep`] pass against this snapshot's
    ///   authoritative graph and profiles.
    ///
    /// On a lazily loaded snapshot this **materializes everything**
    /// first (an unreadable range is itself a reported violation) —
    /// full-depth verification is exactly the moment to pay for full
    /// residency.
    ///
    /// Epoch monotonicity is checked one level up, in
    /// [`PcsEngine::verify_deep`](crate::PcsEngine::verify_deep),
    /// which owns the high-water mark.
    pub(crate) fn verify_deep(&self, tax: &pcs_ptree::Taxonomy) -> std::result::Result<(), String> {
        let at = |detail: String| format!("epoch {}: {detail}", self.epoch);
        let graph = self.graph.get().map_err(|e| at(format!("graph unavailable: {e}")))?;
        let profiles =
            self.profiles.to_dense().map_err(|e| at(format!("profiles unavailable: {e}")))?;
        let n = graph.num_vertices();
        graph.validate().map_err(|e| at(format!("CSR invariant broken: {e}")))?;
        if profiles.len() != n {
            return Err(at(format!("{} profiles for {n} vertices", profiles.len())));
        }
        for (v, p) in profiles.iter().enumerate() {
            if let Some(&l) = p.nodes().iter().find(|&&l| l as usize >= tax.len()) {
                return Err(at(format!("profile of vertex {v} names unknown label {l}")));
            }
            if !tax.is_ancestor_closed(p.nodes()) {
                return Err(at(format!("profile of vertex {v} is not ancestor-closed")));
            }
        }
        if let Some(cores) = self.cores.get() {
            let core = cores.core_numbers();
            if core.len() != n {
                return Err(at(format!("{} core numbers for {n} vertices", core.len())));
            }
            for (v, &c) in core.iter().enumerate() {
                let nbrs = graph.neighbors(v as u32);
                if c as usize > nbrs.len() {
                    return Err(at(format!(
                        "core number {c} of vertex {v} exceeds its degree {}",
                        nbrs.len()
                    )));
                }
                let support = nbrs
                    .iter()
                    .filter(|&&u| core.get(u as usize).is_some_and(|&cu| cu >= c))
                    .count();
                if support < c as usize {
                    return Err(at(format!(
                        "k-core closure violated at vertex {v}: core {c} but only \
                         {support} neighbors at that level"
                    )));
                }
            }
        }
        if let Some(idx) = self.index_if_built() {
            idx.verify_deep(tax, graph, &profiles).map_err(|e| at(format!("index: {e}")))?;
        }
        if let Some(e) = self.store_fault() {
            return Err(at(format!("lazy load recorded a store fault: {e}")));
        }
        Ok(())
    }
}

/// A consistent, immutable view of the engine at one epoch.
///
/// Obtained from [`PcsEngine::snapshot`](crate::PcsEngine::snapshot);
/// cheap to clone (one `Arc`). All accessors borrow from the same
/// version: a concurrent [`apply`](crate::PcsEngine::apply) can never
/// make `graph()` and `profiles()` disagree. Holding a snapshot only
/// pins memory — it never blocks writers.
#[derive(Clone)]
pub struct EngineSnapshot {
    pub(crate) inner: Arc<SnapshotInner>,
}

impl EngineSnapshot {
    /// The graph at this epoch.
    ///
    /// On a lazily loaded snapshot the first call decodes the `GRAPH`
    /// section from the backing file (use [`try_graph`][Self::try_graph]
    /// to observe residency without forcing it, and to get a typed
    /// error instead of the panic this accessor raises when the backing
    /// range is damaged).
    pub fn graph(&self) -> &Graph {
        match self.inner.graph.get() {
            Ok(g) => g,
            // audit:allow(no-panic): documented compat surface — callers who need a typed error use try_graph
            Err(e) => panic!("snapshot graph unavailable: {e}"),
        }
    }

    /// The graph at this epoch, materializing on first call; damage in
    /// the backing file surfaces as the typed store error.
    pub fn try_graph(&self) -> Result<&Graph> {
        self.inner.materialized_graph().map(|g| g.as_ref())
    }

    /// The per-vertex P-trees at this epoch.
    ///
    /// On a lazily loaded snapshot the first call faults in **every**
    /// profile chunk (use [`try_profiles`][Self::try_profiles] for the
    /// typed-error variant; per-vertex reads inside queries stay
    /// chunk-granular — this dense accessor is the compatibility
    /// surface for tooling that wants a slice).
    pub fn profiles(&self) -> &[PTree] {
        if let Some(s) = self.inner.profiles.as_ref().as_slice() {
            return s;
        }
        match self.inner.dense_profiles() {
            // Serve the borrow from the source's dense cache, which
            // `to_dense` just populated.
            Ok(_) => self
                .inner
                .profiles
                .as_ref()
                .as_slice()
                // audit:allow(no-panic): dense_profiles() just populated the cache on this path
                .unwrap_or_else(|| panic!("profiles dense cache empty after materialization")),
            // audit:allow(no-panic): documented compat surface — callers who need a typed error use try_profiles
            Err(e) => panic!("snapshot profiles unavailable: {e}"),
        }
    }

    /// The per-vertex P-trees at this epoch, materializing the dense
    /// array on first call; damage surfaces as the typed store error.
    pub fn try_profiles(&self) -> Result<Arc<Vec<PTree>>> {
        self.inner.dense_profiles()
    }

    /// The core decomposition at this epoch (computed on first call if
    /// no query has needed it yet).
    pub fn cores(&self) -> &CoreDecomposition {
        self.inner.cores()
    }

    /// The sharded CP-tree index at this epoch, if its facade is
    /// built. Never triggers facade construction (probing the returned
    /// index can still materialize individual shards — that is its
    /// contract).
    pub fn index(&self) -> Option<&ShardedCpIndex> {
        self.inner.index_if_built()
    }

    /// Number of materialized index shards at this epoch (0 when no
    /// facade is built). Never triggers any construction — the serving
    /// observability companion to [`EngineSnapshot::index`].
    pub fn resident_shards(&self) -> usize {
        self.inner.index_if_built().map_or(0, ShardedCpIndex::resident_shards)
    }

    /// The epoch counter: 0 for the engine as built, +1 per published
    /// update batch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The first typed store fault a lazy read of this snapshot hit,
    /// if any. `None` for engines built in memory.
    pub fn store_fault(&self) -> Option<pcs_store::StoreError> {
        self.inner.store_fault()
    }

    /// True once the graph is resident (always, for engines built in
    /// memory; after the first adjacency touch for lazy loads).
    pub fn graph_resident(&self) -> bool {
        self.inner.graph.is_materialized()
    }

    /// Runs the deep invariant verifier on this snapshot alone (no
    /// epoch-monotonicity check — that needs the engine's high-water
    /// mark; see [`PcsEngine::verify_deep`](crate::PcsEngine::verify_deep)).
    /// `tax` must be the owning engine's taxonomy.
    #[cfg(feature = "debug-invariants")]
    pub fn verify_deep(&self, tax: &pcs_ptree::Taxonomy) -> std::result::Result<(), String> {
        self.inner.verify_deep(tax)
    }
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("epoch", &self.inner.epoch)
            .field("vertices", &self.inner.graph.num_vertices())
            .field("edges", &self.inner.graph.num_edges())
            .field("index_built", &self.inner.index.get().is_some())
            .finish()
    }
}
