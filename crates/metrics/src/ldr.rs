//! Level-Diversity Ratio (Eq. 3 of the paper).
//!
//! For a query `q`, compare a method `F`'s shared community trees to
//! PCS's, taxonomy level by taxonomy level:
//!
//! `LDR(q, F) = (1/L) Σ_i [ Σ_h L_i(T(F,q,h)) / Σ_j L_i(T(PCS,q,j)) ]`
//!
//! where `L_i(T)` counts the distinct labels at taxonomy depth `i`
//! across a shared tree, summed over the communities a method returns.
//! A value below 1 means the method's themes cover fewer labels per
//! level than PCS's — the paper reports ACQ at only 40–60 %.
//!
//! Levels where PCS has no label (denominator 0) are skipped, mirroring
//! the fraction being undefined there.

use pcs_core::ProfiledCommunity;
use pcs_graph::FxHashSet;
use pcs_ptree::{LabelId, PTree, Taxonomy};

/// Distinct labels at depth `d` across a set of shared trees.
fn unique_labels_at_depth(
    tax: &Taxonomy,
    trees: impl Iterator<Item = impl std::ops::Deref<Target = PTree>>,
    d: u32,
) -> usize {
    let mut set: FxHashSet<LabelId> = FxHashSet::default();
    for t in trees {
        for id in t.nodes_at_depth(tax, d) {
            set.insert(id);
        }
    }
    set.len()
}

/// LDR of method `F` relative to PCS for one query (Eq. 3). `tq` is
/// the query vertex's P-tree (its height defines the level count).
/// Returns 0 when PCS produced nothing.
pub fn ldr(
    tax: &Taxonomy,
    tq: &PTree,
    f_communities: &[ProfiledCommunity],
    pcs_communities: &[ProfiledCommunity],
) -> f64 {
    let height = tq.height(tax);
    if pcs_communities.is_empty() || height == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut counted = 0usize;
    // Levels 1..=height (the root level is shared by construction).
    for d in 1..=height {
        let denom = unique_labels_at_depth(tax, pcs_communities.iter().map(|c| &c.subtree), d);
        if denom == 0 {
            continue;
        }
        let num = unique_labels_at_depth(tax, f_communities.iter().map(|c| &c.subtree), d);
        acc += num as f64 / denom as f64;
        counted += 1;
    }
    if counted == 0 {
        // Every PCS theme is root-only, so there is no level diversity
        // to cover: any method that returned communities vacuously
        // matches PCS (in particular self-LDR stays 1), while a method
        // that returned nothing still scores 0.
        if f_communities.is_empty() {
            0.0
        } else {
            1.0
        }
    } else {
        acc / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Taxonomy, PTree, Vec<PTree>) {
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let c = t.add_child(a, "c").unwrap();
        let d = t.add_child(a, "d").unwrap();
        let tq = PTree::from_labels(&t, [c, d, b]).unwrap();
        let themes = vec![
            PTree::from_labels(&t, [c]).unwrap(),    // theme 1: r-a-c
            PTree::from_labels(&t, [b]).unwrap(),    // theme 2: r-b
            PTree::from_labels(&t, [c, d]).unwrap(), // theme 3: r-a-{c,d}
        ];
        (t, tq, themes)
    }

    fn comm(p: &PTree) -> ProfiledCommunity {
        ProfiledCommunity { subtree: p.clone(), vertices: vec![0] }
    }

    #[test]
    fn same_method_gives_one() {
        let (t, tq, themes) = setup();
        let pcs = vec![comm(&themes[0]), comm(&themes[1])];
        let score = ldr(&t, &tq, &pcs, &pcs);
        assert!((score - 1.0).abs() < 1e-12, "{score}");
    }

    #[test]
    fn subset_method_scores_below_one() {
        let (t, tq, themes) = setup();
        let pcs = vec![comm(&themes[2]), comm(&themes[1])]; // labels a,b @1; c,d @2
        let f = vec![comm(&themes[0])]; // labels a @1; c @2
        let score = ldr(&t, &tq, &f, &pcs);
        // Level 1: 1/2, level 2: 1/2 => 0.5.
        assert!((score - 0.5).abs() < 1e-12, "{score}");
    }

    #[test]
    fn empty_pcs_yields_zero() {
        let (t, tq, themes) = setup();
        assert_eq!(ldr(&t, &tq, &[comm(&themes[0])], &[]), 0.0);
    }

    #[test]
    fn method_with_extra_labels_can_exceed_one() {
        let (t, tq, themes) = setup();
        let pcs = vec![comm(&themes[0])];
        let f = vec![comm(&themes[2]), comm(&themes[1])];
        let score = ldr(&t, &tq, &f, &pcs);
        assert!(score > 1.0, "{score}");
    }

    #[test]
    fn root_only_themes_are_vacuously_covered() {
        let (t, tq, _) = setup();
        let root = comm(&PTree::root_only());
        // Self-comparison stays 1 even when no level has labels...
        let single = std::slice::from_ref(&root);
        assert_eq!(ldr(&t, &tq, single, single), 1.0);
        // ...but an empty method still scores 0 against them.
        assert_eq!(ldr(&t, &tq, &[], &[root]), 0.0);
    }

    #[test]
    fn root_only_query_tree_is_zero() {
        let (t, _, themes) = setup();
        assert_eq!(ldr(&t, &PTree::root_only(), &[comm(&themes[0])], &[comm(&themes[0])]), 0.0);
    }
}
