//! Community Pairwise Similarity (Eq. 2 of the paper).
//!
//! `CPS(G) = 1 − Σ_l (1/|G_l|²) Σ_{i,j} TED(T_i, T_j) / |T_i ∪ T_j|`
//! averaged over the community collection: for every community, average
//! the normalized tree edit distance over all ordered member pairs,
//! then average across communities and flip into a similarity. Values
//! lie in `[0, 1]`; higher = members' profiles are more alike.

use pcs_core::ProfiledCommunity;
use pcs_ptree::{tree_edit_distance, OrderedTree, PTree, Taxonomy};

/// Normalized TED similarity between two P-trees:
/// `1 − TED(a, b)/|a ∪ b|` (1 for identical trees).
pub fn pairwise_similarity(tax: &Taxonomy, a: &PTree, b: &PTree) -> f64 {
    let ted =
        tree_edit_distance(&OrderedTree::from_ptree(tax, a), &OrderedTree::from_ptree(tax, b));
    let denom = a.union(b).len().max(1);
    1.0 - ted as f64 / denom as f64
}

/// Largest community size for which all pairs are evaluated exactly;
/// bigger communities are deterministically subsampled to this many
/// members (evenly spaced), keeping the metric O(cap²·TED) per
/// community.
pub const CPS_SAMPLE_CAP: usize = 120;

/// CPS over a collection of communities (Eq. 2). Returns 0 for an
/// empty collection.
pub fn cps(tax: &Taxonomy, profiles: &[PTree], communities: &[ProfiledCommunity]) -> f64 {
    if communities.is_empty() {
        return 0.0;
    }
    let mut total_distance_ratio = 0.0;
    for comm in communities {
        let members: Vec<u32> = if comm.vertices.len() <= CPS_SAMPLE_CAP {
            comm.vertices.clone()
        } else {
            // Deterministic even subsample.
            let step = comm.vertices.len() as f64 / CPS_SAMPLE_CAP as f64;
            (0..CPS_SAMPLE_CAP).map(|i| comm.vertices[(i as f64 * step) as usize]).collect()
        };
        let n = members.len();
        if n == 0 {
            continue;
        }
        // Cache ordered trees once per member.
        let trees: Vec<OrderedTree> =
            members.iter().map(|&v| OrderedTree::from_ptree(tax, &profiles[v as usize])).collect();
        let mut acc = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let ted = tree_edit_distance(&trees[i], &trees[j]);
                let denom = profiles[members[i] as usize]
                    .union(&profiles[members[j] as usize])
                    .len()
                    .max(1);
                acc += 2.0 * ted as f64 / denom as f64; // ordered pairs (i,j)+(j,i)
            }
        }
        total_distance_ratio += acc / (n * n) as f64;
    }
    1.0 - total_distance_ratio / communities.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tax3() -> (Taxonomy, Vec<PTree>) {
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let c = t.add_child(a, "c").unwrap();
        let trees = vec![
            PTree::from_labels(&t, [c]).unwrap(),
            PTree::from_labels(&t, [c]).unwrap(),
            PTree::from_labels(&t, [b]).unwrap(),
        ];
        (t, trees)
    }

    #[test]
    fn identical_profiles_give_cps_one() {
        let (t, trees) = tax3();
        let comm = ProfiledCommunity { subtree: trees[0].clone(), vertices: vec![0, 1] };
        let score = cps(&t, &trees, &[comm]);
        assert!((score - 1.0).abs() < 1e-12, "{score}");
    }

    #[test]
    fn diverse_profiles_lower_cps() {
        let (t, trees) = tax3();
        let tight = ProfiledCommunity { subtree: trees[0].clone(), vertices: vec![0, 1] };
        let loose = ProfiledCommunity { subtree: PTree::root_only(), vertices: vec![0, 2] };
        let s_tight = cps(&t, &trees, &[tight]);
        let s_loose = cps(&t, &trees, &[loose]);
        assert!(s_tight > s_loose, "{s_tight} vs {s_loose}");
        assert!((0.0..=1.0).contains(&s_loose));
    }

    #[test]
    fn empty_collection_is_zero() {
        let (t, trees) = tax3();
        assert_eq!(cps(&t, &trees, &[]), 0.0);
    }

    #[test]
    fn pairwise_similarity_bounds() {
        let (t, trees) = tax3();
        assert!((pairwise_similarity(&t, &trees[0], &trees[1]) - 1.0).abs() < 1e-12);
        let s = pairwise_similarity(&t, &trees[0], &trees[2]);
        assert!((0.0..1.0).contains(&s));
        // Symmetry.
        assert_eq!(s, pairwise_similarity(&t, &trees[2], &trees[0]));
    }

    #[test]
    fn subsampling_kicks_in_for_large_communities() {
        let (t, _) = tax3();
        let profiles: Vec<PTree> = (0..500).map(|_| PTree::root_only()).collect();
        let comm = ProfiledCommunity { subtree: PTree::root_only(), vertices: (0..500).collect() };
        // All identical => 1.0 regardless of sampling.
        let score = cps(&t, &profiles, &[comm]);
        assert!((score - 1.0).abs() < 1e-12);
    }
}
