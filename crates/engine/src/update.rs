//! The update subsystem: mutation requests and their outcomes.
//!
//! Profiled graphs in the wild — collaboration networks, social graphs
//! — change continuously, so the engine accepts edge and profile
//! mutations at serving time. Updates are expressed as an
//! [`UpdateBatch`] and applied atomically by
//! [`PcsEngine::apply`](crate::PcsEngine::apply): the whole batch is
//! validated first, then applied to the writer's master state, and
//! finally published as one new epoch snapshot. Readers never observe a
//! half-applied batch.

use pcs_graph::VertexId;
use pcs_index::CpPatchStats;
use pcs_ptree::PTree;
use std::fmt;
use std::time::Duration;

/// One mutation of the profiled graph. The vertex set is fixed at
/// build time; updates change edges and profiles.
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// Insert the undirected edge `{u, v}`. Inserting an existing edge
    /// is a counted no-op, not an error.
    AddEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Remove the undirected edge `{u, v}`. Removing an absent edge —
    /// including a `{v, v}` self-loop, which can never exist — is a
    /// counted no-op, not an error.
    RemoveEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Replace the P-tree of `vertex`. Writing the identical profile is
    /// a counted no-op.
    SetProfile {
        /// The vertex to re-profile.
        vertex: VertexId,
        /// The new P-tree (validated against the engine's taxonomy).
        profile: PTree,
    },
}

/// An ordered list of mutations applied as one atomic unit, built
/// fluently:
///
/// ```
/// use pcs_engine::UpdateBatch;
/// let batch = UpdateBatch::new().add_edge(0, 1).remove_edge(2, 3);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateBatch {
    ops: Vec<Update>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an edge insertion.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.ops.push(Update::AddEdge { u, v });
        self
    }

    /// Appends an edge removal.
    pub fn remove_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.ops.push(Update::RemoveEdge { u, v });
        self
    }

    /// Appends a profile replacement.
    pub fn set_profile(mut self, vertex: VertexId, profile: PTree) -> Self {
        self.ops.push(Update::SetProfile { vertex, profile });
        self
    }

    /// Appends one operation in place.
    pub fn push(&mut self, op: Update) {
        self.ops.push(op);
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[Update] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<Update> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = Update>>(iter: I) -> Self {
        UpdateBatch { ops: iter.into_iter().collect() }
    }
}

impl From<Vec<Update>> for UpdateBatch {
    fn from(ops: Vec<Update>) -> Self {
        UpdateBatch { ops }
    }
}

/// How the CP-tree index was maintained across one applied batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexMaintenance {
    /// The previous epoch's index was cloned and patched in place —
    /// only the invalidated labels were revisited.
    Patched(CpPatchStats),
    /// The invalidation set exceeded the incremental cap; the index was
    /// rebuilt from scratch (eager engines only).
    Rebuilt,
    /// The invalidation set exceeded the incremental cap; the stale
    /// index was dropped and the next query that needs one rebuilds it
    /// lazily.
    Deferred,
    /// No index existed before the batch; a lazy engine leaves it that
    /// way.
    NotBuilt,
    /// The engine runs with
    /// [`IndexMode::Disabled`](crate::IndexMode::Disabled).
    Disabled,
    /// The batch was entirely no-ops: no new snapshot was published and
    /// the index is untouched.
    Unchanged,
}

/// The outcome of one applied [`UpdateBatch`].
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Epoch of the snapshot holding the batch's effects. Equal to the
    /// pre-batch epoch when the batch was all no-ops (nothing was
    /// published).
    pub epoch: u64,
    /// Edges actually inserted.
    pub edges_added: usize,
    /// Edges actually removed.
    pub edges_removed: usize,
    /// Vertices whose profile actually changed.
    pub profiles_changed: usize,
    /// Operations with no effect (duplicate inserts, absent removals,
    /// identical profiles).
    pub noops: usize,
    /// Vertices whose global core number changed, summed over the
    /// batch's edge operations.
    pub cores_changed: usize,
    /// What happened to the CP-tree index.
    pub index: IndexMaintenance,
    /// Highest epoch covered by a completed WAL fsync at the time the
    /// report was assembled: `Some(e)` on engines opened with
    /// [`EngineBuilder::durable`](crate::EngineBuilder::durable) (where
    /// `e >= epoch` means this batch itself is on stable storage),
    /// `None` on purely in-memory engines. Lets clients distinguish
    /// applied-in-memory from fsynced-to-log.
    pub durable_epoch: Option<u64>,
    /// Wall-clock time of validation + application + publication.
    pub elapsed: Duration,
}

impl UpdateReport {
    /// True when at least one operation had an effect.
    pub fn changed(&self) -> bool {
        self.edges_added + self.edges_removed + self.profiles_changed > 0
    }
}

/// Why an [`UpdateBatch`] was rejected. Validation runs before any
/// mutation, so a rejected batch leaves the engine untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum UpdateError {
    /// An operation referenced a vertex outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The engine's vertex count.
        n: usize,
    },
    /// An edge *insertion* named the same vertex twice (removals of a
    /// self-loop are counted no-ops instead: the edge cannot exist).
    SelfLoop {
        /// The vertex named by both endpoints.
        vertex: VertexId,
    },
    /// A replacement profile references labels outside the engine's
    /// taxonomy or is not ancestor-closed.
    InvalidProfile {
        /// The vertex whose new profile failed validation.
        vertex: VertexId,
    },
    /// A replayed batch (WAL recovery, follower tailing) was stamped
    /// with an epoch that is not the engine's next epoch — the log and
    /// the engine have diverged, so applying it would corrupt state.
    EpochMismatch {
        /// The epoch the batch was stamped with.
        expected: u64,
        /// The epoch the engine would actually publish next.
        next: u64,
    },
    /// A replayed batch had no effect. A primary never logs an
    /// all-no-op batch (nothing is published for one), so a replica or
    /// recovery replaying the same prefix must see the same effects;
    /// a no-op replay means the two states have diverged.
    ReplayNoEffect {
        /// The epoch the ineffective batch was stamped with.
        epoch: u64,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::VertexOutOfRange { vertex, n } => {
                write!(f, "update references vertex {vertex}, but the engine has {n} vertices")
            }
            UpdateError::SelfLoop { vertex } => {
                write!(f, "edge update would create a self-loop at vertex {vertex}")
            }
            UpdateError::InvalidProfile { vertex } => {
                write!(f, "replacement profile for vertex {vertex} is not a valid subtree of the taxonomy")
            }
            UpdateError::EpochMismatch { expected, next } => {
                write!(
                    f,
                    "replayed batch is stamped epoch {expected}, but the engine's next \
                     epoch is {next}: log and engine state have diverged"
                )
            }
            UpdateError::ReplayNoEffect { epoch } => {
                write!(
                    f,
                    "replayed batch for epoch {epoch} had no effect; a logged batch is \
                     never a no-op, so replica and primary state have diverged"
                )
            }
        }
    }
}

impl std::error::Error for UpdateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_and_iteration() {
        let p = PTree::root_only();
        let batch = UpdateBatch::new().add_edge(0, 1).remove_edge(1, 2).set_profile(3, p.clone());
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.ops()[0], Update::AddEdge { u: 0, v: 1 });
        assert_eq!(batch.ops()[2], Update::SetProfile { vertex: 3, profile: p });
        let collected: UpdateBatch = batch.ops().to_vec().into_iter().collect();
        assert_eq!(collected, batch);
    }

    #[test]
    fn error_display() {
        assert!(UpdateError::VertexOutOfRange { vertex: 7, n: 3 }.to_string().contains('7'));
        assert!(UpdateError::SelfLoop { vertex: 2 }.to_string().contains("self-loop"));
        assert!(UpdateError::InvalidProfile { vertex: 1 }.to_string().contains("taxonomy"));
    }
}
