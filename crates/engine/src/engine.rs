//! The owned engine, its builder, and the update path.

use pcs_core::{Algorithm, QueryContext, QueryScratch};
use pcs_graph::core::CoreDecomposition;
use pcs_graph::FxHashSet;
use pcs_graph::{DynamicGraph, FxHashMap, Graph, GraphHandle, IncrementalCores, VertexId};
use pcs_index::{GraphDelta, IndexError, IndexRef, ShardedCpIndex};
use pcs_ptree::{PTree, ProfilesHandle, Taxonomy};
use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::cache::{CacheKey, CacheMode, CacheStats, CacheStatsSnapshot, QueryCache};
use crate::error::{BuildError, Error, Result};
use crate::request::{QueryRequest, QueryResponse};
use crate::snapshot::{EngineSnapshot, SnapshotInner};
use crate::update::{IndexMaintenance, Update, UpdateBatch, UpdateError, UpdateReport};

/// When the engine constructs its CP-tree index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexMode {
    /// Lazy **per shard** (default): the first query that needs the
    /// index creates only the cheap facade (per-label member lists +
    /// `headMap`), and each label's CL-tree shard materializes on its
    /// first probe — concurrent readers materialize distinct shards
    /// independently behind per-label `OnceLock` slots. Time to first
    /// query tracks the queried labels' shards, not the taxonomy.
    #[default]
    Lazy,
    /// Build every shard inside [`EngineBuilder::build`] and keep the
    /// index fresh across updates (incremental patch when the
    /// invalidation set is small, synchronous rebuild otherwise),
    /// trading update latency for predictable query latency.
    Eager,
    /// Never build; index-dependent algorithms fail with
    /// [`Error::IndexDisabled`] and [`Algorithm::Auto`] resolves to
    /// `Basic`. Useful for memory-constrained replicas.
    Disabled,
}

/// Fluent constructor for [`PcsEngine`]; validates everything once so
/// queries never re-validate.
///
/// ```
/// use pcs_engine::PcsEngine;
/// use pcs_graph::Graph;
/// use pcs_ptree::{PTree, Taxonomy};
///
/// let mut tax = Taxonomy::new("r");
/// let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
/// let profiles: Vec<PTree> =
///     (0..3).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect();
/// let engine = PcsEngine::builder()
///     .graph(g)
///     .taxonomy(tax)
///     .profiles(profiles)
///     .build()
///     .unwrap();
/// ```
#[derive(Debug, Default)]
pub struct EngineBuilder {
    pub(crate) graph: Option<Graph>,
    pub(crate) tax: Option<Taxonomy>,
    pub(crate) profiles: Vec<PTree>,
    pub(crate) index_mode: IndexMode,
    pub(crate) index_build_threads: usize,
    pub(crate) batch_threads: Option<NonZeroUsize>,
    pub(crate) patch_cap_fraction: Option<f64>,
    pub(crate) scratch_pool_cap: Option<usize>,
    pub(crate) cache_mode: CacheMode,
    pub(crate) cache_capacity: Option<usize>,
    pub(crate) durable_dir: Option<std::path::PathBuf>,
    pub(crate) wal_opts: pcs_store::WalOptions,
}

impl EngineBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes ownership of the host graph.
    pub fn graph(mut self, graph: Graph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Takes ownership of the GP-tree.
    pub fn taxonomy(mut self, tax: Taxonomy) -> Self {
        self.tax = Some(tax);
        self
    }

    /// Takes ownership of the per-vertex P-trees
    /// (`profiles[v] = T(v)`).
    pub fn profiles(mut self, profiles: Vec<PTree>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Chooses the index construction policy (default
    /// [`IndexMode::Lazy`]).
    pub fn index_mode(mut self, mode: IndexMode) -> Self {
        self.index_mode = mode;
        self
    }

    /// Number of worker threads for CP-tree construction
    /// (default 1, matching `CpTree::build`).
    pub fn index_build_threads(mut self, threads: usize) -> Self {
        self.index_build_threads = threads.max(1);
        self
    }

    /// Worker threads [`PcsEngine::query_batch`] fans out over
    /// (default: the machine's available parallelism).
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = NonZeroUsize::new(threads.max(1));
        self
    }

    /// Fraction of populated CP-tree labels an update batch may
    /// invalidate before incremental patching falls back to a full
    /// index rebuild (eager engines) or a deferred lazy rebuild
    /// (default 0.5, clamped to `0.0..=1.0`). Below the cap each
    /// invalidated label is revisited individually; above it, patching
    /// would approach full-build cost anyway, so the engine rebuilds.
    /// Positive fractions carry a floor of 4 labels so tiny indexes
    /// always patch; `0.0` disables incremental patching entirely
    /// (every effective batch takes the fallback path — useful for
    /// benchmarking the rebuild baseline).
    pub fn incremental_patch_cap(mut self, fraction: f64) -> Self {
        self.patch_cap_fraction = Some(fraction.clamp(0.0, 1.0));
        self
    }

    /// Maximum number of [`QueryScratch`] buffers the engine retains
    /// between queries (default: `2 × batch_threads`, clamped to
    /// `4..=64`). Each scratch holds O(n) working memory, so the pool
    /// must track the real concurrency level, not the worst spike ever
    /// seen: a burst of clients beyond the cap allocates transient
    /// scratches that are dropped on return instead of retained
    /// forever. Clamped to at least 1.
    pub fn scratch_pool_cap(mut self, cap: usize) -> Self {
        self.scratch_pool_cap = Some(cap.max(1));
        self
    }

    /// Chooses the result-cache invalidation policy (default
    /// [`CacheMode::Off`]). With a cache enabled, every published
    /// snapshot carries an epoch-keyed map of recently computed
    /// answers; see [`PcsEngine::query_cached`] and the
    /// [`cache`](crate::cache) module docs.
    pub fn result_cache(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Maximum resident entries in the result cache (default 4096,
    /// clamped to at least 2). Only meaningful with
    /// [`result_cache`](EngineBuilder::result_cache) enabled.
    pub fn result_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity.max(2));
        self
    }

    /// Validates the inputs and produces the engine. With
    /// [`IndexMode::Eager`] this also builds the CP-tree index and the
    /// core decomposition. With [`durable`](EngineBuilder::durable)
    /// configured, the target directory must be empty: the engine
    /// writes its epoch-0 snapshot and starts an empty WAL there (use
    /// [`open`](EngineBuilder::open) to recover an existing one).
    pub fn build(mut self) -> Result<PcsEngine> {
        let durable_dir = self.durable_dir.take();
        let wal_opts = std::mem::take(&mut self.wal_opts);
        let graph = self.graph.take().ok_or(BuildError::MissingGraph)?;
        let tax = self.tax.take().ok_or(BuildError::MissingTaxonomy)?;
        let profiles = std::mem::take(&mut self.profiles);
        // Defense in depth: graphs built through `Graph::from_edges` are
        // canonical by construction, but foreign CSR layouts (mmap'd
        // files, wire formats) may not be — reject self-loops, duplicate
        // edges, and asymmetry instead of silently indexing them.
        graph.validate().map_err(|e| BuildError::MalformedGraph { detail: e.to_string() })?;
        if graph.num_vertices() != profiles.len() {
            return Err(BuildError::ProfileCountMismatch {
                vertices: graph.num_vertices(),
                profiles: profiles.len(),
            }
            .into());
        }
        for (v, p) in profiles.iter().enumerate() {
            if !profile_is_valid(&tax, p) {
                return Err(BuildError::InvalidProfile { vertex: v as u32 }.into());
            }
        }
        let snapshot = Arc::new(SnapshotInner {
            graph: GraphHandle::ready(Arc::new(graph)),
            profiles: ProfilesHandle::dense(Arc::new(profiles)),
            cores: Arc::new(OnceLock::new()),
            index: OnceLock::new(),
            cache: None,
            fault: None,
            epoch: 0,
        });
        let mut engine = self.assemble(tax, snapshot)?;
        if let Some(dir) = durable_dir {
            crate::durable::init_fresh(&mut engine, dir, wal_opts)?;
        }
        Ok(engine)
    }

    /// The shared assembly tail of [`build`](EngineBuilder::build) and
    /// [`load`](EngineBuilder::load): resolves configuration defaults,
    /// wraps the initial snapshot, and warms eagerly-indexed engines —
    /// kept in one place so a loaded engine can never drift from a
    /// built one.
    pub(crate) fn assemble(self, tax: Taxonomy, snapshot: Arc<SnapshotInner>) -> Result<PcsEngine> {
        let batch_threads = self
            .batch_threads
            .or_else(|| std::thread::available_parallelism().ok())
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let cache_stats = Arc::new(CacheStats::default());
        let cache_capacity = self.cache_capacity.unwrap_or(4096);
        // Attach the epoch-0 cache here, on the shared tail of `build`
        // and `load`, so built and loaded engines cache identically.
        let snapshot = if self.cache_mode == CacheMode::Off {
            snapshot
        } else {
            let cache = QueryCache::new(cache_capacity, Arc::clone(&cache_stats));
            Arc::new(snapshot.as_ref().clone_with_cache(Some(cache)))
        };
        let engine = PcsEngine {
            tax,
            index_mode: self.index_mode,
            index_build_threads: self.index_build_threads.max(1),
            batch_threads,
            patch_cap_fraction: self.patch_cap_fraction.unwrap_or(0.5),
            scratch_pool_cap: self
                .scratch_pool_cap
                .unwrap_or_else(|| (batch_threads * 2).clamp(4, 64)),
            cache_mode: self.cache_mode,
            cache_capacity,
            cache_stats,
            state: RwLock::new(snapshot),
            writer: Mutex::new(None),
            coalesce: Mutex::new(CoalesceQueue::default()),
            coalesce_stats: CoalesceStats::default(),
            durable: None,
            snapshot_source: None,
            scratch_pool: Mutex::new(Vec::new()),
            #[cfg(feature = "debug-invariants")]
            verify_epoch_hwm: std::sync::atomic::AtomicU64::new(0),
        };
        if self.index_mode == IndexMode::Eager {
            engine.warm()?;
        }
        Ok(engine)
    }
}

fn profile_is_valid(tax: &Taxonomy, p: &PTree) -> bool {
    p.nodes().iter().all(|&l| (l as usize) < tax.len()) && tax.is_ancestor_closed(p.nodes())
}

/// The writer's mutable master copy of the data. Materialized on the
/// first `apply` so read-only engines pay nothing.
///
/// `base` is the snapshot the master state currently equals — the last
/// snapshot *built* by an applier, which on a durable engine may run
/// ahead of the published one: appliers release the writer lock before
/// their fsync completes, so the next applier must stack on the
/// pending snapshot, not the published one. On the non-durable path
/// the two never diverge. If a durable applier dies after mutating the
/// master (failed append, fsync, or publish), the whole `WriterState`
/// is discarded (`writer = None`) so the next `apply` rebuilds it from
/// the snapshot readers actually see.
pub(crate) struct WriterState {
    base: Arc<SnapshotInner>,
    graph: DynamicGraph,
    cores: IncrementalCores,
    profiles: Vec<PTree>,
}

/// How long an [`apply_coalesced`](PcsEngine::apply_coalesced)
/// follower waits for its group leader before declaring the leader
/// lost. Generous: a leader holds the writer path for at most one
/// batch apply (plus fsync on durable engines).
const COALESCE_DEADLINE: Duration = Duration::from_secs(30);

/// One waiting participant in a coalesced apply group: the leader
/// posts the shared group result here.
#[derive(Default)]
struct ApplySlot {
    result: Mutex<Option<Result<UpdateReport>>>,
    done: Condvar,
}

impl ApplySlot {
    fn post(&self, result: Result<UpdateReport>) {
        match self.result.lock() {
            Ok(mut guard) => {
                *guard = Some(result);
                self.done.notify_all();
            }
            Err(poisoned) => {
                *poisoned.into_inner() = Some(result);
                self.result.clear_poison();
                self.done.notify_all();
            }
        }
    }

    fn wait(&self, deadline: Duration) -> Result<UpdateReport> {
        let lost = || Error::Internal {
            component: "apply-coalesce",
            detail: format!("group leader did not publish a result within {deadline:?}"),
        };
        let mut guard = match self.result.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.result.clear_poison();
                poisoned.into_inner()
            }
        };
        let wait_started = Instant::now();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            let remaining = match deadline.checked_sub(wait_started.elapsed()) {
                Some(rem) if !rem.is_zero() => rem,
                _ => return Err(lost()),
            };
            guard = match self.done.wait_timeout(guard, remaining) {
                Ok((guard, _)) => guard,
                Err(poisoned) => {
                    self.result.clear_poison();
                    poisoned.into_inner().0
                }
            };
        }
    }
}

/// The shared group-commit queue of
/// [`apply_coalesced`](PcsEngine::apply_coalesced): the first writer
/// to find `leader_active == false` becomes leader and drains
/// `pending` in merged groups until it runs dry.
#[derive(Default)]
struct CoalesceQueue {
    pending: Vec<(UpdateBatch, Arc<ApplySlot>)>,
    leader_active: bool,
}

/// Monotonic counters of the write-coalescing path (see
/// [`PcsEngine::coalesce_stats`]).
#[derive(Debug, Default)]
struct CoalesceStats {
    submitted: std::sync::atomic::AtomicU64,
    groups: std::sync::atomic::AtomicU64,
    coalesced: std::sync::atomic::AtomicU64,
}

/// A point-in-time reading of the backing snapshot file's positioned-
/// read counter (see [`PcsEngine::snapshot_io`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotIo {
    /// Bytes served by positioned reads since the file was opened.
    pub bytes_read: u64,
    /// Total file length.
    pub file_len: u64,
}

/// A point-in-time copy of the engine's write-coalescing counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStatsSnapshot {
    /// Batches submitted through
    /// [`apply_coalesced`](PcsEngine::apply_coalesced).
    pub submitted: u64,
    /// Merged groups actually applied (each publishes one epoch).
    pub groups: u64,
    /// Batches that rode along in someone else's group instead of
    /// paying their own epoch publish (`submitted - groups`).
    pub coalesced: u64,
}

/// An owned, `Send + Sync` profiled-community-search engine: the
/// serving-ready facade over the paper's algorithms.
///
/// Owns the graph, taxonomy, and profiles (so it can live in server
/// state and cross threads), answers [`QueryRequest`]s — one at a time
/// with [`query`](Self::query) or fanned out over scoped threads with
/// [`query_batch`](Self::query_batch) — and absorbs live mutations
/// through [`apply`](Self::apply).
///
/// # Snapshot semantics
///
/// All data lives in immutable epoch snapshots behind one
/// atomically-swapped `Arc`. The read path takes no lock for the
/// duration of a query: it clones the current `Arc` once and computes
/// against that version even while a writer publishes the next one.
/// Writers are serialized among themselves and maintain the core
/// decomposition and CP-tree *incrementally* — only the vertices and
/// labels an update can affect are revisited (bounded subcore
/// traversals), falling back to targeted per-label rebuilds and
/// finally to a full index rebuild as the delta grows.
///
/// Internally each query still runs through the borrowed
/// [`QueryContext`] layer, assembled per call via
/// [`QueryContext::from_parts`] at zero recomputation cost.
pub struct PcsEngine {
    tax: Taxonomy,
    index_mode: IndexMode,
    index_build_threads: usize,
    batch_threads: usize,
    patch_cap_fraction: f64,
    /// Upper bound on `scratch_pool.len()`: scratches returned to a
    /// full pool are dropped, so a transient concurrency spike cannot
    /// permanently pin `spike × O(n)` working memory.
    scratch_pool_cap: usize,
    /// The current snapshot. Readers hold the read lock only long
    /// enough to clone the `Arc`; writers only to swap it.
    state: RwLock<Arc<SnapshotInner>>,
    /// Result-cache policy and sizing (see
    /// [`EngineBuilder::result_cache`]); the stats live here so the
    /// counters survive each epoch's cache replacement.
    cache_mode: CacheMode,
    cache_capacity: usize,
    cache_stats: Arc<CacheStats>,
    /// Serializes writers and owns the mutable master state.
    pub(crate) writer: Mutex<Option<WriterState>>,
    /// The group-commit queue of [`apply_coalesced`](Self::apply_coalesced).
    coalesce: Mutex<CoalesceQueue>,
    coalesce_stats: CoalesceStats,
    /// The WAL attachment (durable engines only): set once during
    /// `build`/`open`, before the engine is shared, and immutable
    /// afterwards.
    pub(crate) durable: Option<crate::durable::DurableState>,
    /// The backing snapshot file of a lazily loaded engine (see
    /// [`EngineBuilder::load`]): kept for IO observability
    /// ([`snapshot_io`](Self::snapshot_io)) — the lazy sources inside
    /// the snapshot hold their own `Arc`s to the same file.
    pub(crate) snapshot_source: Option<Arc<pcs_store::FileSnapshot>>,
    /// Reusable per-query working memory ([`QueryScratch`]): each query
    /// checks one out, runs allocation-free, and returns it. Pooled so
    /// concurrent `query_batch` workers each get their own.
    scratch_pool: Mutex<Vec<QueryScratch>>,
    /// Highest epoch [`verify_deep`](PcsEngine::verify_deep) has seen:
    /// published epochs must never regress, and the verifier is the
    /// witness.
    #[cfg(feature = "debug-invariants")]
    verify_epoch_hwm: std::sync::atomic::AtomicU64,
}

impl PcsEngine {
    /// Starts a builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The GP-tree (immutable across updates).
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.tax
    }

    /// The configured index policy.
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    pub(crate) fn snapshot_arc(&self) -> Arc<SnapshotInner> {
        self.state.read().expect("engine state lock poisoned").clone()
    }

    /// A consistent view of the engine at the current epoch. Cheap (one
    /// `Arc` clone); never blocks writers beyond the pointer swap.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot { inner: self.snapshot_arc() }
    }

    /// The current epoch: 0 as built, +1 per published update batch.
    pub fn epoch(&self) -> u64 {
        self.snapshot_arc().epoch
    }

    /// True when the current snapshot holds a built CP-tree index.
    /// Never triggers construction.
    pub fn index_built(&self) -> bool {
        self.snapshot_arc().index_if_built().is_some()
    }

    /// Forces construction of the index facade **and every shard**
    /// (policy permitting) plus the core decomposition on the current
    /// snapshot, so the next query pays no warm-up cost regardless of
    /// which labels it touches. Idempotent; cheap once everything is
    /// cached.
    pub fn warm(&self) -> Result<()> {
        let snap = self.snapshot_arc();
        snap.cores();
        if self.index_mode != IndexMode::Disabled {
            self.ensure_index(&snap)?.materialize_all(self.index_build_threads);
        }
        Ok(())
    }

    /// The sharded-index facade of `snap`, created on first need: one
    /// pass over the profiles (member lists + `headMap`), no CL-trees.
    /// Shards materialize later, on their first probe.
    fn ensure_index<'a>(&self, snap: &'a SnapshotInner) -> Result<&'a ShardedCpIndex> {
        // A lazily loaded snapshot arrives with the cell pre-seeded
        // (`from_lazy_parts`), so this fast path never forces the
        // graph or profiles resident just to reach the facade.
        if snap.index.get().is_none() {
            // Materialize outside the cell so a damaged backing file
            // surfaces as the typed store error instead of wedging an
            // `IndexError` into the cell. A concurrent racer may win
            // the `set`; both built the same facade, the loser's drops.
            let graph = Arc::clone(snap.materialized_graph()?);
            let profiles = snap.dense_profiles()?;
            let _ =
                snap.index.set(ShardedCpIndex::build(graph, &self.tax, profiles).map(|mut idx| {
                    idx.set_global_cores(Arc::clone(&snap.cores));
                    idx
                }));
        }
        let built = snap.index.get().ok_or_else(|| Error::Internal {
            component: "index",
            detail: "index cell empty after ensure".into(),
        })?;
        built.as_ref().map_err(|e| Error::Index(e.clone()))
    }

    /// Number of materialized index shards in the current snapshot —
    /// the per-label laziness observability metric. Never triggers
    /// construction.
    pub fn resident_shards(&self) -> usize {
        self.snapshot_arc().index_if_built().map_or(0, ShardedCpIndex::resident_shards)
    }

    /// Bytes read from the backing snapshot file so far and the file's
    /// total length, for engines lazily loaded from disk (`None` for
    /// engines built in memory or loaded through the eager path). The
    /// ratio is the laziness metric: a freshly loaded engine sits at a
    /// few percent, and the first query moves it by exactly the ranges
    /// it touched.
    pub fn snapshot_io(&self) -> Option<SnapshotIo> {
        self.snapshot_source
            .as_ref()
            .map(|src| SnapshotIo { bytes_read: src.bytes_read(), file_len: src.file_len() })
    }

    /// Locks the scratch pool, **recovering** from poisoning instead of
    /// propagating it: a reader that panicked while holding this lock
    /// (e.g. an algorithm bug on one pathological query) must not turn
    /// into a permanent denial of service for every later query. The
    /// pool only caches reusable buffers, so recovery is trivial —
    /// discard whatever the panicking thread left behind and continue
    /// with an empty pool; subsequent queries re-allocate on demand.
    fn lock_scratch_pool(&self) -> std::sync::MutexGuard<'_, Vec<QueryScratch>> {
        match self.scratch_pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.scratch_pool.clear_poison();
                guard
            }
        }
    }

    /// Number of [`QueryScratch`] buffers currently pooled — the
    /// serving-memory observability companion to
    /// [`resident_shards`](Self::resident_shards). Never exceeds
    /// [`pooled_scratch_cap`](Self::pooled_scratch_cap).
    pub fn pooled_scratches(&self) -> usize {
        self.lock_scratch_pool().len()
    }

    /// The retention cap on the scratch pool (see
    /// [`EngineBuilder::scratch_pool_cap`]).
    pub fn pooled_scratch_cap(&self) -> usize {
        self.scratch_pool_cap
    }

    /// Test-only: poisons the scratch pool mutex by panicking while the
    /// lock is held (the panic is caught here). Exercises the recovery
    /// path in [`lock_scratch_pool`](Self::lock_scratch_pool); real
    /// code has no reason to call this.
    #[doc(hidden)]
    pub fn poison_scratch_pool_for_test(&self) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.scratch_pool.lock();
            panic!("deliberate scratch-pool poisoning (test hook)");
        }));
        assert!(result.is_err(), "the poisoning closure must panic");
    }

    /// Resolves [`Algorithm::Auto`] against this engine's index
    /// policy: `AdvP` whenever an index exists or may be built lazily,
    /// `Basic` when the index is disabled.
    pub fn resolve_algorithm(&self, algorithm: Algorithm) -> Algorithm {
        algorithm.resolve(self.index_mode != IndexMode::Disabled)
    }

    /// Answers one request against the current snapshot.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let snap = self.snapshot_arc();
        self.query_on(&snap, request)
    }

    /// The configured result-cache policy.
    pub fn cache_mode(&self) -> CacheMode {
        self.cache_mode
    }

    /// Engine-lifetime result-cache counters (all zero with
    /// [`CacheMode::Off`]).
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache_stats.snapshot()
    }

    /// Write-coalescing counters of
    /// [`apply_coalesced`](Self::apply_coalesced).
    pub fn coalesce_stats(&self) -> CoalesceStatsSnapshot {
        use std::sync::atomic::Ordering;
        CoalesceStatsSnapshot {
            submitted: self.coalesce_stats.submitted.load(Ordering::Relaxed),
            groups: self.coalesce_stats.groups.load(Ordering::Relaxed),
            coalesced: self.coalesce_stats.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Answers one request through the result cache: a hit returns the
    /// `Arc`-shared response computed earlier **at the current epoch**
    /// (or carried over by [`CacheMode::Surgical`]), a miss computes,
    /// fills the cache, and returns the fresh answer. Equivalent to
    /// [`query`](Self::query) in every observable way except
    /// `elapsed`, which on a hit reports the original computation's
    /// wall time. With [`CacheMode::Off`] or a bypassing request this
    /// is exactly `query` plus one `Arc` allocation.
    pub fn query_cached(&self, request: &QueryRequest) -> Result<Arc<QueryResponse>> {
        let snap = self.snapshot_arc();
        if let Some(hit) = self.cache_lookup_on(&snap, request) {
            return Ok(hit);
        }
        let response = Arc::new(self.query_on(&snap, request)?);
        self.cache_fill_on(&snap, request, &response);
        Ok(response)
    }

    /// The cached answer for `request` at the current epoch, if
    /// resident. Counts a hit/miss; never computes. Always `None` with
    /// [`CacheMode::Off`] or a bypassing request (no counter traffic).
    pub fn cache_lookup(&self, request: &QueryRequest) -> Option<Arc<QueryResponse>> {
        let snap = self.snapshot_arc();
        self.cache_lookup_on(&snap, request)
    }

    /// Offers an externally computed `response` to the cache. Ignored
    /// unless the response's epoch still matches the current
    /// snapshot's (a response computed against a superseded epoch must
    /// never be served at the new one) and the request allows caching.
    pub fn cache_fill(&self, request: &QueryRequest, response: &Arc<QueryResponse>) {
        let snap = self.snapshot_arc();
        self.cache_fill_on(&snap, request, response);
    }

    fn cache_lookup_on(
        &self,
        snap: &SnapshotInner,
        request: &QueryRequest,
    ) -> Option<Arc<QueryResponse>> {
        if request.bypasses_cache() {
            return None;
        }
        let cache = snap.cache.as_ref()?;
        let algorithm = self.resolve_algorithm(request.requested_algorithm());
        cache.lookup(&CacheKey::for_request(request, algorithm))
    }

    fn cache_fill_on(
        &self,
        snap: &SnapshotInner,
        request: &QueryRequest,
        response: &Arc<QueryResponse>,
    ) {
        if request.bypasses_cache() || response.epoch != snap.epoch {
            return;
        }
        if let Some(cache) = snap.cache.as_ref() {
            let algorithm = self.resolve_algorithm(request.requested_algorithm());
            cache.insert(CacheKey::for_request(request, algorithm), Arc::clone(response));
        }
    }

    fn query_on(&self, snap: &SnapshotInner, request: &QueryRequest) -> Result<QueryResponse> {
        let algorithm = self.resolve_algorithm(request.requested_algorithm());
        let index = if algorithm.needs_index() {
            if self.index_mode == IndexMode::Disabled {
                return Err(Error::IndexDisabled { algorithm: algorithm.name() });
            }
            // Only the facade is ensured here; the query materializes
            // exactly the shards its subtree lattice probes.
            Some(IndexRef::from(self.ensure_index(snap)?))
        } else {
            // `basic` ignores the index, but an already-built one still
            // serves P-tree restoration (headMap — no shard needed);
            // never *trigger* a facade build for it.
            snap.index_if_built().map(IndexRef::from)
        };
        // Materialize the graph first (lazy loads decode the GRAPH
        // section here, on the first query), so `cores()` below never
        // takes its poisoned-fallback path.
        let graph = snap.materialized_graph()?;
        let cores = snap.cores();
        // Profiles stay behind the handle: a lazily loaded snapshot
        // serves `profiles[v]` chunk-by-chunk, so the query faults in
        // only the ranges it actually reads.
        let ctx = QueryContext::from_parts(graph, &self.tax, &snap.profiles, index, cores)?;
        // Check out pooled scratch so the query's working buffers (peel
        // state, profile masks, candidate seeds) are reused instead of
        // reallocated per request.
        let mut scratch = {
            let mut pool = self.lock_scratch_pool();
            pool.pop().unwrap_or_else(|| QueryScratch::new(snap.graph.num_vertices()))
        };
        let start = Instant::now();
        let result = ctx.query_with_scratch(
            request.vertex_id(),
            request.degree_bound(),
            algorithm,
            &mut scratch,
        );
        let elapsed = start.elapsed();
        {
            // Return the scratch unless the pool is at its retention
            // cap: a spike of concurrent callers beyond the cap pays a
            // transient allocation instead of growing the pool forever.
            let mut pool = self.lock_scratch_pool();
            if pool.len() < self.scratch_pool_cap {
                pool.push(scratch);
            }
        }
        // Fail-stop before the answer escapes: if any lazy read hit
        // damaged bytes mid-query, the per-vertex profile view returned
        // absent trees instead of wrong ones and recorded the typed
        // fault — surface it now rather than a silently partial answer.
        if let Some(e) = snap.store_fault() {
            return Err(Error::Store(e));
        }
        let mut outcome = result?;
        let total_communities = outcome.communities.len();
        if let Some(cap) = request.community_cap() {
            outcome.communities.truncate(cap);
        }
        let stats = request.wants_stats().then_some(outcome.stats);
        Ok(QueryResponse {
            outcome,
            algorithm,
            index_used: algorithm.needs_index(),
            elapsed,
            stats,
            total_communities,
            epoch: snap.epoch,
        })
    }

    /// Runs `f` against the borrowed paper-layer [`QueryContext`]
    /// (sharing the current snapshot's cached core decomposition and
    /// whatever index is already built). The bridge for algorithms that
    /// are not lifted into the request API yet — `truss_query`, the
    /// §5.3 metric variants — without giving up engine ownership.
    pub fn with_context<R>(&self, f: impl FnOnce(&QueryContext<'_>) -> R) -> Result<R> {
        let snap = self.snapshot_arc();
        let graph = snap.materialized_graph()?;
        let ctx = QueryContext::from_parts(
            graph,
            &self.tax,
            &snap.profiles,
            snap.index_if_built().map(IndexRef::from),
            snap.cores(),
        )?;
        let out = f(&ctx);
        // Same fail-stop as `query_on`: a lazy read that failed during
        // `f` poisons the result.
        if let Some(e) = snap.store_fault() {
            return Err(Error::Store(e));
        }
        Ok(out)
    }

    /// Answers a batch of requests, fanning out over scoped threads
    /// (up to the builder's `batch_threads`) while preserving request
    /// order in the returned vector: `out[i]` answers `requests[i]`.
    ///
    /// The whole batch runs against **one** snapshot: every response
    /// carries the same epoch even when updates land mid-batch.
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        let snap = self.snapshot_arc();
        // Warm shared state up front so workers never race a build
        // (OnceLock would serialize them anyway; this keeps the
        // per-request timings honest).
        if requests.iter().any(|r| self.resolve_algorithm(r.requested_algorithm()).needs_index())
            && self.index_mode != IndexMode::Disabled
        {
            let _ = self.ensure_index(&snap);
        }
        snap.cores();

        let threads = self.batch_threads.min(requests.len()).max(1);
        if threads == 1 {
            return requests.iter().map(|r| self.query_on(&snap, r)).collect();
        }
        // Workers pull the next unclaimed request from a shared
        // counter, so one expensive cluster of queries cannot strand
        // the work on a single thread the way static chunking would.
        let mut out: Vec<Option<Result<QueryResponse>>> = Vec::new();
        out.resize_with(requests.len(), || None);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let snap = &snap;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut answered = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(req) = requests.get(i) else { break };
                            answered.push((i, self.query_on(snap, req)));
                        }
                        answered
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("batch worker panicked") {
                    out[i] = Some(result);
                }
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every request index was claimed by a worker"))
            .collect()
    }

    // ------------------------------------------------------------------
    // Update path
    // ------------------------------------------------------------------

    /// Inserts one edge; shorthand for a singleton [`apply`](Self::apply).
    pub fn add_edge(&self, u: VertexId, v: VertexId) -> Result<UpdateReport> {
        self.apply(&UpdateBatch::new().add_edge(u, v))
    }

    /// Removes one edge; shorthand for a singleton [`apply`](Self::apply).
    pub fn remove_edge(&self, u: VertexId, v: VertexId) -> Result<UpdateReport> {
        self.apply(&UpdateBatch::new().remove_edge(u, v))
    }

    /// Replaces one vertex profile; shorthand for a singleton
    /// [`apply`](Self::apply).
    pub fn update_profile(&self, vertex: VertexId, profile: PTree) -> Result<UpdateReport> {
        self.apply(&UpdateBatch::new().set_profile(vertex, profile))
    }

    /// Applies a batch of mutations atomically and publishes a new
    /// epoch snapshot.
    ///
    /// The batch is validated up front (any rejection leaves the engine
    /// untouched), applied to the writer's master state with
    /// incremental core maintenance (bounded subcore traversals per
    /// edge, never a full re-decomposition), and published as one new
    /// snapshot. Concurrent queries keep reading the previous epoch
    /// until the swap; concurrent writers queue on an internal mutex.
    ///
    /// Index maintenance follows the builder's
    /// [`incremental_patch_cap`](EngineBuilder::incremental_patch_cap):
    /// a built index is cloned and patched label-by-label when the
    /// invalidation set is small, rebuilt (eager) or dropped for lazy
    /// reconstruction otherwise. See [`IndexMaintenance`].
    ///
    /// No-op operations (duplicate edge inserts, absent removals,
    /// identical profiles) are counted in the report, not errors. A
    /// batch of only no-ops publishes nothing and keeps the epoch.
    ///
    /// # Durability
    ///
    /// On an engine opened with
    /// [`EngineBuilder::durable`](crate::EngineBuilder::durable) the
    /// batch is appended to the WAL and **fsynced before its epoch is
    /// published**: once `apply` returns `Ok`, the batch survives a
    /// crash, and a reader can never observe an epoch the engine could
    /// still lose. Concurrent appliers coalesce into shared group
    /// commits; snapshots still publish strictly in epoch order. Any
    /// failure on that pipeline (I/O error, injected kill point)
    /// fail-stops the log — this and every later `apply` return typed
    /// errors, already-published epochs keep serving reads, and
    /// reopening the directory recovers the fsynced prefix.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<UpdateReport> {
        self.apply_inner(batch, None)
    }

    /// Replays a batch that must land on **exactly** `epoch`: the
    /// WAL-recovery and replication entry point (see
    /// [`WalFollower`](crate::WalFollower) and
    /// [`apply_wal_frames`](Self::apply_wal_frames)). Unlike
    /// [`apply`](Self::apply), a stamped batch is never allowed to
    /// drift: landing on any other epoch is
    /// [`UpdateError::EpochMismatch`] and a batch with no effect is
    /// [`UpdateError::ReplayNoEffect`] — both mean the log and this
    /// engine have diverged, and both leave the engine unchanged.
    pub fn apply_at_epoch(&self, batch: &UpdateBatch, epoch: u64) -> Result<UpdateReport> {
        self.apply_inner(batch, Some(epoch))
    }

    /// Validates every op of `batch` against a fixed vertex count and
    /// this engine's (immutable) taxonomy, touching nothing. The
    /// checks are state-independent beyond `n` — the vertex set never
    /// grows or shrinks — which is what lets
    /// [`apply_coalesced`](Self::apply_coalesced) pre-validate each
    /// batch *individually* before merging: one malformed batch is
    /// rejected to its own caller and can never poison the group it
    /// would have joined.
    fn validate_ops(&self, batch: &UpdateBatch, n: usize) -> Result<()> {
        for op in batch.ops() {
            match op {
                Update::AddEdge { u, v } | Update::RemoveEdge { u, v } => {
                    for &w in [u, v] {
                        if w as usize >= n {
                            return Err(UpdateError::VertexOutOfRange { vertex: w, n }.into());
                        }
                    }
                    // Only an *insertion* can create a self-loop; a
                    // self-loop removal names an edge that cannot exist
                    // and falls through to the counted-no-op path, like
                    // any other absent removal.
                    if u == v && matches!(op, Update::AddEdge { .. }) {
                        return Err(UpdateError::SelfLoop { vertex: *u }.into());
                    }
                }
                Update::SetProfile { vertex, profile } => {
                    if *vertex as usize >= n {
                        return Err(UpdateError::VertexOutOfRange { vertex: *vertex, n }.into());
                    }
                    if !profile_is_valid(&self.tax, profile) {
                        return Err(UpdateError::InvalidProfile { vertex: *vertex }.into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies `batch` through the **write-coalescing** path: when
    /// several threads submit concurrently, one becomes the group
    /// leader, merges every queued batch into a single
    /// [`apply`](Self::apply) (one epoch publish, one WAL record on
    /// durable engines), and hands the shared [`UpdateReport`] to all
    /// participants. A sustained update stream thereby amortizes the
    /// per-epoch costs — CSR export, index maintenance, fsync — over
    /// the whole group instead of paying them per batch.
    ///
    /// Semantics relative to `apply`:
    /// * Each batch is validated **individually** before it joins a
    ///   group; a rejected batch returns its own typed error and
    ///   cannot fail innocent co-grouped writers.
    /// * The returned report describes the **merged** group: its
    ///   `epoch` is the group's published epoch and its counters
    ///   (edges added/removed, no-ops, …) aggregate every member's
    ///   ops. Single-writer callers always form a group of one, whose
    ///   report is identical to `apply`'s.
    /// * Ops keep their submission order within a batch and groups
    ///   preserve queue order, so the merged history is a legal
    ///   serialization of the member batches.
    pub fn apply_coalesced(&self, batch: &UpdateBatch) -> Result<UpdateReport> {
        use std::sync::atomic::Ordering;
        self.validate_ops(batch, self.snapshot_arc().graph.num_vertices())?;
        self.coalesce_stats.submitted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ApplySlot::default());
        let is_leader = {
            let mut queue = self.lock_coalesce();
            queue.pending.push((batch.clone(), Arc::clone(&slot)));
            let lead = !queue.leader_active;
            if lead {
                queue.leader_active = true;
            }
            lead
        };
        if !is_leader {
            return slot.wait(COALESCE_DEADLINE);
        }
        loop {
            let group = {
                let mut queue = self.lock_coalesce();
                if queue.pending.is_empty() {
                    queue.leader_active = false;
                    break;
                }
                std::mem::take(&mut queue.pending)
            };
            let merged: UpdateBatch =
                group.iter().flat_map(|(b, _)| b.ops().iter().cloned()).collect();
            let result = self.apply_inner(&merged, None);
            self.coalesce_stats.groups.fetch_add(1, Ordering::Relaxed);
            self.coalesce_stats.coalesced.fetch_add(group.len() as u64 - 1, Ordering::Relaxed);
            for (_, member) in &group {
                member.post(result.clone());
            }
        }
        // The leader's own result was posted (to its own slot) by the
        // first loop iteration.
        slot.wait(COALESCE_DEADLINE)
    }

    /// Locks the coalesce queue, recovering from poisoning: a panic in
    /// one writer must not wedge the write path forever. Pending
    /// members left by the panicking thread are failed explicitly so
    /// their submitters' deadline waits resolve immediately.
    fn lock_coalesce(&self) -> std::sync::MutexGuard<'_, CoalesceQueue> {
        match self.coalesce.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                for (_, slot) in guard.pending.drain(..) {
                    slot.post(Err(Error::Internal {
                        component: "apply-coalesce",
                        detail: "a coalescing writer panicked; batch was not applied".into(),
                    }));
                }
                guard.leader_active = false;
                self.coalesce.clear_poison();
                guard
            }
        }
    }

    pub(crate) fn apply_inner(
        &self,
        batch: &UpdateBatch,
        expect_epoch: Option<u64>,
    ) -> Result<UpdateReport> {
        let start = Instant::now();
        let mut guard = self.writer.lock().expect("engine writer lock poisoned");
        if guard.is_none() {
            // The master state needs full residency (CSR export,
            // per-vertex profile writes), so a lazily loaded engine
            // densifies here, on its first update — with typed errors
            // if the backing file turns out damaged, before any state
            // is mutated.
            let snap = self.snapshot_arc();
            let graph = Arc::clone(snap.materialized_graph()?);
            let profiles = snap.dense_profiles()?;
            *guard = Some(WriterState {
                base: Arc::clone(&snap),
                graph: DynamicGraph::from_graph(&graph),
                cores: IncrementalCores::new(snap.cores().core_numbers().to_vec()),
                profiles: profiles.as_ref().clone(),
            });
        }
        let ws = guard.as_mut().expect("writer state initialized above");
        // The snapshot the master state currently equals: the pending
        // one on a durable engine mid-pipeline, the published one
        // otherwise.
        let base = Arc::clone(&ws.base);
        let epoch = base.epoch + 1;
        if let Some(expected) = expect_epoch {
            if epoch != expected {
                return Err(UpdateError::EpochMismatch { expected, next: epoch }.into());
            }
        }
        // Validate the whole batch before touching anything.
        self.validate_ops(batch, ws.graph.num_vertices())?;
        // Apply to the master state, collecting effective deltas.
        let mut deltas: Vec<GraphDelta> = Vec::new();
        let mut original_profiles: FxHashMap<VertexId, PTree> = FxHashMap::default();
        let mut edges_added = 0usize;
        let mut edges_removed = 0usize;
        let mut noops = 0usize;
        let mut cores_changed = 0usize;
        for op in batch.ops() {
            match op {
                Update::AddEdge { u, v } => {
                    if ws.graph.add_edge(*u, *v).expect("endpoints validated above") {
                        cores_changed += ws.cores.on_edge_inserted(&ws.graph, *u, *v);
                        deltas.push(GraphDelta::EdgeAdded { u: *u, v: *v });
                        edges_added += 1;
                    } else {
                        noops += 1;
                    }
                }
                Update::RemoveEdge { u, v } => {
                    if ws.graph.remove_edge(*u, *v).expect("endpoints validated above") {
                        cores_changed += ws.cores.on_edge_removed(&ws.graph, *u, *v);
                        deltas.push(GraphDelta::EdgeRemoved { u: *u, v: *v });
                        edges_removed += 1;
                    } else {
                        noops += 1;
                    }
                }
                Update::SetProfile { vertex, profile } => {
                    original_profiles
                        .entry(*vertex)
                        .or_insert_with(|| ws.profiles[*vertex as usize].clone());
                    ws.profiles[*vertex as usize] = profile.clone();
                }
            }
        }
        // One net ProfileChanged delta per vertex: a sequence of writes
        // ending where it started is a no-op.
        let mut profiles_changed = 0usize;
        let mut changed_profiles: Vec<VertexId> = Vec::new();
        let mut reprofiled: Vec<VertexId> = original_profiles.keys().copied().collect();
        reprofiled.sort_unstable();
        for v in reprofiled {
            if original_profiles[&v] != ws.profiles[v as usize] {
                deltas.push(GraphDelta::ProfileChanged { v });
                changed_profiles.push(v);
                profiles_changed += 1;
            } else {
                noops += 1;
            }
        }
        if deltas.is_empty() {
            // A primary never logs an all-no-op batch (nothing is
            // published for one), so a *replayed* no-op means the log
            // and this engine disagree about the state the batch was
            // applied to.
            if expect_epoch.is_some() {
                return Err(UpdateError::ReplayNoEffect { epoch }.into());
            }
            return Ok(UpdateReport {
                epoch: base.epoch,
                edges_added: 0,
                edges_removed: 0,
                profiles_changed: 0,
                noops,
                cores_changed: 0,
                index: IndexMaintenance::Unchanged,
                durable_epoch: self.durable_epoch(),
                elapsed: start.elapsed(),
            });
        }
        // Build the next snapshot from the master state. Only the
        // components the batch touched are copied: an edge-only batch
        // shares the previous epoch's profiles `Arc`, a profile-only
        // batch shares its graph and cores. (Edge batches still pay an
        // O(n + m) CSR export — the price of handing readers a flat
        // immutable layout; the derived-state maintenance above it is
        // what stays bounded.)
        let edges_changed = edges_added + edges_removed > 0;
        // The base is materialized (writer-state init forced it), so
        // these borrows are cache hits even on a lazily loaded engine.
        let graph = if edges_changed {
            Arc::new(ws.graph.to_graph())
        } else {
            Arc::clone(base.materialized_graph()?)
        };
        let profiles = if profiles_changed > 0 {
            Arc::new(ws.profiles.clone())
        } else {
            base.dense_profiles()?
        };
        let cores = if edges_changed {
            let cell = OnceLock::new();
            let _ =
                cell.set(CoreDecomposition::from_core_numbers(ws.cores.core_numbers().to_vec()));
            Arc::new(cell)
        } else {
            Arc::clone(&base.cores)
        };
        let index_cell: OnceLock<std::result::Result<ShardedCpIndex, IndexError>> = OnceLock::new();
        // A full rebuild (eager engines past the patch cap) recreates
        // the facade and materializes every shard, shard-parallel.
        let rebuild = || {
            ShardedCpIndex::build(Arc::clone(&graph), &self.tax, Arc::clone(&profiles)).map(
                |mut idx| {
                    idx.set_global_cores(Arc::clone(&cores));
                    idx.materialize_all(self.index_build_threads);
                    idx
                },
            )
        };
        let maintenance = if self.index_mode == IndexMode::Disabled {
            IndexMaintenance::Disabled
        } else {
            match base.index.get() {
                Some(Ok(old)) => {
                    // apply_batch re-derives this classification; both
                    // passes are O(batch ops), not O(graph), so sharing
                    // it isn't worth widening the index API.
                    let touched = old.invalidation_set(&profiles, &deltas);
                    let cap = self.patch_cap(old.num_populated_labels());
                    if touched.len() <= cap {
                        // The clone shares resident shards (`Arc`) and
                        // copies only the facade tables; the patch then
                        // rebuilds touched **resident** shards and
                        // merely invalidates absent ones — a shard
                        // nobody queried is never built to be patched.
                        let mut patched = old.clone();
                        let stats = patched.apply_batch(
                            &graph,
                            &profiles,
                            &deltas,
                            Some(Arc::clone(&cores)),
                            self.index_build_threads,
                        );
                        // Eager mode promises a fully resident index:
                        // re-materialize whatever the patch left cold
                        // (e.g. a label the batch newly populated).
                        if self.index_mode == IndexMode::Eager {
                            patched.materialize_all(self.index_build_threads);
                        }
                        let _ = index_cell.set(Ok(patched));
                        IndexMaintenance::Patched(stats)
                    } else if self.index_mode == IndexMode::Eager {
                        let _ = index_cell.set(rebuild());
                        IndexMaintenance::Rebuilt
                    } else {
                        IndexMaintenance::Deferred
                    }
                }
                _ => {
                    if self.index_mode == IndexMode::Eager {
                        let _ = index_cell.set(rebuild());
                        IndexMaintenance::Rebuilt
                    } else {
                        IndexMaintenance::NotBuilt
                    }
                }
            }
        };
        // Fail-stop before publishing: incremental index maintenance on
        // a lazily loaded engine materializes touched member lists from
        // the backing file, and a damaged run poisons the fault cell —
        // the patched facade cannot be trusted, so discard the writer
        // state (the next apply re-materializes from the published
        // snapshot) and surface the typed fault.
        if let Some(e) = base.fault.as_ref().and_then(pcs_store::FaultCell::get) {
            drop(guard);
            *self.writer.lock().expect("engine writer lock poisoned") = None;
            return Err(Error::Store(e));
        }
        let cache =
            self.next_cache(&base, edges_changed, &changed_profiles, &original_profiles, &profiles);
        // The published components are resident `Arc`s, but the fault
        // cell carries over: a patched index clone may still fault
        // untouched member lists in from the backing file.
        let next = Arc::new(SnapshotInner {
            graph: GraphHandle::ready(graph),
            profiles: ProfilesHandle::dense(profiles),
            cores,
            index: index_cell,
            cache,
            fault: base.fault.clone(),
            epoch,
        });
        let mut durable_epoch = None;
        match self.durable.as_ref() {
            // Recovery replay runs before `durable` is attached, so a
            // replayed record is never re-logged.
            Some(ds) => {
                // Log → fsync → publish. The master state is already
                // mutated, so from here every failure must discard the
                // writer state (the next `apply` re-materializes it
                // from the published snapshot) and fail-stop the
                // pipeline — otherwise an unlogged mutation could leak
                // into a later epoch's base.
                let append = crate::durable::encode_update_batch(batch)
                    .and_then(|payload| ds.wal.append(epoch, &payload));
                let ticket = match append {
                    Ok(t) => t,
                    Err(e) => {
                        *guard = None;
                        ds.abort();
                        return Err(e.into());
                    }
                };
                // Hand the writer lock to the next applier before the
                // fsync: it stacks on `next` (pending, unpublished) and
                // joins the same group commit instead of serializing
                // behind this one's disk wait.
                ws.base = Arc::clone(&next);
                drop(guard);
                let committed = ds
                    .wal
                    .commit(&ticket)
                    .map_err(Error::from)
                    .and_then(|()| {
                        pcs_store::faults::hit("engine.before_publish").map_err(Error::from)
                    })
                    .and_then(|()| {
                        ds.publish_in_order(epoch, || {
                            *self.state.write().expect("engine state lock poisoned") =
                                Arc::clone(&next);
                        })
                    });
                if let Err(e) = committed {
                    ds.abort();
                    *self.writer.lock().expect("engine writer lock poisoned") = None;
                    return Err(e);
                }
                durable_epoch = Some(ds.wal.durable_epoch());
            }
            None => {
                ws.base = Arc::clone(&next);
                *self.state.write().expect("engine state lock poisoned") = next;
            }
        }
        Ok(UpdateReport {
            epoch,
            edges_added,
            edges_removed,
            profiles_changed,
            noops,
            cores_changed,
            index: maintenance,
            durable_epoch,
            elapsed: start.elapsed(),
        })
    }

    /// How many labels an update batch may invalidate before the engine
    /// abandons incremental patching. A floor of 4 keeps tiny indexes
    /// on the incremental path, except at fraction 0.0, which is the
    /// documented "never patch" switch and must stay absolute.
    fn patch_cap(&self, populated_labels: usize) -> usize {
        if self.patch_cap_fraction == 0.0 {
            return 0;
        }
        ((populated_labels as f64 * self.patch_cap_fraction).ceil() as usize).max(4)
    }

    /// The result cache the next epoch's snapshot publishes with.
    ///
    /// `Wholesale` always starts empty — trivially sound. `Surgical`
    /// carries over the entries the batch provably cannot have
    /// changed, by the same label-lattice reasoning the CP-tree
    /// patcher uses: a query for vertex `q` only ever examines
    /// induced subgraphs `G_T` for subtrees `T ⊆ T(q)`, and a
    /// profile-only batch changes `G_T` membership only for subtrees
    /// containing a label in some reprofiled vertex's pre/post
    /// symmetric difference. So an entry survives iff its query
    /// vertex was not reprofiled and its (unchanged) profile shares
    /// no label with that difference. Edge batches invalidate
    /// everything: every query considers the root-level candidate
    /// (the global k-core), which any edge flip can change.
    fn next_cache(
        &self,
        base: &SnapshotInner,
        edges_changed: bool,
        changed_profiles: &[VertexId],
        original_profiles: &FxHashMap<VertexId, PTree>,
        profiles_after: &Arc<Vec<PTree>>,
    ) -> Option<QueryCache> {
        let fresh = || QueryCache::new(self.cache_capacity, Arc::clone(&self.cache_stats));
        match self.cache_mode {
            CacheMode::Off => None,
            CacheMode::Wholesale => Some(fresh()),
            CacheMode::Surgical => {
                let Some(prev) = base.cache.as_ref() else { return Some(fresh()) };
                if edges_changed {
                    return Some(fresh());
                }
                let mut touched: FxHashSet<u32> = FxHashSet::default();
                let mut reprofiled: FxHashSet<VertexId> = FxHashSet::default();
                for &v in changed_profiles {
                    reprofiled.insert(v);
                    let (Some(pre), Some(post)) =
                        (original_profiles.get(&v), profiles_after.get(v as usize))
                    else {
                        return Some(fresh());
                    };
                    let pre_set: FxHashSet<u32> = pre.nodes().iter().copied().collect();
                    let post_set: FxHashSet<u32> = post.nodes().iter().copied().collect();
                    touched.extend(pre_set.symmetric_difference(&post_set).copied());
                }
                Some(prev.carry_surviving(self.cache_capacity, |key| {
                    !reprofiled.contains(&key.vertex())
                        && profiles_after
                            .get(key.vertex() as usize)
                            .is_some_and(|p| p.nodes().iter().all(|l| !touched.contains(l)))
                }))
            }
        }
    }
}

/// The deep invariant verifier and the corruption hooks its mutation
/// tests seed state through. Compiled only under `debug-invariants`;
/// release builds and the bench harness carry none of this code.
#[cfg(feature = "debug-invariants")]
impl PcsEngine {
    /// Cross-checks every invariant the current snapshot must satisfy
    /// — CSR symmetry/sortedness/no-self-loops, `core(v) ≤ deg(v)`
    /// plus the k-core closure spot-check, profile ancestor-closure,
    /// index member-table ⇄ profile consistency, and resident-shard
    /// CL-tree arena geometry (see
    /// [`EngineSnapshot::verify_deep`](crate::EngineSnapshot::verify_deep))
    /// — and additionally that the published epoch never regresses
    /// below one this engine has already verified.
    ///
    /// Returns the first violated invariant as a human-readable
    /// description; `Ok(())` means the snapshot is internally
    /// consistent at full depth.
    pub fn verify_deep(&self) -> std::result::Result<(), String> {
        use std::sync::atomic::Ordering;
        let snap = self.snapshot_arc();
        let seen = self.verify_epoch_hwm.fetch_max(snap.epoch, Ordering::AcqRel);
        if seen > snap.epoch {
            return Err(format!(
                "epoch regression: previously verified epoch {seen}, \
                 current snapshot is epoch {}",
                snap.epoch
            ));
        }
        snap.verify_deep(&self.tax)
    }

    /// Republishes the current snapshot with `parts` swapped in.
    /// Shared tail of the corruption hooks below.
    fn publish_for_test(&self, next: SnapshotInner) {
        *self.state.write().expect("engine state lock poisoned") = Arc::new(next);
    }

    /// A copy of the current snapshot's index cell ([`ShardedCpIndex`]
    /// clones share resident shards, so this is cheap).
    fn index_cell_for_test(
        snap: &SnapshotInner,
    ) -> OnceLock<std::result::Result<ShardedCpIndex, IndexError>> {
        let cell = OnceLock::new();
        if let Some(r) = snap.index.get() {
            let _ = cell.set(r.clone());
        }
        cell
    }

    /// Test-only corruption hook: swaps in a replacement graph with no
    /// validation (pair with
    /// `Graph::from_csr_unvalidated_for_test`). Derived state (cores,
    /// index) is dropped so the graph check fires first.
    pub fn corrupt_graph_for_test(&self, graph: Graph) {
        let snap = self.snapshot_arc();
        self.publish_for_test(SnapshotInner {
            graph: GraphHandle::ready(Arc::new(graph)),
            profiles: snap.profiles.clone(),
            cores: Arc::new(OnceLock::new()),
            index: OnceLock::new(),
            cache: None,
            fault: snap.fault.clone(),
            epoch: snap.epoch,
        });
    }

    /// Test-only corruption hook: replaces the snapshot's core
    /// decomposition with forged per-vertex numbers.
    pub fn corrupt_cores_for_test(&self, core_numbers: Vec<u32>) {
        let snap = self.snapshot_arc();
        let cell = OnceLock::new();
        let _ = cell.set(CoreDecomposition::from_core_numbers(core_numbers));
        self.publish_for_test(SnapshotInner {
            graph: snap.graph.clone(),
            profiles: snap.profiles.clone(),
            cores: Arc::new(cell),
            index: Self::index_cell_for_test(&snap),
            cache: None,
            fault: snap.fault.clone(),
            epoch: snap.epoch,
        });
    }

    /// Test-only corruption hook: replaces the snapshot's profiles
    /// with no validation, **keeping** the built index — the way to
    /// desynchronize the index's member table from the published
    /// profiles without touching the index itself.
    pub fn corrupt_profiles_for_test(&self, profiles: Vec<PTree>) {
        let snap = self.snapshot_arc();
        self.publish_for_test(SnapshotInner {
            graph: snap.graph.clone(),
            profiles: ProfilesHandle::dense(Arc::new(profiles)),
            cores: Arc::clone(&snap.cores),
            index: Self::index_cell_for_test(&snap),
            cache: None,
            fault: snap.fault.clone(),
            epoch: snap.epoch,
        });
    }

    /// Test-only corruption hook: clones the built index, lets the
    /// caller mutate the clone (e.g.
    /// `ShardedCpIndex::tamper_member_table_for_test`), and republishes
    /// it. Returns `false` (and publishes nothing) when no index is
    /// built on the current snapshot.
    pub fn corrupt_index_for_test(&self, mutate: impl FnOnce(&mut ShardedCpIndex)) -> bool {
        let snap = self.snapshot_arc();
        let Some(idx) = snap.index_if_built() else { return false };
        let mut tampered = idx.clone();
        mutate(&mut tampered);
        let cell = OnceLock::new();
        let _ = cell.set(Ok(tampered));
        self.publish_for_test(SnapshotInner {
            graph: snap.graph.clone(),
            profiles: snap.profiles.clone(),
            cores: Arc::clone(&snap.cores),
            index: cell,
            cache: None,
            fault: snap.fault.clone(),
            epoch: snap.epoch,
        });
        true
    }

    /// Test-only corruption hook: republishes the current state under
    /// an arbitrary epoch number, so mutation tests can stage an epoch
    /// regression.
    pub fn corrupt_epoch_for_test(&self, epoch: u64) {
        let snap = self.snapshot_arc();
        self.publish_for_test(SnapshotInner {
            graph: snap.graph.clone(),
            profiles: snap.profiles.clone(),
            cores: Arc::clone(&snap.cores),
            index: Self::index_cell_for_test(&snap),
            cache: None,
            fault: snap.fault.clone(),
            epoch,
        });
    }
}

impl std::fmt::Debug for PcsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot_arc();
        f.debug_struct("PcsEngine")
            .field("epoch", &snap.epoch)
            .field("vertices", &snap.graph.num_vertices())
            .field("edges", &snap.graph.num_edges())
            .field("labels", &self.tax.len())
            .field("index_mode", &self.index_mode)
            .field("index_built", &snap.index.get().is_some())
            .field("batch_threads", &self.batch_threads)
            .finish()
    }
}
