//! ACQ (Fang et al., "Effective community search for large attributed
//! graphs", PVLDB 2016).
//!
//! Attribute-aware community search where each vertex carries a *flat
//! set of keywords*. Given `(q, k)`, ACQ returns the k-ĉores containing
//! `q` whose member vertices share as many of `q`'s keywords as
//! possible. Following the paper's Section 5.2, the keyword set of a
//! vertex is the label set of its P-tree (hierarchy discarded) — which
//! is exactly why ACQ misses communities whose shared labels form a
//! *different-shaped* subtree (the paper's Fig. 7/8 case study).
//!
//! ## Implementation: closed-set search
//!
//! A naive Apriori over keyword subsets explodes: a community sharing
//! `t` keywords makes all `2^t` subsets feasible. The search only needs
//! **closed** sets — `S` with `S = shared(Gk[S])`, the keywords shared
//! by the community's own members — because every maximum-cardinality
//! feasible set is closed (its closure is feasible with the same
//! community and at least the same size). Distinct closed sets map to
//! distinct communities, so a DFS over closures visits one node per
//! distinct community: the same trick that makes closed-frequent-
//! itemset miners (LCM) fast, and consistent with how ACQ's own
//! algorithms avoid subset enumeration.

use pcs_core::ProfiledCommunity;
use pcs_graph::core::SubsetCore;
use pcs_graph::{FxHashSet, Graph, VertexId};
use pcs_ptree::{LabelId, ProfilesRef, Taxonomy};

use crate::community_from_vertices;

/// One ACQ answer: the shared keyword set and its community.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcqCommunity {
    /// Sorted keywords shared by every member (subset of `q`'s
    /// keywords).
    pub keywords: Vec<LabelId>,
    /// The community `Gk[keywords]`.
    pub community: ProfiledCommunity,
}

/// Result of one ACQ query.
#[derive(Clone, Debug, Default)]
pub struct AcqOutcome {
    /// Communities achieving the maximum shared-keyword count (possibly
    /// several, with different keyword sets).
    pub communities: Vec<AcqCommunity>,
    /// The maximum number of shared keywords achieved (0 when only the
    /// bare k-ĉore exists).
    pub keyword_count: usize,
}

/// Runs ACQ for `(q, k)`. The query's keywords are the non-root labels
/// of `T(q)`.
pub fn acq_query<'a>(
    g: &Graph,
    _tax: &Taxonomy,
    profiles: impl Into<ProfilesRef<'a>>,
    q: VertexId,
    k: u32,
) -> AcqOutcome {
    let profiles = profiles.into();
    if q as usize >= g.num_vertices() {
        return AcqOutcome::default();
    }
    let mut sc = SubsetCore::new(g.num_vertices());
    let all: Vec<VertexId> = g.vertices().collect();
    let Some(gk) = sc.kcore_component_within(g, &all, q, k) else {
        return AcqOutcome::default();
    };
    let Some(wq) = profiles.get(q as usize) else {
        return AcqOutcome::default();
    };

    // shared(C): keywords of W(q) carried by every member of C.
    let shared = |community: &[VertexId]| -> Vec<LabelId> {
        wq.nodes()
            .iter()
            .copied()
            .filter(|&w| {
                w != Taxonomy::ROOT
                    && community
                        .iter()
                        .all(|&v| profiles.get(v as usize).is_some_and(|p| p.contains(w)))
            })
            .collect()
    };

    // DFS over closed keyword sets, one node per distinct community.
    let root_set = shared(&gk);
    let mut visited: FxHashSet<Vec<LabelId>> = FxHashSet::default();
    visited.insert(root_set.clone());
    let mut stack: Vec<(Vec<LabelId>, Vec<VertexId>)> = vec![(root_set, gk.clone())];
    let mut closed: Vec<(Vec<LabelId>, Vec<VertexId>)> = Vec::new();
    while let Some((s, community)) = stack.pop() {
        closed.push((s.clone(), community.clone()));
        for &w in wq.nodes() {
            if w == Taxonomy::ROOT || s.binary_search(&w).is_ok() {
                continue;
            }
            let cands: Vec<VertexId> = community
                .iter()
                .copied()
                .filter(|&v| profiles.get(v as usize).is_some_and(|p| p.contains(w)))
                .collect();
            if let Some(next_comm) = sc.kcore_component_within(g, &cands, q, k) {
                let next_set = shared(&next_comm);
                if visited.insert(next_set.clone()) {
                    stack.push((next_set, next_comm));
                }
            }
        }
    }

    let keyword_count = closed.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
    let mut communities: Vec<AcqCommunity> = closed
        .into_iter()
        .filter(|(s, _)| s.len() == keyword_count)
        .map(|(keywords, verts)| AcqCommunity {
            keywords,
            community: community_from_vertices(verts, profiles),
        })
        .collect();
    communities.sort_by(|a, b| a.keywords.cmp(&b.keywords));
    communities.dedup_by(|a, b| a.keywords == b.keywords);
    AcqOutcome { communities, keyword_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_ptree::PTree;

    /// The paper's Fig. 1 example (corrected profiles; see pcs-core).
    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // A
            PTree::from_labels(&t, [ml, ai]).unwrap(),          // B
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),      // C
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(), // D
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // E
            PTree::from_labels(&t, [is, hw]).unwrap(),          // F
            PTree::from_labels(&t, [hw, cm]).unwrap(),          // G
            PTree::from_labels(&t, [is, hw]).unwrap(),          // H
        ];
        (g, t, profiles)
    }

    /// Brute-force reference: try every subset of q's keywords.
    fn brute_acq(g: &Graph, profiles: &[PTree], q: VertexId, k: u32) -> (usize, Vec<Vec<u32>>) {
        let wq: Vec<LabelId> =
            profiles[q as usize].nodes().iter().copied().filter(|&l| l != Taxonomy::ROOT).collect();
        let mut sc = SubsetCore::new(g.num_vertices());
        let mut best = 0usize;
        let mut answers: Vec<Vec<u32>> = Vec::new();
        for mask in 0u32..(1 << wq.len()) {
            let set: Vec<LabelId> = wq
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &w)| w)
                .collect();
            let cands: Vec<VertexId> = g
                .vertices()
                .filter(|&v| set.iter().all(|&w| profiles[v as usize].contains(w)))
                .collect();
            if let Some(comm) = sc.kcore_component_within(g, &cands, q, k) {
                match set.len().cmp(&best) {
                    std::cmp::Ordering::Greater => {
                        best = set.len();
                        answers = vec![comm];
                    }
                    std::cmp::Ordering::Equal => {
                        if !answers.contains(&comm) {
                            answers.push(comm);
                        }
                    }
                    std::cmp::Ordering::Less => {}
                }
            }
        }
        answers.sort();
        (best, answers)
    }

    #[test]
    fn closed_set_search_matches_bruteforce() {
        let (g, t, profiles) = figure1();
        for q in 0..8u32 {
            for k in 0..=3u32 {
                let out = acq_query(&g, &t, &profiles, q, k);
                let (best, mut expect_comms) = brute_acq(&g, &profiles, q, k);
                expect_comms.sort();
                if expect_comms.is_empty() {
                    assert!(out.communities.is_empty(), "q={q} k={k}");
                    continue;
                }
                assert_eq!(out.keyword_count, best, "q={q} k={k}");
                let mut got: Vec<Vec<u32>> =
                    out.communities.iter().map(|c| c.community.vertices.clone()).collect();
                got.sort();
                got.dedup();
                assert_eq!(got, expect_comms, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn acq_finds_both_three_keyword_communities_of_d() {
        let (g, t, profiles) = figure1();
        let out = acq_query(&g, &t, &profiles, 3, 2);
        assert_eq!(out.keyword_count, 3);
        for c in &out.communities {
            assert_eq!(c.keywords.len(), 3);
            assert!(c.community.vertices.binary_search(&3).is_ok());
            for &v in &c.community.vertices {
                for &w in &c.keywords {
                    assert!(profiles[v as usize].contains(w));
                }
            }
        }
    }

    #[test]
    fn acq_misses_smaller_label_community() {
        // Make {A,D,E}'s shared labels only 2 (drop DMS from A): ACQ
        // keeps only the 3-keyword community {B,C,D}; PCS reports both.
        // This is the Fig. 7/8 scenario.
        let (g, t, mut profiles) = figure1();
        let hw = t.id_of("HW").unwrap();
        let is = t.id_of("IS").unwrap();
        profiles[0] = PTree::from_labels(&t, [is, hw]).unwrap(); // A loses DMS
        let out = acq_query(&g, &t, &profiles, 3, 2);
        assert_eq!(out.keyword_count, 3);
        assert_eq!(out.communities.len(), 1);
        assert_eq!(out.communities[0].community.vertices, vec![1, 2, 3]);
    }

    #[test]
    fn no_kcore_no_answer() {
        let (g, t, profiles) = figure1();
        let out = acq_query(&g, &t, &profiles, 2, 3); // C has core 2
        assert!(out.communities.is_empty());
        assert_eq!(out.keyword_count, 0);
        let out = acq_query(&g, &t, &profiles, 99, 1);
        assert!(out.communities.is_empty());
    }

    #[test]
    fn zero_shared_keywords_falls_back_to_kcore() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [a]).unwrap(),
            PTree::from_labels(&t, [b]).unwrap(),
            PTree::from_labels(&t, [b]).unwrap(),
        ];
        let out = acq_query(&g, &t, &profiles, 0, 2);
        assert_eq!(out.keyword_count, 0);
        assert_eq!(out.communities.len(), 1);
        assert_eq!(out.communities[0].community.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn keyword_sets_are_maximum_cardinality() {
        let (g, t, profiles) = figure1();
        for q in 0..8u32 {
            let out = acq_query(&g, &t, &profiles, q, 2);
            for c in &out.communities {
                assert_eq!(c.keywords.len(), out.keyword_count, "q={q}");
            }
        }
    }

    #[test]
    fn closed_search_is_fast_on_large_shared_sets() {
        // 30 vertices all sharing 20 keywords: Apriori would enumerate
        // 2^20 sets; the closed-set DFS visits one.
        let mut t = Taxonomy::new("r");
        let kws: Vec<u32> = (0..20).map(|i| t.add_child(0, &format!("w{i}")).unwrap()).collect();
        let n = 30usize;
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let profiles: Vec<PTree> =
            (0..n).map(|_| PTree::from_labels(&t, kws.iter().copied()).unwrap()).collect();
        let start = std::time::Instant::now();
        let out = acq_query(&g, &t, &profiles, 0, 4);
        assert!(start.elapsed().as_millis() < 2000, "closed search too slow");
        assert_eq!(out.keyword_count, 20);
        assert_eq!(out.communities.len(), 1);
        assert_eq!(out.communities[0].community.vertices.len(), n);
    }
}
